"""Quickstart: use a remote GPU as if it were local.

Starts an rCUDA daemon over a simulated Tesla C1060, connects a client
through the real wire protocol (in-process transport; pass --tcp for real
sockets), and runs a remote matrix product plus a remote saxpy -- with
numerical verification against numpy.

Run:  python examples/quickstart.py [--tcp]
"""

import argparse

import numpy as np

from repro import RCudaClient, RCudaDaemon, SimulatedGpu
from repro.simcuda import Dim3, MemcpyKind, check, fabricate_module


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--tcp", action="store_true", help="use real TCP sockets")
    args = parser.parse_args()

    # One node owns the GPU and runs the daemon...
    device = SimulatedGpu()
    daemon = RCudaDaemon(device)

    # ...our "application node" ships its GPU module and connects.
    module = fabricate_module("quickstart", ["sgemmNN", "saxpy"], 4096)
    if args.tcp:
        port = daemon.start()
        client = RCudaClient.connect_tcp("127.0.0.1", port, module)
    else:
        client = RCudaClient.connect_inproc(daemon, module)

    with client:
        rt = client.runtime
        print(f"connected; remote compute capability {client.compute_capability}")

        # --- remote matrix product -------------------------------------
        m = 256
        rng = np.random.default_rng(7)
        a = rng.standard_normal((m, m), dtype=np.float32)
        b = rng.standard_normal((m, m), dtype=np.float32)

        err, pa = rt.cudaMalloc(a.nbytes); check(err)
        err, pb = rt.cudaMalloc(b.nbytes); check(err)
        err, pc = rt.cudaMalloc(a.nbytes); check(err)
        check(rt.cudaMemcpy(pa, 0, a.nbytes, MemcpyKind.cudaMemcpyHostToDevice, a)[0])
        check(rt.cudaMemcpy(pb, 0, b.nbytes, MemcpyKind.cudaMemcpyHostToDevice, b)[0])
        check(rt.launch_kernel(
            "sgemmNN", Dim3(m // 64 + 1, m // 16 + 1), Dim3(16, 4),
            (pa, pb, pc, m, m, m, 1.0, 0.0),
        ))
        err, raw = rt.cudaMemcpy(0, pc, a.nbytes, MemcpyKind.cudaMemcpyDeviceToHost)
        check(err)
        c = raw.view(np.float32).reshape(m, m)
        gemm_err = float(np.abs(c - a @ b).max())
        print(f"remote sgemm ({m}x{m}): max |error| = {gemm_err:.2e}")
        for ptr in (pa, pb, pc):
            check(rt.cudaFree(ptr))

        # --- remote saxpy -----------------------------------------------
        n = 10_000
        x = rng.standard_normal(n, dtype=np.float32)
        y = rng.standard_normal(n, dtype=np.float32)
        err, px = rt.cudaMalloc(x.nbytes); check(err)
        err, py = rt.cudaMalloc(y.nbytes); check(err)
        check(rt.cudaMemcpy(px, 0, x.nbytes, MemcpyKind.cudaMemcpyHostToDevice, x)[0])
        check(rt.cudaMemcpy(py, 0, y.nbytes, MemcpyKind.cudaMemcpyHostToDevice, y)[0])
        check(rt.launch_kernel("saxpy", Dim3(40), Dim3(256), (px, py, n, 2.5)))
        err, raw = rt.cudaMemcpy(0, py, y.nbytes, MemcpyKind.cudaMemcpyDeviceToHost)
        check(err)
        result = raw.view(np.float32)
        saxpy_err = float(np.abs(result - (2.5 * x + y)).max())
        print(f"remote saxpy ({n} elements): max |error| = {saxpy_err:.2e}")
        check(rt.cudaFree(px)); check(rt.cudaFree(py))

        print(f"wire messages exchanged: {rt.calls_made}")

    if args.tcp:
        daemon.stop()
    print("done: the application never touched the device directly.")


if __name__ == "__main__":
    main()
