"""The matrix-product case study, end to end.

Part 1 runs the MM case *functionally* through the middleware at small
sizes (real bytes, real kernel, verification).  Part 2 re-creates the
paper's headline comparison at full scale on the virtual-clock testbed:
local CPU vs local GPU vs remote GPU over every studied network --
showing that for this O(m^3) workload a remote GPU over any HPC
interconnect stays close to a local one and beats the 8-core CPU.

Run:  python examples/matrix_product.py
"""

from repro.reporting import render_table
from repro.testbed import FunctionalRunner, SimulatedTestbed
from repro.workloads import MatrixProductCase


def main() -> None:
    case = MatrixProductCase()

    print("== functional runs through the real middleware ==")
    with FunctionalRunner() as runner:
        rows = []
        for size in (64, 128, 256, 384):
            report = runner.run(case, size)
            result = report.result
            rows.append(
                [
                    size,
                    "yes" if result.verified else "NO",
                    f"{result.max_abs_error:.2e}",
                    f"{result.wall_seconds * 1e3:.1f}",
                    report.bytes_sent + report.bytes_received,
                    f"{report.virtual_network_seconds['GigaE'] * 1e3:.1f}",
                    f"{report.virtual_network_seconds['40GI'] * 1e3:.2f}",
                ]
            )
    print(
        render_table(
            ["m", "verified", "max |err|", "wall (ms)", "wire bytes",
             "GigaE net (ms)", "40GI net (ms)"],
            rows,
        )
    )

    print("\n== paper-scale comparison (virtual-clock testbed) ==")
    testbed = SimulatedTestbed()
    networks = ("GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT")
    rows = []
    for size in case.paper_sizes:
        cpu = testbed.measure_local_cpu(case, size).total_seconds
        gpu = testbed.measure_local_gpu(case, size).total_seconds
        remote = [
            testbed.measure_remote(case, size, n).total_seconds for n in networks
        ]
        rows.append([size, cpu, gpu, *remote])
    print(
        render_table(
            ["m", "CPU (s)", "local GPU (s)", *(f"{n} (s)" for n in networks)],
            rows,
        )
    )

    # The paper's verdict, computed rather than asserted:
    size = case.paper_sizes[-1]
    cpu = testbed.measure_local_cpu(case, size).total_seconds
    best_remote = min(
        testbed.measure_remote(case, size, n).total_seconds for n in networks[1:]
    )
    print(
        f"\nAt m = {size}, the slowest HPC-network remote GPU still beats the "
        f"8-core CPU by {cpu / best_remote:.1f}x -- remote acceleration is "
        "worth it for compute-bound problems."
    )


if __name__ == "__main__":
    main()
