"""GPU-resident pipelines: when the FFT becomes worth remoting after all.

The paper's verdict on the FFT is conditional: it loses "if the data is
not previously available on the GPU memory (i.e., if the FFT is not part
of a more complex algorithm)".  This example completes the thought:

1. functionally runs a multi-iteration GPU-resident pipeline (upload
   once, transform repeatedly in place, download once) through the real
   middleware, verifying against numpy;
2. uses the amortization model to compute the break-even iteration count
   per network -- the "more complex algorithm" threshold;
3. shows topology-level contention: the same sessions on a non-blocking
   star vs an oversubscribed two-level tree fabric.

Run:  python examples/gpu_resident_pipeline.py
"""

import numpy as np

from repro import RCudaClient, RCudaDaemon, SimulatedGpu
from repro.cluster.topology import ClusterTopology, topology_contention_report
from repro.model.amortization import amortization_profile, break_even_table
from repro.net import get_network, list_networks
from repro.reporting import render_table
from repro.simcuda import MemcpyKind, check
from repro.workloads import FftBatchCase, MatrixProductCase


def functional_pipeline(iterations: int = 4, batch: int = 32) -> None:
    print("== functional GPU-resident pipeline (upload once, iterate) ==")
    case = FftBatchCase()
    daemon = RCudaDaemon(SimulatedGpu())
    with RCudaClient.connect_inproc(daemon, case.module()) as client:
        rt = client.runtime
        signal = case.generate_inputs(batch, seed=3)[0]
        err, ptr = rt.cudaMalloc(signal.nbytes)
        check(err)
        check(rt.cudaMemcpy(ptr, 0, signal.nbytes,
                            MemcpyKind.cudaMemcpyHostToDevice, signal)[0])
        grid, block = case.launch_geometry(batch)
        # Forward/inverse pairs keep the data bounded; an even count of
        # iterations returns the original signal.
        for i in range(iterations):
            direction = 1 if i % 2 == 0 else -1
            check(rt.launch_kernel(
                case.kernel_name, grid, block, (ptr, ptr, batch, direction)
            ))
        err, raw = rt.cudaMemcpy(0, ptr, signal.nbytes,
                                 MemcpyKind.cudaMemcpyDeviceToHost)
        check(err)
        out = raw.view(np.complex64).reshape(batch, 512)
        err_max = float(np.abs(out - signal).max())
        print(f"  {iterations} in-place transforms on {batch} signals, one "
              f"upload + one download: max |err| = {err_max:.2e}")
        check(rt.cudaFree(ptr))


def break_even_analysis() -> None:
    print("\n== break-even iterations: when does the FFT win remotely? ==")
    fft = FftBatchCase()
    rows = []
    for size in (2048, 8192, 16384):
        table = break_even_table(fft, list(list_networks()), size)
        rows.append([size] + [table[s.name] for s in list_networks()])
    print(render_table(
        ["Batch", *(s.name for s in list_networks())], rows,
        title="iterations of GPU-resident work before the remote GPU "
              "beats the 8-core CPU",
    ))
    profile = amortization_profile(fft, 8192, get_network("40GI"))
    print(
        f"\n  batch 8192 on 40GI: one-time cost "
        f"{profile.remote_fixed_seconds * 1e3:.0f} ms, then "
        f"{profile.remote_per_iteration_seconds * 1e3:.2f} ms/iteration vs "
        f"{profile.cpu_per_iteration_seconds * 1e3:.0f} ms on the CPU -- the "
        "paper's 'part of a more complex algorithm' condition, quantified."
    )


def topology_analysis() -> None:
    print("\n== fabric matters: star vs oversubscribed tree ==")
    mm = MatrixProductCase()
    names = [f"node{i:03d}" for i in range(8)]
    # Four clients (nodes 0-3, on one edge switch) hitting two GPU
    # servers (nodes 4-5, on the other).
    flows = [(names[i], names[4 + i % 2]) for i in range(4)]
    spec = get_network("40GI")

    star = ClusterTopology.star(names)
    tree = ClusterTopology.two_level_tree(
        names, nodes_per_switch=4, uplink_capacity=1.0
    )
    rows = []
    for label, topo in (("non-blocking star", star),
                        ("tree, 4:1 oversubscribed", tree)):
        estimates = topology_contention_report(mm, 8192, spec, topo, flows)
        worst = max(estimates, key=lambda e: e.seconds)
        rows.append([
            label,
            min(e.bandwidth_fraction for e in estimates),
            worst.seconds,
        ])
    print(render_table(
        ["Fabric", "Worst BW share", "Worst session (s)"], rows,
    ))
    print("  Oversubscription hits exactly the flows that cross the core --\n"
          "  placing GPU servers near their clients is free performance.")


def main() -> None:
    functional_pipeline()
    break_even_analysis()
    topology_analysis()


if __name__ == "__main__":
    main()
