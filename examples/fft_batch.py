"""The FFT case study: when offloading is NOT worth it.

The paper's counter-example: batches of 512-point FFTs are O(n log n) --
so cheap per byte moved that the CPU beats not only the remote GPU but
the *local* GPU once PCIe transfers are counted.  Part 1 verifies the
batched radix-2 kernel functionally through the middleware; part 2 shows
the crossover story at paper scale.

Run:  python examples/fft_batch.py
"""

from repro.reporting import render_table
from repro.testbed import FunctionalRunner, SimulatedTestbed
from repro.workloads import FftBatchCase


def main() -> None:
    case = FftBatchCase()

    print("== functional runs through the real middleware ==")
    with FunctionalRunner() as runner:
        rows = []
        for batch in (8, 64, 256):
            report = runner.run(case, batch)
            result = report.result
            rows.append(
                [
                    batch,
                    "yes" if result.verified else "NO",
                    f"{result.max_abs_error:.2e}",
                    f"{result.wall_seconds * 1e3:.1f}",
                    report.bytes_sent + report.bytes_received,
                ]
            )
    print(
        render_table(
            ["batch", "verified", "max |err|", "wall (ms)", "wire bytes"],
            rows,
        )
    )

    print("\n== paper-scale comparison (virtual-clock testbed, ms) ==")
    testbed = SimulatedTestbed()
    rows = []
    for batch in case.paper_sizes:
        cpu = testbed.measure_local_cpu(case, batch).total_seconds * 1e3
        gpu = testbed.measure_local_gpu(case, batch).total_seconds * 1e3
        ib = testbed.measure_remote(case, batch, "40GI").total_seconds * 1e3
        aht = testbed.measure_remote(case, batch, "A-HT").total_seconds * 1e3
        ge = testbed.measure_remote(case, batch, "GigaE").total_seconds * 1e3
        rows.append([batch, cpu, gpu, aht, ib, ge])
    print(
        render_table(
            ["batch", "CPU", "local GPU", "A-HT remote", "40GI remote",
             "GigaE remote"],
            rows,
            digits=1,
        )
    )

    batch = case.paper_sizes[-1]
    cpu = testbed.measure_local_cpu(case, batch).total_seconds
    gpu = testbed.measure_local_gpu(case, batch).total_seconds
    print(
        f"\nAt batch = {batch}: even the LOCAL GPU is {gpu / cpu:.2f}x slower "
        "than the CPU -- the FFT is not eligible for GPU acceleration unless "
        "its data already lives in GPU memory, exactly the paper's conclusion."
    )


if __name__ == "__main__":
    main()
