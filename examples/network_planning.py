"""Network planning with the estimation model.

The paper's punchline is a *tool*: estimate how a GPU-remoting deployment
behaves on an interconnect you do not own.  This example plays a cluster
architect: given a workload (matrix products of a given size at a given
rate), it predicts the rCUDA execution time on every candidate network,
the slowdown versus a local GPU, and flags which networks keep the
overhead under a chosen budget.

Run:  python examples/network_planning.py [--size 12288] [--budget 0.15]
"""

import argparse

from repro.model.estimate import estimate_for_case
from repro.model.fixed import fixed_for_case
from repro.net import get_network, list_networks
from repro.reporting import render_table
from repro.testbed import SimulatedTestbed
from repro.workloads import MatrixProductCase


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--size", type=int, default=12288,
                        help="matrix dimension of the planned workload")
    parser.add_argument("--budget", type=float, default=0.25,
                        help="acceptable slowdown vs a local GPU (fraction)")
    args = parser.parse_args()

    case = MatrixProductCase()
    testbed = SimulatedTestbed()

    # Step 1 (what the paper does): measure once on a network you own...
    reference_net = get_network("40GI")
    measured = testbed.measure_remote(case, args.size, "40GI").total_seconds
    fixed = fixed_for_case(case, args.size, measured, reference_net)
    local_gpu = testbed.measure_local_gpu(case, args.size).total_seconds
    local_cpu = testbed.measure_local_cpu(case, args.size).total_seconds

    print(
        f"workload: MM m={args.size}; measured on 40GI: {measured:.2f} s; "
        f"extracted fixed time: {fixed:.2f} s"
    )
    print(f"local GPU: {local_gpu:.2f} s; 8-core CPU: {local_cpu:.2f} s\n")

    # Step 2: predict every candidate network from that single measurement.
    rows = []
    verdicts = []
    for spec in list_networks():
        estimate = estimate_for_case(case, args.size, fixed, spec)
        slowdown = estimate / local_gpu - 1.0
        ok = slowdown <= args.budget
        rows.append(
            [
                spec.name,
                spec.effective_bw_mibps,
                estimate,
                f"{100 * slowdown:+.1f}%",
                "yes" if ok else "no",
            ]
        )
        verdicts.append((spec.name, ok))
    print(
        render_table(
            ["Network", "BW (MiB/s)", "Predicted (s)", "vs local GPU",
             f"within {100 * args.budget:.0f}% budget"],
            rows,
        )
    )

    good = [name for name, ok in verdicts if ok]
    print(
        f"\nnetworks meeting the budget: {', '.join(good) if good else 'none'}"
        "\n(one real measurement + the model replaced six procurement "
        "experiments -- the paper's Section VI in practice)"
    )


if __name__ == "__main__":
    main()
