"""GPU sharing and provisioning: the Figure 1 architecture at scale.

Part 1: several client applications concurrently share ONE daemon/GPU
through real middleware sessions (threads, separate contexts) -- the
time-multiplexing the paper describes -- each verifying its own results.

Part 2: the cluster-scale question the paper poses ("reducing the number
of accelerators ... could be interesting"): a discrete-event simulation
sweeps how many GPUs a 16-node cluster needs for a mixed MM/FFT workload.

Run:  python examples/cluster_sharing.py
"""

import threading

from repro import RCudaClient, RCudaDaemon, SimulatedGpu
from repro.cluster import provisioning_sweep, workload_mix
from repro.cluster.provisioning import best_by_performance_per_cost
from repro.reporting import render_table
from repro.workloads import FftBatchCase, MatrixProductCase


def concurrent_sharing(num_clients: int = 4) -> None:
    device = SimulatedGpu()
    daemon = RCudaDaemon(device)
    cases = [MatrixProductCase(), FftBatchCase()]
    outcomes: dict[int, str] = {}

    def client_app(client_id: int) -> None:
        case = cases[client_id % len(cases)]
        size = 96 if case.name == "MM" else 32
        with RCudaClient.connect_inproc(daemon, case.module()) as client:
            result = case.run(client.runtime, size, seed=client_id)
            outcomes[client_id] = (
                f"{case.name} size {size}: verified={result.verified} "
                f"(max |err| {result.max_abs_error:.2e})"
            )

    threads = [
        threading.Thread(target=client_app, args=(i,)) for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    print(f"== {num_clients} applications sharing one GPU concurrently ==")
    for client_id in sorted(outcomes):
        print(f"  client {client_id}: {outcomes[client_id]}")
    print(
        f"  daemon sessions completed: {daemon.completed_sessions}; "
        f"leftover device contexts: {device.active_contexts}"
    )


def provisioning(num_nodes: int = 16, num_jobs: int = 120) -> None:
    print(f"\n== how many GPUs does a {num_nodes}-node cluster need? ==")
    jobs = workload_mix(
        num_jobs, network="40GI", mean_interarrival_seconds=4.0, seed=11
    )
    points = provisioning_sweep(num_nodes, jobs, gpu_counts=[1, 2, 4, 8, 16])
    rows = [
        [p.num_gpus, p.makespan_seconds, p.mean_slowdown,
         p.mean_utilization, p.cost, p.performance_per_cost * 1e4]
        for p in points
    ]
    print(
        render_table(
            ["GPUs", "Makespan (s)", "Mean slowdown", "GPU util",
             "Cluster cost", "Perf/cost (x1e-4)"],
            rows,
        )
    )
    best = best_by_performance_per_cost(points)
    print(
        f"\nknee of the curve: {best.num_gpus} GPUs for {num_nodes} nodes -- "
        "fewer accelerators than nodes, as the paper advocates."
    )


def main() -> None:
    concurrent_sharing()
    provisioning()


if __name__ == "__main__":
    main()
