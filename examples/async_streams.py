"""Asynchronous transfers and streams: the paper's future work, working.

Shows (1) functional ``cudaMemcpyAsync`` + streams through the real
middleware, (2) the virtual-clock overlap effect (independent streams run
concurrently on the device), and (3) the overlap model's prediction of
what pipelined transfers would buy on each interconnect.

Run:  python examples/async_streams.py
"""

import numpy as np

from repro import RCudaClient, RCudaDaemon, SimulatedGpu, VirtualClock
from repro.model.overlap import estimate_async_execution
from repro.net import list_networks
from repro.reporting import render_table
from repro.simcuda import CudaRuntime, MemcpyKind, check, fabricate_module
from repro.workloads import MatrixProductCase


def remote_async_demo() -> None:
    print("== remote cudaMemcpyAsync through the middleware ==")
    daemon = RCudaDaemon(SimulatedGpu())
    module = fabricate_module("async_demo", ["saxpy"], 1024)
    with RCudaClient.connect_inproc(daemon, module) as client:
        rt = client.runtime
        n = 1 << 16
        x = np.random.default_rng(0).standard_normal(n, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        err, px = rt.cudaMalloc(x.nbytes); check(err)
        err, py = rt.cudaMalloc(y.nbytes); check(err)
        err, stream = rt.cudaStreamCreate(); check(err)
        # Queue both uploads asynchronously, then synchronize once.
        for ptr, host in ((px, x), (py, y)):
            err, _ = rt.cudaMemcpyAsync(
                ptr, 0, host.nbytes, MemcpyKind.cudaMemcpyHostToDevice,
                stream=stream, host_data=host,
            )
            check(err)
        check(rt.cudaStreamSynchronize(stream))
        from repro.simcuda import Dim3

        check(rt.launch_kernel("saxpy", Dim3(256), Dim3(256),
                               (px, py, n, 2.0), stream=stream))
        err, raw = rt.cudaMemcpy(0, py, y.nbytes,
                                 MemcpyKind.cudaMemcpyDeviceToHost)
        check(err)
        result = raw.view(np.float32)
        print(f"  saxpy on {n} elements via async uploads: "
              f"max |err| = {np.abs(result - 2.0 * x).max():.2e}")


def overlap_on_the_virtual_clock() -> None:
    print("\n== stream overlap on the virtual clock ==")
    clock = VirtualClock()
    gpu = SimulatedGpu(clock=clock, functional=False)
    rt = CudaRuntime(gpu, preinitialized=True)
    _, ptr = rt.cudaMalloc(64 << 20)
    payload_bytes = 64 << 20

    # Serial: two synchronous 64 MiB uploads.
    t0 = clock.now()
    for _ in range(2):
        rt.cudaMemcpy(ptr, 0, payload_bytes, MemcpyKind.cudaMemcpyHostToDevice)
    serial = clock.now() - t0

    # Concurrent: the same two uploads on independent streams.
    _, s1 = rt.cudaStreamCreate()
    _, s2 = rt.cudaStreamCreate()
    t0 = clock.now()
    rt.cudaMemcpyAsync(ptr, 0, payload_bytes,
                       MemcpyKind.cudaMemcpyHostToDevice, stream=s1)
    rt.cudaMemcpyAsync(ptr, 0, payload_bytes,
                       MemcpyKind.cudaMemcpyHostToDevice, stream=s2)
    rt.cudaThreadSynchronize()
    overlapped = clock.now() - t0
    print(f"  two 64 MiB uploads: serial {serial * 1e3:.1f} ms, "
          f"independent streams {overlapped * 1e3:.1f} ms")
    rt.close()


def pipelining_predictions() -> None:
    print("\n== what would pipelined transfers buy? (MM, m = 16384) ==")
    case = MatrixProductCase()
    rows = []
    for spec in list_networks():
        est = estimate_async_execution(case, 16384, spec, chunks=32)
        rows.append([
            spec.name,
            est.sync_seconds,
            est.async_seconds,
            f"{(est.speedup - 1) * 100:.1f}%",
        ])
    print(render_table(
        ["Network", "Sync (s)", "Pipelined (s)", "Gain"], rows,
    ))
    print(
        "  The gain grows with bandwidth (PCIe becomes a comparable pipe)\n"
        "  but stays modest -- the interconnect, not overlap structure,\n"
        "  dominates rCUDA's overhead, as the paper's analysis implies."
    )


def main() -> None:
    remote_async_demo()
    overlap_on_the_virtual_clock()
    pipelining_predictions()


if __name__ == "__main__":
    main()
