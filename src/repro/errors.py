"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so a
downstream user can catch a single base class.  The CUDA-side failures are
additionally mirrored as *status codes* (:mod:`repro.simcuda.errors`) because
the CUDA Runtime API reports errors by value, not by exception; the
middleware turns non-zero status codes into on-the-wire error fields exactly
as the paper's Table I describes ("CUDA error", 4 bytes).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ProtocolError(ReproError):
    """Malformed or unexpected bytes on the rCUDA wire protocol."""


class TransportError(ReproError):
    """A byte transport failed (connection closed, short read, ...)."""


class TransportClosedError(TransportError):
    """The peer closed the connection mid-message."""


class DeviceError(ReproError):
    """The simulated CUDA device rejected an operation."""


class DeviceMemoryError(DeviceError):
    """Device memory exhaustion or an invalid device pointer."""


class KernelError(DeviceError):
    """Kernel lookup or launch failure."""


class ModelError(ReproError):
    """The estimation model was fed inconsistent inputs."""


class CalibrationError(ModelError):
    """Calibration against the published paper data failed."""


class SchedulerError(ReproError):
    """The cluster scheduler could not place a job."""
