"""repro: reproduction of "Performance of CUDA Virtualized Remote GPUs in
High Performance Clusters" (Duato, Pena, Silla, Mayo, Quintana-Orti;
ICPP 2011).

The package rebuilds the paper's whole system in Python:

* :mod:`repro.simcuda` -- a software CUDA device and Runtime API
  (allocator, kernels, streams, timing models);
* :mod:`repro.rcuda` -- the rCUDA client/server middleware with the exact
  Table I wire protocol (:mod:`repro.protocol`) over real TCP or
  in-process transports (:mod:`repro.transport`);
* :mod:`repro.net` -- interconnect models for the seven networks studied;
* :mod:`repro.workloads` -- the MM and FFT case studies;
* :mod:`repro.testbed` -- functional and virtual-clock testbeds;
* :mod:`repro.model` -- the transfer/fixed-time estimation model;
* :mod:`repro.cluster` -- the Figure 1 architecture at cluster scale;
* :mod:`repro.obs` -- observability: RPC spans, a metrics registry, and
  JSONL/Perfetto/Prometheus exporters over the whole request path;
* :mod:`repro.experiments` -- regeneration of every table and figure.

Quick start::

    from repro import SimulatedGpu, RCudaDaemon, RCudaClient
    from repro.workloads import MatrixProductCase

    case = MatrixProductCase()
    daemon = RCudaDaemon(SimulatedGpu())
    with RCudaClient.connect_inproc(daemon, case.module()) as client:
        result = case.run(client.runtime, size=128)
        assert result.verified
"""

from repro.clock import VirtualClock, WallClock
from repro.errors import ReproError
from repro.model import default_calibration
from repro.obs import MetricsRegistry, Tracer
from repro.net import NetworkSpec, get_network, list_networks
from repro.rcuda import RCudaClient, RCudaDaemon, RemoteCudaRuntime
from repro.simcuda import CudaRuntime, SimulatedGpu
from repro.testbed import FunctionalRunner, SimulatedTestbed
from repro.workloads import FftBatchCase, MatrixProductCase

__version__ = "1.0.0"

__all__ = [
    "CudaRuntime",
    "FftBatchCase",
    "FunctionalRunner",
    "MatrixProductCase",
    "MetricsRegistry",
    "NetworkSpec",
    "RCudaClient",
    "RCudaDaemon",
    "RemoteCudaRuntime",
    "ReproError",
    "SimulatedGpu",
    "SimulatedTestbed",
    "Tracer",
    "VirtualClock",
    "WallClock",
    "__version__",
    "default_calibration",
    "get_network",
    "list_networks",
]
