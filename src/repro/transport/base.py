"""Transport interface: ordered, reliable byte delivery with exact reads."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable


def buffer_nbytes(data) -> int:
    """Byte length of any bytes-like object (bytes, bytearray, memoryview,
    NumPy array) without materializing it."""
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return memoryview(data).nbytes


class Transport(ABC):
    """A bidirectional byte stream between one client and one server.

    The protocol codec only ever needs two primitives: push bytes out, and
    read an exact count (message framing is self-describing, so there is
    no per-message length envelope on the wire -- sizes stay exactly what
    Table I says).  ``send`` accepts any bytes-like object (``bytes``,
    ``bytearray``, ``memoryview``), and ``recv_exact`` may return either
    ``bytes`` or a freshly allocated ``bytearray`` the caller owns --
    both satisfy every consumer (struct unpacking, ``np.frombuffer``,
    equality against ``bytes``).
    """

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Bytes that crossed an *avoidable* staging copy inside this
        #: transport (gather-by-concatenation fallbacks, partial-read
        #: reassembly).  Zero on the zero-copy fast paths; benchmarks use
        #: it to demonstrate the vectored/recv_into win.
        self.copy_bytes = 0

    @abstractmethod
    def send(self, data) -> None:
        """Deliver the bytes-like ``data`` in order; raises TransportError
        on failure."""

    @abstractmethod
    def recv_exact(self, nbytes: int) -> bytes | bytearray:
        """Block until exactly ``nbytes`` arrive; raises
        TransportClosedError if the peer closes first."""

    @abstractmethod
    def close(self) -> None:
        """Tear the connection down (idempotent)."""

    def send_vectored(self, bufs: Iterable, messages: int = 1) -> None:
        """Send several buffers back-to-back as one write (scatter-gather).

        ``messages`` is how many protocol messages the buffers span, so
        message accounting stays truthful when a pipelined client
        coalesces e.g. SetupArgs+Launch into a single write.  The default
        gathers into one bytes object (paying a copy it records in
        ``copy_bytes``); transports with true vectored I/O override this.
        """
        data = b"".join(bufs)
        self.copy_bytes += len(data)
        self.send(data)
        # ``send`` accounted one message for the whole write; top up for
        # the extra protocol messages it carried.
        self.messages_sent += messages - 1

    def _account_send(self, nbytes: int, messages: int = 1) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += messages

    def _account_recv(self, nbytes: int) -> None:
        self.bytes_received += nbytes

    def note_stream_begin(
        self, total_payload: int, chunk_payload: int, header_bytes: int
    ) -> None:
        """A chunked streaming copy is about to flow through this
        transport: ``total_payload`` bytes in frames of ``chunk_payload``,
        each under ``header_bytes`` of protocol header.

        Plain byte movers ignore this; timed transports switch to
        pipelined accounting (network hop of chunk i+1 overlapping the
        device hop of chunk i) until :meth:`note_stream_end`.
        """

    def note_stream_end(self) -> None:
        """The stream opened by :meth:`note_stream_begin` has been fully
        handed to the transport; settle any deferred accounting."""

    def note_message_received(self) -> None:
        """Count one complete inbound message.

        One wire message takes several exact reads (header, then
        payload), so per-read accounting cannot see message boundaries;
        the codec calls this once per fully decoded message, making RPC
        counts derivable from the receive side too (``messages_received``
        here mirrors the peer's ``messages_sent``).
        """
        self.messages_received += 1
