"""Transport interface: ordered, reliable byte delivery with exact reads."""

from __future__ import annotations

from abc import ABC, abstractmethod


class Transport(ABC):
    """A bidirectional byte stream between one client and one server.

    The protocol codec only ever needs two primitives: push bytes out, and
    read an exact count (message framing is self-describing, so there is
    no per-message length envelope on the wire -- sizes stay exactly what
    Table I says).
    """

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    @abstractmethod
    def send(self, data: bytes) -> None:
        """Deliver ``data`` in order; raises TransportError on failure."""

    @abstractmethod
    def recv_exact(self, nbytes: int) -> bytes:
        """Block until exactly ``nbytes`` arrive; raises
        TransportClosedError if the peer closes first."""

    @abstractmethod
    def close(self) -> None:
        """Tear the connection down (idempotent)."""

    def _account_send(self, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1

    def _account_recv(self, nbytes: int) -> None:
        self.bytes_received += nbytes

    def note_message_received(self) -> None:
        """Count one complete inbound message.

        One wire message takes several exact reads (header, then
        payload), so per-read accounting cannot see message boundaries;
        the codec calls this once per fully decoded message, making RPC
        counts derivable from the receive side too (``messages_received``
        here mirrors the peer's ``messages_sent``).
        """
        self.messages_received += 1
