"""In-process transport: a connected pair of queue-backed endpoints.

Works across threads (the server daemon runs its sessions in threads), or
within a single thread as long as reads never outrun writes.  Closing
either endpoint wakes any blocked reader on the other with
:class:`~repro.errors.TransportClosedError` -- which is also how the
server notices the paper's finalization stage ("the client application
closes the socket").
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import TransportClosedError
from repro.transport.base import Transport, buffer_nbytes


class _Channel:
    """One direction: a byte FIFO with blocking exact reads."""

    def __init__(self) -> None:
        self._chunks: deque[bytes] = deque()
        self._pending = 0
        self._closed = False
        self._cond = threading.Condition()

    def push(self, data: bytes) -> None:
        with self._cond:
            if self._closed:
                raise TransportClosedError("send on a closed transport")
            self._chunks.append(data)
            self._pending += len(data)
            self._cond.notify_all()

    def pop_exact(self, nbytes: int, timeout: float | None) -> bytes:
        with self._cond:
            while self._pending < nbytes:
                if self._closed:
                    raise TransportClosedError(
                        f"peer closed with {nbytes - self._pending} of "
                        f"{nbytes} bytes pending"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TransportClosedError(
                        f"timed out waiting for {nbytes} bytes"
                    )
            out = bytearray()
            while len(out) < nbytes:
                chunk = self._chunks.popleft()
                take = nbytes - len(out)
                if len(chunk) > take:
                    out += chunk[:take]
                    self._chunks.appendleft(chunk[take:])
                else:
                    out += chunk
            self._pending -= nbytes
            return bytes(out)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class InProcTransport(Transport):
    """One endpoint of an in-process pair."""

    def __init__(self, outgoing: _Channel, incoming: _Channel, timeout: float | None = 30.0) -> None:
        super().__init__()
        self._out = outgoing
        self._in = incoming
        self._timeout = timeout

    def send(self, data) -> None:
        # The queue keeps a reference past this call, so bytes-like views
        # must be materialized here (the in-proc analogue of the NIC
        # copying a frame out of application memory).
        self._out.push(data if isinstance(data, bytes) else bytes(data))
        self._account_send(buffer_nbytes(data))

    def send_vectored(self, bufs, messages: int = 1) -> None:
        """Push each buffer as its own chunk -- the byte FIFO reassembles
        on read, so no gather copy is needed."""
        total = 0
        for buf in bufs:
            chunk = buf if isinstance(buf, bytes) else bytes(buf)
            if chunk:
                self._out.push(chunk)
                total += len(chunk)
        self._account_send(total, messages=messages)

    def recv_exact(self, nbytes: int) -> bytes:
        data = self._in.pop_exact(nbytes, self._timeout)
        self._account_recv(nbytes)
        return data

    def close(self) -> None:
        # Closing an endpoint tears down both directions, like a socket.
        self._out.close()
        self._in.close()


def inproc_pair(timeout: float | None = 30.0) -> tuple[InProcTransport, InProcTransport]:
    """A connected (client_end, server_end) pair."""
    a_to_b = _Channel()
    b_to_a = _Channel()
    client = InProcTransport(outgoing=a_to_b, incoming=b_to_a, timeout=timeout)
    server = InProcTransport(outgoing=b_to_a, incoming=a_to_b, timeout=timeout)
    return client, server
