"""TCP socket transport.

The paper's middleware listens on a TCP port and explicitly disables the
Nagle congestion-avoidance behaviour ("we explicitly control the instant a
frame must be sent out ... to avoid unnecessary delays introduced by the
default congestion control algorithm"); we set ``TCP_NODELAY``
accordingly, with a constructor flag so the Nagle ablation benchmark can
put it back.

This transport implements both zero-copy halves of the hot path:

* outbound, ``send_vectored`` hands a header + payload view straight to
  ``socket.sendmsg`` (scatter-gather I/O), so memcpy payloads are never
  concatenated into a fresh header+payload bytes object;
* inbound, ``recv_exact`` first tries a single ``recv`` (one kernel copy,
  the common case since most Table I messages are tiny) and only on a
  partial read falls back to ``recv_into`` on one preallocated
  ``bytearray`` -- large D2H transfers are assembled in place instead of
  paying the old chunk-list ``b"".join`` copy.
"""

from __future__ import annotations

import select
import socket

from repro.errors import TransportClosedError, TransportError
from repro.transport.base import Transport

#: Slow-path reassembly scratch: messages at or below this size are
#: assembled in one preallocated buffer instead of allocating per call --
#: the steady-state chunk-frame receive loop stops churning the allocator.
SCRATCH_BYTES = 64 << 10

#: Default socket buffer floor: at least the largest streaming chunk
#: frame (4 MiB), so one full frame fits in flight per direction.  The
#: constructor takes it as a parameter so the tuner can shrink or grow
#: the in-flight window per network; ``None`` leaves the OS defaults.
SOCKET_BUFFER_BYTES = 4 << 20

#: Most buffers one ``sendmsg`` call is handed.  Linux caps an iovec at
#: ``UIO_MAXIOV`` (1024) and fails the whole call with EMSGSIZE past it;
#: a D2H stream response of many chunks can exceed that, so the vectored
#: send walks the buffer list in bounded batches.
IOV_BATCH = 512


class TcpTransport(Transport):
    """One established TCP connection."""

    def __init__(
        self,
        sock: socket.socket,
        nodelay: bool = True,
        socket_buffer_bytes: int | None = SOCKET_BUFFER_BYTES,
    ) -> None:
        super().__init__()
        if socket_buffer_bytes is not None and socket_buffer_bytes < 1:
            raise TransportError(
                f"socket_buffer_bytes must be >= 1, got {socket_buffer_bytes}"
            )
        self._sock = sock
        self._closed = False
        self._scratch = bytearray(SCRATCH_BYTES)
        self.socket_buffer_bytes = socket_buffer_bytes
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1 if nodelay else 0)
        except OSError as exc:  # pragma: no cover - platform dependent
            raise TransportError(f"could not set TCP_NODELAY: {exc}") from exc
        if socket_buffer_bytes is not None:
            for opt in (socket.SO_RCVBUF, socket.SO_SNDBUF):
                try:
                    if sock.getsockopt(socket.SOL_SOCKET, opt) < socket_buffer_bytes:
                        sock.setsockopt(socket.SOL_SOCKET, opt, socket_buffer_bytes)
                except OSError:  # pragma: no cover - platform dependent
                    pass

    def send(self, data) -> None:
        if self._closed:
            raise TransportClosedError("send on a closed transport")
        view = memoryview(data).cast("B") if not isinstance(data, bytes) else data
        try:
            self._sock.sendall(view)
        except OSError as exc:
            raise TransportError(f"TCP send failed: {exc}") from exc
        self._account_send(len(view))

    def send_vectored(self, bufs, messages: int = 1) -> None:
        """Gather-write ``bufs`` with ``sendmsg``, handling every partial
        outcome: a short write inside a buffer, a write ending between
        buffers, an iovec longer than the kernel's per-call cap, and --
        on a non-blocking socket or one with a small ``SO_SNDBUF`` -- a
        send that cannot progress yet (waits for writability instead of
        failing).  The loop advances across the iovec by the ``sendmsg``
        return value; nothing assumes a full write."""
        if self._closed:
            raise TransportClosedError("send on a closed transport")
        pending = [m for m in (memoryview(b).cast("B") for b in bufs) if m.nbytes]
        total = sum(m.nbytes for m in pending)
        try:
            while pending:
                try:
                    sent = self._sock.sendmsg(pending[:IOV_BATCH])
                except BlockingIOError:
                    # Non-blocking socket with a full send buffer: wait
                    # for drain, then resume exactly where we stopped.
                    select.select((), (self._sock,), ())
                    continue
                except InterruptedError:
                    continue
                # Drop fully sent buffers, trim the partially sent one.
                while pending and sent >= pending[0].nbytes:
                    sent -= pending[0].nbytes
                    del pending[0]
                if sent:
                    pending[0] = pending[0][sent:]
        except OSError as exc:
            raise TransportError(f"TCP sendmsg failed: {exc}") from exc
        self._account_send(total, messages=messages)

    def recv_exact(self, nbytes: int) -> bytes | bytearray:
        if self._closed:
            raise TransportClosedError("recv on a closed transport")
        if nbytes == 0:
            return b""
        try:
            first = self._sock.recv(nbytes)
        except OSError as exc:
            raise TransportError(f"TCP recv failed: {exc}") from exc
        if not first:
            raise TransportClosedError(
                f"peer closed with {nbytes} of {nbytes} bytes pending"
            )
        if len(first) == nbytes:
            # Fast path: the whole message arrived in one segment; hand
            # the kernel's bytes object through untouched.
            self._account_recv(nbytes)
            return first
        # Slow path: small messages assemble in the preallocated scratch
        # (no per-call allocation; the result is an owned bytes copy);
        # large ones get a fresh bytearray whose ownership transfers to
        # the caller, keeping the payload single-copy.
        scratch = nbytes <= len(self._scratch)
        buf = self._scratch if scratch else bytearray(nbytes)
        view = memoryview(buf)[:nbytes]
        filled = len(first)
        view[:filled] = first
        self.copy_bytes += nbytes if scratch else filled
        while filled < nbytes:
            try:
                got = self._sock.recv_into(view[filled:])
            except OSError as exc:
                # Account what did arrive: a bytes_received that moved
                # mid-read is how the server distinguishes a clean close
                # from a connection that died mid-message.
                self._account_recv(filled)
                raise TransportError(f"TCP recv failed: {exc}") from exc
            if not got:
                self._account_recv(filled)
                raise TransportClosedError(
                    f"peer closed with {nbytes - filled} of {nbytes} bytes pending"
                )
            filled += got
        self._account_recv(nbytes)
        return bytes(view) if scratch else buf

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


def connect_tcp(
    host: str,
    port: int,
    nodelay: bool = True,
    timeout: float | None = 10.0,
    socket_buffer_bytes: int | None = SOCKET_BUFFER_BYTES,
) -> TcpTransport:
    """Dial a server; returns a connected transport."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
    except OSError as exc:
        raise TransportError(f"could not connect to {host}:{port}: {exc}") from exc
    return TcpTransport(
        sock, nodelay=nodelay, socket_buffer_bytes=socket_buffer_bytes
    )
