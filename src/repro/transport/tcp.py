"""TCP socket transport.

The paper's middleware listens on a TCP port and explicitly disables the
Nagle congestion-avoidance behaviour ("we explicitly control the instant a
frame must be sent out ... to avoid unnecessary delays introduced by the
default congestion control algorithm"); we set ``TCP_NODELAY``
accordingly, with a constructor flag so the Nagle ablation benchmark can
put it back.
"""

from __future__ import annotations

import socket

from repro.errors import TransportClosedError, TransportError
from repro.transport.base import Transport


class TcpTransport(Transport):
    """One established TCP connection."""

    def __init__(self, sock: socket.socket, nodelay: bool = True) -> None:
        super().__init__()
        self._sock = sock
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1 if nodelay else 0)
        except OSError as exc:  # pragma: no cover - platform dependent
            raise TransportError(f"could not set TCP_NODELAY: {exc}") from exc

    def send(self, data: bytes) -> None:
        if self._closed:
            raise TransportClosedError("send on a closed transport")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"TCP send failed: {exc}") from exc
        self._account_send(len(data))

    def recv_exact(self, nbytes: int) -> bytes:
        if self._closed:
            raise TransportClosedError("recv on a closed transport")
        chunks: list[bytes] = []
        remaining = nbytes
        while remaining > 0:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"TCP recv failed: {exc}") from exc
            if not chunk:
                raise TransportClosedError(
                    f"peer closed with {remaining} of {nbytes} bytes pending"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        self._account_recv(nbytes)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


def connect_tcp(host: str, port: int, nodelay: bool = True, timeout: float | None = 10.0) -> TcpTransport:
    """Dial a server; returns a connected transport."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
    except OSError as exc:
        raise TransportError(f"could not connect to {host}:{port}: {exc}") from exc
    return TcpTransport(sock, nodelay=nodelay)
