"""Timed transport: virtual network accounting over a real byte stream.

Wraps any :class:`~repro.transport.base.Transport` and charges every sent
message against a :class:`~repro.net.simlink.SimulatedLink`.  The wrapped
run still moves real bytes (functional correctness is untouched); on top
of that, the link's virtual clock accumulates what the same traffic would
have cost on the modeled network.  One functional run can therefore be
replayed "on" GigaE, 40GI or any HPC network by attaching different
links -- the miniature, executable version of the paper's estimation idea.

Chunked streaming copies get pipelined accounting: between
``note_stream_begin`` and ``note_stream_end`` the per-write link charges
are deferred and then settled with the two-stage pipeline recurrence
(network hop of chunk i+1 overlapping the PCIe hop of chunk i), so the
virtual clocks measure the overlap the Section IV model promises.
"""

from __future__ import annotations

from repro.net.simlink import SimulatedLink
from repro.simcuda.timing import PcieModel
from repro.transport.base import Transport, buffer_nbytes


class TimedTransport(Transport):
    """A transport decorated with simulated-network time accounting.

    Receive-side accounting happens on the sender of the peer endpoint, so
    only ``send`` charges the link -- every wire byte crosses the link
    exactly once.
    """

    def __init__(self, inner: Transport, link: SimulatedLink) -> None:
        super().__init__()
        self.inner = inner
        self.link = link
        # The device-side stage of the transfer pipeline.  The default
        # matches DeviceTimingModel.pcie, so the deferred settlement below
        # mirrors what the simulated GPU charges for each chunk write.
        self.pcie = PcieModel()
        self._stream_msgs: list[tuple[int, int]] | None = None
        self._stream_header = 0

    def send(self, data) -> None:
        nbytes = buffer_nbytes(data)
        if self._stream_msgs is not None:
            self._stream_msgs.append(
                (nbytes, max(0, nbytes - self._stream_header))
            )
        else:
            self.link.transfer(nbytes)
        self.inner.send(data)
        self._account_send(nbytes)

    def send_vectored(self, bufs, messages: int = 1) -> None:
        bufs = list(bufs)
        total = sum(buffer_nbytes(b) for b in bufs)
        if self._stream_msgs is not None:
            self._stream_msgs.append(
                (total, max(0, total - self._stream_header))
            )
        else:
            # One write on the real stream is one frame on the modeled link.
            self.link.transfer(total)
        self.inner.send_vectored(bufs, messages=messages)
        self._account_send(total, messages=messages)

    def recv_exact(self, nbytes: int) -> bytes | bytearray:
        data = self.inner.recv_exact(nbytes)
        self._account_recv(nbytes)
        return data

    def close(self) -> None:
        self.inner.close()

    def note_stream_begin(
        self, total_payload: int, chunk_payload: int, header_bytes: int
    ) -> None:
        self._stream_msgs = []
        self._stream_header = header_bytes
        self.inner.note_stream_begin(total_payload, chunk_payload, header_bytes)

    def note_stream_end(self) -> None:
        msgs, self._stream_msgs = self._stream_msgs, None
        try:
            if msgs:
                self._settle_stream(msgs)
        finally:
            self.inner.note_stream_end()

    def _settle_stream(self, msgs: list[tuple[int, int]]) -> None:
        """Advance the link clock by the pipeline completion time of the
        recorded stream, minus the per-chunk PCIe time the device clock
        charges on its own (so link delta + device delta = completion).

        The recurrence walks the frames in wire order: the network
        delivers frame i while the device is still writing frame i-1, and
        each chunk's device stage starts at
        ``max(network done, device done)``.
        """
        wire_total = sum(wire for wire, _ in msgs)
        net_total = self.link.stream_transfer(wire_total, messages=len(msgs))
        net_done = dev_done = dev_total = 0.0
        for wire, payload in msgs:
            if wire_total:
                net_done += net_total * (wire / wire_total)
            if payload:
                d = self.pcie.transfer_seconds(payload)
                dev_done = max(dev_done, net_done) + d
                dev_total += d
            else:
                dev_done = max(dev_done, net_done)
        self.link.clock.advance(max(0.0, dev_done - dev_total))

    @property
    def virtual_network_seconds(self) -> float:
        """Virtual time this endpoint's traffic has cost on the link."""
        return self.link.clock.now()
