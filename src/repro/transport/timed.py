"""Timed transport: virtual network accounting over a real byte stream.

Wraps any :class:`~repro.transport.base.Transport` and charges every sent
message against a :class:`~repro.net.simlink.SimulatedLink`.  The wrapped
run still moves real bytes (functional correctness is untouched); on top
of that, the link's virtual clock accumulates what the same traffic would
have cost on the modeled network.  One functional run can therefore be
replayed "on" GigaE, 40GI or any HPC network by attaching different
links -- the miniature, executable version of the paper's estimation idea.
"""

from __future__ import annotations

from repro.net.simlink import SimulatedLink
from repro.transport.base import Transport, buffer_nbytes


class TimedTransport(Transport):
    """A transport decorated with simulated-network time accounting.

    Receive-side accounting happens on the sender of the peer endpoint, so
    only ``send`` charges the link -- every wire byte crosses the link
    exactly once.
    """

    def __init__(self, inner: Transport, link: SimulatedLink) -> None:
        super().__init__()
        self.inner = inner
        self.link = link

    def send(self, data) -> None:
        nbytes = buffer_nbytes(data)
        self.link.transfer(nbytes)
        self.inner.send(data)
        self._account_send(nbytes)

    def send_vectored(self, bufs, messages: int = 1) -> None:
        bufs = list(bufs)
        total = sum(buffer_nbytes(b) for b in bufs)
        # One write on the real stream is one frame on the modeled link.
        self.link.transfer(total)
        self.inner.send_vectored(bufs, messages=messages)
        self._account_send(total, messages=messages)

    def recv_exact(self, nbytes: int) -> bytes | bytearray:
        data = self.inner.recv_exact(nbytes)
        self._account_recv(nbytes)
        return data

    def close(self) -> None:
        self.inner.close()

    @property
    def virtual_network_seconds(self) -> float:
        """Virtual time this endpoint's traffic has cost on the link."""
        return self.link.clock.now()
