"""Byte transports connecting the rCUDA client and server.

* :mod:`repro.transport.tcp` -- real TCP sockets.  Like the paper's
  middleware, Nagle's algorithm is disabled (``TCP_NODELAY``) so the
  client controls exactly when a frame goes out.
* :mod:`repro.transport.inproc` -- an in-process connected pair (two
  queue-backed endpoints), for tests and single-process demos.
* :mod:`repro.transport.timed` -- a wrapper that accounts every byte
  against a :class:`~repro.net.simlink.SimulatedLink`, so a functional run
  over any transport also yields the *virtual* network time it would have
  cost on GigaE, InfiniBand, etc.
"""

from repro.transport.base import Transport, buffer_nbytes
from repro.transport.inproc import InProcTransport, inproc_pair
from repro.transport.tcp import TcpTransport, connect_tcp
from repro.transport.timed import TimedTransport

__all__ = [
    "InProcTransport",
    "TcpTransport",
    "TimedTransport",
    "Transport",
    "buffer_nbytes",
    "connect_tcp",
    "inproc_pair",
]
