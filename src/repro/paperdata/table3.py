"""Table III: estimated per-memcpy transfer times on the measured networks.

Each row gives, for one problem size, the payload in the paper's MB (MiB)
and the one-way transfer time in milliseconds on GigaE and 40GI computed as
``data / effective_bandwidth`` (112.4 and 1,367.1 MB/s respectively).

To turn a per-copy time into the per-execution network time of Section V,
multiply by 3 for the matrix product (two inputs + one output) and by 2 for
the FFT (one copy each way).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table3Row:
    """One problem size of Table III."""

    size: int  # matrix dimension m, or FFT batch n
    data_mib: float
    gigae_ms: float
    ib40_ms: float


TABLE3_MM: tuple[Table3Row, ...] = (
    Table3Row(4096, 64, 569.4, 46.8),
    Table3Row(6144, 144, 1281.1, 105.3),
    Table3Row(8192, 256, 2277.6, 187.3),
    Table3Row(10240, 400, 3558.7, 292.6),
    Table3Row(12288, 576, 5124.6, 421.3),
    Table3Row(14336, 784, 6975.1, 573.5),
    Table3Row(16384, 1024, 9110.3, 749.0),
    Table3Row(18432, 1296, 11530.2, 948.0),
)

TABLE3_FFT: tuple[Table3Row, ...] = (
    Table3Row(2048, 8, 71.2, 5.9),
    Table3Row(4096, 16, 142.3, 11.7),
    Table3Row(6144, 24, 213.5, 17.6),
    Table3Row(8192, 32, 284.7, 23.4),
    Table3Row(10240, 40, 355.9, 29.3),
    Table3Row(12288, 48, 427.0, 35.1),
    Table3Row(16384, 64, 569.4, 46.8),
)
