"""Testbed and workload constants published in the paper (Sections IV-V)."""

from __future__ import annotations

from dataclasses import dataclass

CITATION = (
    "J. Duato, A. J. Pena, F. Silla, R. Mayo, E. S. Quintana-Orti, "
    '"Performance of CUDA Virtualized Remote GPUs in High Performance '
    'Clusters", ICPP 2011.'
)


@dataclass(frozen=True)
class TestbedDescription:
    """The two-node testbed of Section IV.A."""

    cpu: str
    cpu_sockets: int
    cpu_cores_per_socket: int
    cpu_ghz: float
    ram_gb: int
    gpu: str
    cuda_toolkit: str
    pcie: str


TESTBED = TestbedDescription(
    cpu="Intel Xeon E5520",
    cpu_sockets=2,
    cpu_cores_per_socket=4,
    cpu_ghz=2.27,
    ram_gb=24,
    gpu="NVIDIA Tesla C1060",
    cuda_toolkit="2.3",
    pcie="PCIe 2.0 x16",
)

#: Peak effective host<->GPU bandwidth across PCIe measured in the paper,
#: in the paper's MB/s (== MiB/s) convention.
PCIE_EFFECTIVE_MIBPS = 5743.0

#: Theoretical PCIe 2.0 x16 bandwidth quoted by the paper (GB/s).
PCIE_PEAK_GBPS = 8.0

#: Size of the GPU module (kernels + statically allocated variables) shipped
#: at initialization for each case study, in bytes (Section IV.B).
MM_MODULE_BYTES = 21486
FFT_MODULE_BYTES = 7852

#: The matrix product uses single-precision real elements.
MM_BYTES_PER_ELEMENT = 4

#: The FFT computes batches of 512-point single-precision complex transforms
#: (8 bytes per point), i.e. 4096 bytes of payload per batch element.
FFT_POINTS = 512
FFT_BYTES_PER_POINT = 8

#: Problem sizes evaluated in the paper.
MM_SIZES = (4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432)
FFT_BATCHES = (2048, 4096, 6144, 8192, 10240, 12288, 16384)

#: Memory copies per execution entering the fixed-time extraction of
#: Section V: the MM moves A and B in and C out (3 copies of 4*m*m bytes),
#: the FFT moves the signal in and out (2 copies of 4096*n bytes).
MM_COPIES_PER_RUN = 3
FFT_COPIES_PER_RUN = 2

#: Paper-reported measurement dispersion (Section IV.A and V).
GIGAE_SMALL_STDDEV_US = 22.7
GIGAE_LARGE_STDDEV_MS = 2.1
IB40_SMALL_STDDEV_US = 1.1
IB40_LARGE_STDDEV_MS = 4.8
MM_MAX_STDDEV_S = 1.0
FFT_MAX_STDDEV_MS = 14.4
