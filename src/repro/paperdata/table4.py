"""Table IV: cross-validation of the two estimation models.

For each problem size the paper builds one model per measured network:
``fixed = measured - k * transfer`` (k = 3 copies for MM, 2 for FFT), then
predicts the *other* network as ``fixed + k * transfer_other`` and reports
the relative error against the real measurement there.

MM rows are in seconds, FFT rows in milliseconds (as published).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table4Row:
    """One size: the GigaE-derived model and the 40GI-derived model."""

    size: int
    measured_gigae: float
    fixed_gigae: float
    estimated_ib40_from_gigae: float
    error_gigae_model_pct: float
    measured_ib40: float
    fixed_ib40: float
    estimated_gigae_from_ib40: float
    error_ib40_model_pct: float


TABLE4_MM: tuple[Table4Row, ...] = (
    Table4Row(4096, 3.64, 1.93, 2.08, 2.16, 2.03, 1.89, 3.60, -1.21),
    Table4Row(6144, 8.47, 4.62, 4.94, 1.76, 4.85, 4.54, 8.38, -1.01),
    Table4Row(8192, 15.60, 8.77, 9.33, -0.10, 9.34, 8.78, 15.61, 0.06),
    Table4Row(10240, 25.47, 14.79, 15.67, -0.41, 15.74, 14.86, 25.54, 0.25),
    Table4Row(12288, 38.39, 23.02, 24.28, -0.54, 24.42, 23.15, 38.53, 0.35),
    Table4Row(14336, 54.96, 34.03, 35.75, 0.73, 35.49, 33.77, 54.70, -0.47),
    Table4Row(16384, 74.13, 46.80, 49.04, -1.78, 49.93, 47.68, 75.02, 1.20),
    Table4Row(18432, 97.65, 63.06, 65.90, -1.72, 67.05, 64.21, 98.80, 1.18),
)

TABLE4_FFT: tuple[Table4Row, ...] = (
    Table4Row(2048, 354.33, 211.98, 223.69, 33.95, 167.00, 155.30, 297.65, -16.00),
    Table4Row(4096, 555.67, 270.97, 294.38, 30.26, 226.00, 202.59, 487.29, -12.31),
    Table4Row(6144, 761.00, 333.95, 369.06, 20.48, 306.33, 271.22, 698.27, -8.24),
    Table4Row(8192, 964.33, 394.94, 441.75, 16.35, 379.67, 332.85, 902.25, -6.44),
    Table4Row(10240, 1167.67, 455.92, 514.44, 12.32, 458.00, 399.48, 1111.23, -4.83),
    Table4Row(12288, 1371.33, 517.24, 587.46, 9.26, 537.67, 467.45, 1321.54, -3.63),
    Table4Row(16384, 1782.00, 643.21, 736.84, 5.77, 696.67, 603.04, 1741.83, -2.25),
)
