"""Anchor data behind Figures 3 and 4 (end-to-end latency plots).

The paper plots, for each measured network, the one-way end-to-end latency
of a TCP/IB ping-pong for small packets (left plots: non-linear, dominated
by protocol effects) and for large payloads (right plots: linear).

The exact per-point series of the plots are not published, but Table II's
constants *are* points read off the left plots, and the right plots are
summarized by the published regressions.  We store those anchors here; the
synthetic link models in :mod:`repro.net` interpolate through them so that
the regenerated Table II matches the paper digit for digit.
"""

from __future__ import annotations

#: Small-message one-way latency anchors (payload bytes -> microseconds),
#: read from Table II.  The GigaE 12-byte outlier (44.4 us, double the
#: 8-byte latency) is the TCP delayed-ACK artifact behind the "non-linear
#: time response" the paper describes for small payloads.
SMALL_MESSAGE_ANCHORS_GIGAE: dict[int, float] = {
    4: 22.2,
    8: 22.2,
    12: 44.4,
    20: 22.4,
    52: 23.1,
    58: 23.2,
    7856: 233.9,
    21490: 338.7,
}

#: 40GI anchors; InfiniBand's response is far flatter ("more linear ...
#: due to the underlying InfiniBand protocol").
SMALL_MESSAGE_ANCHORS_40GI: dict[int, float] = {
    4: 27.9,
    8: 27.9,
    12: 20.0,
    20: 27.8,
    52: 27.9,
    58: 27.9,
    7856: 39.5,
    21490: 80.9,
}

#: Published large-payload regressions (slope ms/MiB, intercept ms) and the
#: correlation coefficient the paper reports.
FIGURE3_LARGE_REGRESSION = {"slope": 8.9, "intercept": -0.3, "corrcoef": 1.0}
FIGURE4_LARGE_REGRESSION = {"slope": 0.7, "intercept": 2.8, "corrcoef": 1.0}

#: Replication counts used for the published curves.
FIGURE_SMALL_REPLICATES = 250
FIGURE_LARGE_REPLICATES = 100
