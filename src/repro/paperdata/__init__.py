"""Published data of the ICPP 2011 rCUDA paper, transcribed verbatim.

Every table and figure of the paper's evaluation is stored here as
structured constants.  Nothing in this package computes anything: it is the
ground truth that (a) the calibration in :mod:`repro.model.calibration`
fits component cost models against, and (b) the experiment drivers in
:mod:`repro.experiments` diff their regenerated tables against.

Numbers follow the paper's own (sometimes quirky) conventions; see the
module docstrings, in particular :mod:`repro.paperdata.table2` for the
raw-product coefficient convention and :mod:`repro.units` for the paper's
MB == MiB convention.
"""

from repro.paperdata.constants import (
    CITATION,
    FFT_BATCHES,
    FFT_BYTES_PER_POINT,
    FFT_COPIES_PER_RUN,
    FFT_MODULE_BYTES,
    FFT_POINTS,
    MM_BYTES_PER_ELEMENT,
    MM_COPIES_PER_RUN,
    MM_MODULE_BYTES,
    MM_SIZES,
    PCIE_EFFECTIVE_MIBPS,
    PCIE_PEAK_GBPS,
    TESTBED,
)
from repro.paperdata.networks import (
    HPC_NETWORK_NAMES,
    MEASURED_NETWORK_NAMES,
    NETWORKS,
    PaperNetwork,
)
from repro.paperdata.table1 import TABLE1, Table1Operation
from repro.paperdata.table2 import TABLE2, Table2Row
from repro.paperdata.table3 import TABLE3_FFT, TABLE3_MM, Table3Row
from repro.paperdata.table4 import TABLE4_FFT, TABLE4_MM, Table4Row
from repro.paperdata.table5 import TABLE5_FFT, TABLE5_MM, Table5Row
from repro.paperdata.table6 import TABLE6_FFT, TABLE6_MM, Table6Row
from repro.paperdata.figures import (
    FIGURE3_LARGE_REGRESSION,
    FIGURE4_LARGE_REGRESSION,
    SMALL_MESSAGE_ANCHORS_40GI,
    SMALL_MESSAGE_ANCHORS_GIGAE,
)

__all__ = [
    "CITATION",
    "FFT_BATCHES",
    "FFT_COPIES_PER_RUN",
    "MM_COPIES_PER_RUN",
    "MM_SIZES",
    "FFT_BYTES_PER_POINT",
    "FFT_MODULE_BYTES",
    "FFT_POINTS",
    "MM_BYTES_PER_ELEMENT",
    "MM_MODULE_BYTES",
    "PCIE_EFFECTIVE_MIBPS",
    "PCIE_PEAK_GBPS",
    "TESTBED",
    "HPC_NETWORK_NAMES",
    "MEASURED_NETWORK_NAMES",
    "NETWORKS",
    "PaperNetwork",
    "TABLE1",
    "Table1Operation",
    "TABLE2",
    "Table2Row",
    "TABLE3_FFT",
    "TABLE3_MM",
    "Table3Row",
    "TABLE4_FFT",
    "TABLE4_MM",
    "Table4Row",
    "TABLE5_FFT",
    "TABLE5_MM",
    "Table5Row",
    "TABLE6_FFT",
    "TABLE6_MM",
    "Table6Row",
    "FIGURE3_LARGE_REGRESSION",
    "FIGURE4_LARGE_REGRESSION",
    "SMALL_MESSAGE_ANCHORS_40GI",
    "SMALL_MESSAGE_ANCHORS_GIGAE",
]
