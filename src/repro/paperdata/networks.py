"""Published constants of the seven interconnects the paper studies.

Two are physically measured (Section IV.A):

* ``GigaE``  -- 1 Gbps Ethernet, TCP sockets with Nagle's algorithm disabled.
  Large-payload one-way latency fits ``f(n) = 8.9 n - 0.3`` ms for ``n`` MiB,
  peak effective one-way throughput 112.4 MB/s.
* ``40GI``   -- 40 Gbps InfiniBand.  ``g(n) = 0.7 n + 2.8`` ms, 1,367.1 MB/s.

Five are modeled from published measurements (Section VI.A):

* ``10GE``   -- 10-Gigabit iWARP Ethernet (NetEffect NE010e), 880 MB/s.
* ``10GI``   -- 10 Gbps InfiniBand (Mellanox MHEA28-XT), ~970 MB/s.
* ``Myr``    -- Myrinet-10G (Myri 10G-PCIE-8A-C), 750 MB/s.
* ``F-HT``   -- FPGA HyperTransport: 16-bit link at 400 MHz (DDR), 12.8 Gb/s
  raw; 64-byte packets with 8-byte headers give the paper's quoted 88%
  efficiency and 1,442 MB/s effective.
* ``A-HT``   -- ASIC HyperTransport, assumed to double F-HT: 2,884 MB/s.

All bandwidths use the paper's MB == MiB convention.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperNetwork:
    """Published description of one interconnect."""

    name: str
    description: str
    #: Effective one-way bandwidth in the paper's MB/s (MiB/s).
    effective_bw_mibps: float
    #: (slope ms/MiB, intercept ms) of the large-payload one-way latency
    #: regression, when the paper measured one (GigaE and 40GI only).
    regression_ms_per_mib: tuple[float, float] | None = None
    #: Correlation coefficient the paper reports for the regression.
    regression_corrcoef: float | None = None
    #: True for the two networks physically present in the paper's testbed.
    measured: bool = False


NETWORKS: dict[str, PaperNetwork] = {
    "GigaE": PaperNetwork(
        name="GigaE",
        description="1 Gbps Ethernet, TCP sockets, Nagle disabled",
        effective_bw_mibps=112.4,
        regression_ms_per_mib=(8.9, -0.3),
        regression_corrcoef=1.0,
        measured=True,
    ),
    "40GI": PaperNetwork(
        name="40GI",
        description="40 Gbps InfiniBand",
        effective_bw_mibps=1367.1,
        regression_ms_per_mib=(0.7, 2.8),
        regression_corrcoef=1.0,
        measured=True,
    ),
    "10GE": PaperNetwork(
        name="10GE",
        description="10-Gigabit iWARP Ethernet (NetEffect NE010e)",
        effective_bw_mibps=880.0,
    ),
    "10GI": PaperNetwork(
        name="10GI",
        description="10 Gbps InfiniBand (Mellanox MHEA28-XT)",
        effective_bw_mibps=970.0,
    ),
    "Myr": PaperNetwork(
        name="Myr",
        description="Myrinet-10G (10G-PCIE-8A-C)",
        effective_bw_mibps=750.0,
    ),
    "F-HT": PaperNetwork(
        name="F-HT",
        description="HyperTransport over FPGA, 16-bit 400 MHz link",
        effective_bw_mibps=1442.0,
    ),
    "A-HT": PaperNetwork(
        name="A-HT",
        description="HyperTransport over ASIC (2x the FPGA bandwidth)",
        effective_bw_mibps=2884.0,
    ),
}

#: The two networks of the real testbed, in paper order.
MEASURED_NETWORK_NAMES = ("GigaE", "40GI")

#: The five projected HPC networks, in the column order of Tables V and VI.
HPC_NETWORK_NAMES = ("10GE", "10GI", "Myr", "F-HT", "A-HT")

#: Raw F-HT link parameters behind the 1,442 MB/s figure (Section VI.A).
FHT_LINK_BITS = 16
FHT_LINK_MHZ = 400.0
FHT_PACKET_BYTES = 64
FHT_HEADER_BYTES = 8
AHT_SPEEDUP_OVER_FHT = 2.0
