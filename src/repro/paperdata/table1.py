"""Table I: breakdown of the remote API messages of the rCUDA protocol.

Each operation lists the fields sent by the client and returned by the
server, with sizes in bytes.  ``x`` in the paper (a size that depends on the
operation's payload) is represented here by ``None``; the accounting helpers
in :mod:`repro.protocol.accounting` regenerate this table from the actual
codec and the experiment driver diffs the two.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table1Field:
    """One field of a remote API message; ``size=None`` means the variable
    payload the paper calls ``x``."""

    name: str
    direction: str  # "send" (client->server) or "receive"
    size: int | None


@dataclass(frozen=True)
class Table1Operation:
    """One operation block of Table I."""

    operation: str
    fields: tuple[Table1Field, ...]
    #: Published totals: fixed bytes, plus True when an ``x`` payload adds in.
    send_fixed_total: int
    send_has_payload: bool
    receive_fixed_total: int
    receive_has_payload: bool


def _f(name: str, direction: str, size: int | None) -> Table1Field:
    return Table1Field(name=name, direction=direction, size=size)


TABLE1: tuple[Table1Operation, ...] = (
    Table1Operation(
        operation="Initialization",
        fields=(
            _f("Compute capability", "receive", 8),
            _f("Size", "send", 4),
            _f("Module", "send", None),
            _f("CUDA error", "receive", 4),
        ),
        send_fixed_total=4,
        send_has_payload=True,
        receive_fixed_total=12,
        receive_has_payload=False,
    ),
    Table1Operation(
        operation="cudaMalloc",
        fields=(
            _f("Function id.", "send", 4),
            _f("Size", "send", 4),
            _f("CUDA error", "receive", 4),
            _f("Device pointer", "receive", 4),
        ),
        send_fixed_total=8,
        send_has_payload=False,
        receive_fixed_total=8,
        receive_has_payload=False,
    ),
    Table1Operation(
        operation="cudaMemcpy (to device)",
        fields=(
            _f("Function id.", "send", 4),
            _f("Destination", "send", 4),
            _f("Source", "send", 4),
            _f("Size", "send", 4),
            _f("Kind", "send", 4),
            _f("Data", "send", None),
            _f("CUDA error", "receive", 4),
        ),
        send_fixed_total=20,
        send_has_payload=True,
        receive_fixed_total=4,
        receive_has_payload=False,
    ),
    Table1Operation(
        operation="cudaMemcpy (to host)",
        fields=(
            _f("Function id.", "send", 4),
            _f("Destination", "send", 4),
            _f("Source", "send", 4),
            _f("Size", "send", 4),
            _f("Kind", "send", 4),
            _f("CUDA error", "receive", 4),
            _f("Data", "receive", None),
        ),
        send_fixed_total=20,
        send_has_payload=False,
        receive_fixed_total=4,
        receive_has_payload=True,
    ),
    Table1Operation(
        operation="cudaLaunch",
        fields=(
            _f("Function id.", "send", 4),
            _f("Texture offset", "send", 4),
            _f("Parameters offset", "send", 4),
            _f("Number of textures", "send", 4),
            _f("Block dimension", "send", 12),
            _f("Grid dimension", "send", 8),
            _f("Shared size", "send", 4),
            _f("Stream", "send", 4),
            _f("Kernel name", "send", None),
            _f("CUDA error", "receive", 4),
        ),
        send_fixed_total=44,
        send_has_payload=True,
        receive_fixed_total=4,
        receive_has_payload=False,
    ),
    Table1Operation(
        operation="cudaFree",
        fields=(
            _f("Function id.", "send", 4),
            _f("Device pointer", "send", 4),
            _f("CUDA error", "receive", 4),
        ),
        send_fixed_total=8,
        send_has_payload=False,
        receive_fixed_total=4,
        receive_has_payload=False,
    ),
)
