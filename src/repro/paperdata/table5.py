"""Table V: estimated per-memcpy transfer times on the five HPC networks.

Same arithmetic as Table III (``data / effective_bandwidth``) with the
Section VI.A bandwidths: 10GE 880, 10GI 970, Myr 750, F-HT 1,442 and
A-HT 2,884 MB/s.  Times in milliseconds, data in the paper's MB (MiB).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table5Row:
    """One problem size of Table V."""

    size: int
    data_mib: float
    ge10_ms: float
    ib10_ms: float
    myr_ms: float
    fht_ms: float
    aht_ms: float


TABLE5_MM: tuple[Table5Row, ...] = (
    Table5Row(4096, 64, 72.7, 66.0, 85.3, 44.4, 22.2),
    Table5Row(6144, 144, 163.6, 148.5, 192.0, 99.9, 49.9),
    Table5Row(8192, 256, 290.9, 263.9, 341.3, 177.5, 88.8),
    Table5Row(10240, 400, 454.5, 412.4, 533.3, 277.4, 138.7),
    Table5Row(12288, 576, 654.5, 593.8, 768.0, 399.4, 199.7),
    Table5Row(14336, 784, 890.9, 808.2, 1045.3, 543.7, 271.8),
    Table5Row(16384, 1024, 1163.6, 1055.7, 1365.3, 710.1, 355.1),
    Table5Row(18432, 1296, 1472.7, 1336.1, 1728.0, 898.8, 449.4),
)

TABLE5_FFT: tuple[Table5Row, ...] = (
    Table5Row(2048, 8, 9.1, 8.2, 10.7, 5.5, 2.8),
    Table5Row(4096, 16, 18.2, 16.5, 21.3, 11.1, 5.5),
    Table5Row(6144, 24, 27.3, 24.7, 32.0, 16.6, 8.3),
    Table5Row(8192, 32, 36.4, 33.0, 42.7, 22.2, 11.1),
    Table5Row(10240, 40, 45.5, 41.2, 53.3, 27.7, 13.9),
    Table5Row(12288, 48, 54.5, 49.5, 64.0, 33.3, 16.6),
    Table5Row(16384, 64, 72.7, 66.0, 85.3, 44.4, 22.2),
)
