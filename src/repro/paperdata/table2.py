"""Table II: estimated transfer times for the remote API calls.

The paper expresses each operation's transfer time as ``coeff * u + const``
microseconds, where ``u = m**2`` (matrix dimension squared) for the matrix
product and ``u = n`` (batch size) for the FFT.

Two conventions hide inside the published numbers (we verified them
algebraically and regenerate both exactly):

* **Constants** come straight from the measured small-message latencies in
  the left-hand plots of Figs. 3-4 (interpolated when the exact size was
  not measured).  E.g. the 21,490-byte MM module takes 338.7 us on GigaE.
* **Payload-dependent coefficients and the memcpy constants** are the
  linear regressions ``f``/``g`` applied symbolically with the *raw byte
  count* substituted for the MiB argument: the published coefficient is
  ``slope * bytes_per_unit`` with no unit conversion (GigaE MM:
  8.9 * 4 = 35.6; GigaE FFT: 8.9 * 4096 = 36454.4), and the memcpy
  constants are ``slope * header_bytes + intercept`` (GigaE to-device:
  8.9 * 20 - 0.3 = 177.7; 40GI to-host: 0.7 * 4 + 2.8 = 5.6).

The table is therefore a *symbolic* form; numerically consistent per-copy
times appear in Table III.  :mod:`repro.model.transfer` reproduces both.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table2Entry:
    """One (operation, direction) cell: ``coeff * u + const_us``."""

    coeff: float
    const_us: float


@dataclass(frozen=True)
class Table2Row:
    """One operation of Table II for one case study.

    ``multiplicity`` is the "(x3)"/"(x2)" repeat count printed in the
    operation column; the published per-call entries are *not* multiplied,
    only the Total row applies the multiplicity.
    """

    operation: str
    multiplicity: int
    send_bytes_fixed: int
    send_bytes_per_unit: float
    receive_bytes_fixed: int
    receive_bytes_per_unit: float
    gigae_send: Table2Entry
    gigae_receive: Table2Entry
    ib40_send: Table2Entry
    ib40_receive: Table2Entry


def _row(
    operation: str,
    multiplicity: int,
    send_bytes: tuple[int, float],
    recv_bytes: tuple[int, float],
    gigae: tuple[tuple[float, float], tuple[float, float]],
    ib40: tuple[tuple[float, float], tuple[float, float]],
) -> Table2Row:
    return Table2Row(
        operation=operation,
        multiplicity=multiplicity,
        send_bytes_fixed=send_bytes[0],
        send_bytes_per_unit=send_bytes[1],
        receive_bytes_fixed=recv_bytes[0],
        receive_bytes_per_unit=recv_bytes[1],
        gigae_send=Table2Entry(*gigae[0]),
        gigae_receive=Table2Entry(*gigae[1]),
        ib40_send=Table2Entry(*ib40[0]),
        ib40_receive=Table2Entry(*ib40[1]),
    )


#: Matrix-matrix product rows; the unit ``u`` is m**2 and one element is
#: 4 bytes, so cudaMemcpy moves 4*m*m (+header) bytes.
TABLE2_MM: tuple[Table2Row, ...] = (
    _row(
        "Initialization", 1,
        (21490, 0.0), (12, 0.0),
        (((0.0, 338.7), (0.0, 44.4))),
        (((0.0, 80.9), (0.0, 20.0))),
    ),
    _row(
        "cudaMalloc", 3,
        (8, 0.0), (8, 0.0),
        (((0.0, 22.2), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
    _row(
        "cudaMemcpy (to device)", 2,
        (20, 4.0), (4, 0.0),
        (((35.6, 177.7), (0.0, 22.2))),
        (((2.8, 16.8), (0.0, 27.9))),
    ),
    _row(
        "cudaLaunch", 1,
        (52, 0.0), (4, 0.0),
        (((0.0, 23.1), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
    _row(
        "cudaMemcpy (to host)", 1,
        (20, 0.0), (4, 4.0),
        (((0.0, 22.4), (35.6, 35.3))),
        (((0.0, 27.8), (2.8, 5.6))),
    ),
    _row(
        "cudaFree", 3,
        (8, 0.0), (4, 0.0),
        (((0.0, 22.2), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
)

#: Published MM Total row: coeff * m**2 + const_us, multiplicities applied.
TABLE2_MM_TOTAL = {
    "gigae_send": Table2Entry(71.2, 872.8),
    "gigae_receive": Table2Entry(35.6, 279.5),
    "ib40_send": Table2Entry(5.6, 337.6),
    "ib40_receive": Table2Entry(2.8, 276.7),
    "send_bytes": (8.0, 21650),  # 8*m**2 + 21650
    "receive_bytes": (4.0, 64),  # 4*m**2 + 64
}

#: FFT rows; the unit ``u`` is the batch size n, 4096 bytes per batch.
TABLE2_FFT: tuple[Table2Row, ...] = (
    _row(
        "Initialization", 1,
        (7856, 0.0), (12, 0.0),
        (((0.0, 233.9), (0.0, 44.4))),
        (((0.0, 39.5), (0.0, 20.0))),
    ),
    _row(
        "cudaMalloc", 1,
        (8, 0.0), (8, 0.0),
        (((0.0, 22.2), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
    _row(
        "cudaMemcpy (to device)", 1,
        (20, 4096.0), (4, 0.0),
        (((36454.4, 177.7), (0.0, 22.2))),
        (((2867.2, 16.8), (0.0, 27.9))),
    ),
    _row(
        "cudaLaunch", 1,
        (58, 0.0), (4, 0.0),
        (((0.0, 23.2), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
    _row(
        "cudaMemcpy (to host)", 1,
        (20, 0.0), (4, 4096.0),
        (((0.0, 22.4), (36454.4, 35.3))),
        (((0.0, 27.8), (2867.2, 5.6))),
    ),
    _row(
        "cudaFree", 1,
        (8, 0.0), (4, 0.0),
        (((0.0, 22.2), (0.0, 22.2))),
        (((0.0, 27.9), (0.0, 27.9))),
    ),
)

#: Published FFT Total row: coeff * n + const_us.
TABLE2_FFT_TOTAL = {
    "gigae_send": Table2Entry(36454.4, 501.6),
    "gigae_receive": Table2Entry(36454.4, 168.5),
    "ib40_send": Table2Entry(2867.2, 167.8),
    "ib40_receive": Table2Entry(2867.2, 137.2),
    "send_bytes": (4096.0, 7970),
    "receive_bytes": (4096.0, 36),
}

#: Both case studies keyed the way the other table modules are.
TABLE2 = {
    "MM": {"rows": TABLE2_MM, "total": TABLE2_MM_TOTAL},
    "FFT": {"rows": TABLE2_FFT, "total": TABLE2_FFT_TOTAL},
}
