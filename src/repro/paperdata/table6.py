"""Table VI: measured vs estimated execution times over several networks.

Measured columns: the 8-core CPU baseline (MKL / FFTW), the local GPU (CUDA
on the Tesla C1060), and rCUDA over the real GigaE and 40GI links.
Estimated columns: the GigaE-derived and 40GI-derived models of Section V
applied to the five HPC networks of Section VI.

MM rows in seconds, FFT rows in milliseconds (as published).  These series
are exactly what Figures 5 (GigaE model) and 6 (40GI model) plot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table6Row:
    """One problem size of Table VI."""

    size: int
    cpu: float
    gpu: float
    gigae: float
    ib40: float
    #: Estimates (10GE, 10GI, Myr, F-HT, A-HT) under each model.
    gigae_model: tuple[float, float, float, float, float]
    ib40_model: tuple[float, float, float, float, float]


TABLE6_MM: tuple[Table6Row, ...] = (
    Table6Row(4096, 2.08, 2.40, 3.64, 1.93,
              (2.13, 2.15, 2.19, 2.07, 2.00),
              (2.09, 2.11, 2.15, 2.02, 1.96)),
    Table6Row(6144, 5.66, 4.58, 8.47, 4.62,
              (5.07, 5.11, 5.20, 4.92, 4.77),
              (4.98, 5.03, 5.11, 4.84, 4.69)),
    Table6Row(8192, 11.99, 8.12, 15.60, 8.77,
              (9.56, 9.64, 9.79, 9.30, 9.04),
              (9.57, 9.65, 9.80, 9.31, 9.05)),
    Table6Row(10240, 21.52, 13.30, 25.47, 14.79,
              (16.03, 16.16, 16.39, 15.63, 15.21),
              (16.10, 16.22, 16.46, 15.69, 15.27)),
    Table6Row(12288, 35.45, 20.37, 38.39, 23.02,
              (24.80, 24.98, 25.32, 24.22, 23.62),
              (24.93, 25.12, 25.46, 24.35, 23.75)),
    Table6Row(14336, 54.00, 29.64, 54.96, 34.03,
              (36.46, 36.70, 37.17, 35.66, 34.85),
              (36.20, 36.44, 36.91, 35.40, 34.59)),
    Table6Row(16384, 78.87, 41.43, 74.13, 46.80,
              (49.96, 50.29, 50.89, 48.93, 47.86),
              (50.85, 51.18, 51.78, 49.81, 48.75)),
    Table6Row(18432, 109.12, 55.86, 97.65, 63.06,
              (67.06, 67.47, 68.24, 65.75, 64.40),
              (68.22, 68.63, 69.39, 66.90, 65.56)),
)

TABLE6_FFT: tuple[Table6Row, ...] = (
    Table6Row(2048, 41.67, 51.00, 354.33, 167.00,
              (228.48, 230.17, 233.32, 223.08, 217.53),
              (171.79, 173.48, 176.63, 166.39, 160.84)),
    Table6Row(4096, 74.67, 102.33, 555.67, 226.00,
              (303.96, 307.33, 313.64, 293.16, 282.06),
              (235.58, 238.96, 245.26, 224.78, 213.69)),
    Table6Row(6144, 115.67, 153.33, 761.00, 306.33,
              (383.44, 388.50, 397.95, 367.24, 350.60),
              (320.71, 325.77, 335.22, 304.51, 287.87)),
    Table6Row(8192, 150.33, 201.67, 964.33, 379.67,
              (460.92, 467.67, 480.27, 439.32, 417.13),
              (398.83, 405.58, 418.19, 377.24, 355.04)),
    Table6Row(10240, 187.33, 253.33, 1167.67, 458.00,
              (538.40, 546.83, 562.59, 511.40, 483.66),
              (481.96, 490.39, 506.15, 454.96, 427.22)),
    Table6Row(12288, 224.67, 304.67, 1371.33, 537.67,
              (616.21, 626.33, 645.24, 583.82, 550.53),
              (566.41, 576.54, 595.45, 534.02, 500.73)),
    Table6Row(16384, 299.00, 403.00, 1782.00, 696.67,
              (775.17, 788.66, 813.88, 731.98, 687.59),
              (735.00, 748.49, 773.70, 691.80, 647.42)),
)
