"""Table V: per-memcpy transfer times on the five HPC target networks."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.transfer import memcpy_transfer_seconds
from repro.net.spec import hpc_networks
from repro.paperdata.table5 import TABLE5_FFT, TABLE5_MM
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.testbed.simulated import case_by_name
from repro.units import bytes_to_mib, seconds_to_ms


def run() -> ExperimentResult:
    specs = hpc_networks()
    blocks: list[str] = []
    comparisons = []
    csv_rows: list[list] = []

    for case_name, paper_rows in (("MM", TABLE5_MM), ("FFT", TABLE5_FFT)):
        case = case_by_name(case_name)
        rows = []
        ours_flat: list[float] = []
        paper_flat: list[float] = []
        for paper in paper_rows:
            payload = case.payload_bytes(paper.size)
            times = [
                seconds_to_ms(memcpy_transfer_seconds(spec, payload))
                for spec in specs
            ]
            rows.append([paper.size, bytes_to_mib(payload), *times])
            csv_rows.append([case_name, paper.size, bytes_to_mib(payload), *times])
            ours_flat += times
            paper_flat += [
                paper.ge10_ms, paper.ib10_ms, paper.myr_ms,
                paper.fht_ms, paper.aht_ms,
            ]
        blocks.append(
            render_table(
                ["Size", "Data (MiB)", *(s.name for s in specs)],
                rows,
                title=f"Table V ({case_name}) -- per-copy transfer time (ms)",
                digits=1,
            )
        )
        comparisons.append(
            compare_series(f"Table V {case_name}", ours_flat, paper_flat)
        )

    # Headline claim: A-HT cuts the GigaE transfer time by up to ~96%.
    from repro.net.spec import get_network

    mm = case_by_name("MM")
    payload = mm.payload_bytes(18432)
    reduction = 1.0 - (
        memcpy_transfer_seconds(get_network("A-HT"), payload)
        / memcpy_transfer_seconds(get_network("GigaE"), payload)
    )
    note = (
        f"\nA-HT vs GigaE transmission-time reduction at the largest MM "
        f"size: {100 * reduction:.1f}% (paper: up to 96%)"
    )

    result = ExperimentResult(
        experiment_id="table5",
        title="Table V: transfer times on the target HPC networks",
        text="\n\n".join(blocks) + note,
        comparisons=comparisons,
        csv_tables={
            "table5": (
                ["case", "size", "data_mib", *(s.name for s in specs)],
                csv_rows,
            )
        },
    )
    result.text += result.comparison_lines()
    return result
