"""Figures 3 and 4: end-to-end latency characterization of the measured
networks, via the ping-pong procedure of Section IV.A.

Small packets: 250 replicates averaged.  Large payloads: minimum of 100
(which filters the transient TCP window stalls, so the regression
recovers the clean linear law -- run with the stochastic distortion mode
for exactly that reason).  The regression and effective bandwidth are
compared against the published f/g and throughput figures.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.net.pingpong import run_pingpong
from repro.net.simlink import SimulatedLink
from repro.net.spec import get_network
from repro.paperdata.figures import (
    FIGURE3_LARGE_REGRESSION,
    FIGURE4_LARGE_REGRESSION,
    SMALL_MESSAGE_ANCHORS_40GI,
    SMALL_MESSAGE_ANCHORS_GIGAE,
)
from repro.reporting.ascii_plot import ascii_chart
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.units import MIB


def _figure(experiment_id: str, network: str, paper_regression, paper_anchors,
            paper_bw: float) -> ExperimentResult:
    spec = get_network(network)
    link = SimulatedLink(spec, distortion_mode="stochastic", seed=42)
    result = run_pingpong(link, network=network)

    small = [s for s in result.samples if s.payload_bytes <= 21490]
    large = [s for s in result.samples if s.payload_bytes > 21490]

    small_rows = [[s.payload_bytes, s.mean_one_way_us] for s in small]
    large_rows = [[s.payload_bytes / MIB, s.min_one_way_ms] for s in large]

    fit = result.large_fit
    assert fit is not None
    fit_note = (
        f"\nlarge-payload regression: t(ms) = {fit.slope_ms_per_mib:.2f} n "
        f"{fit.intercept_ms:+.2f}  (paper: {paper_regression['slope']} n "
        f"{paper_regression['intercept']:+}), corr {fit.corrcoef:.6f}"
        f"\neffective one-way bandwidth: {result.effective_bw_mibps:.1f} MiB/s "
        f"(paper: {paper_bw})"
    )

    anchor_sizes = sorted(paper_anchors)
    ours_anchor = [spec.small_message_us(b) for b in anchor_sizes]
    paper_anchor = [paper_anchors[b] for b in anchor_sizes]

    chart_small = ascii_chart(
        [s.payload_bytes for s in small],
        {"one-way latency": [s.mean_one_way_us for s in small]},
        title=f"{network} small packets (us vs bytes)",
        xlabel="payload bytes",
        ylabel="us",
        height=12,
    )
    chart_large = ascii_chart(
        [s.payload_bytes / MIB for s in large],
        {"one-way latency": [s.min_one_way_ms for s in large]},
        title=f"{network} large payloads (ms vs MiB)",
        xlabel="payload MiB",
        ylabel="ms",
        height=12,
    )

    text = "\n\n".join(
        [
            render_table(
                ["Payload (B)", "One-way (us)"],
                small_rows,
                title=f"{network} -- small packets (mean of "
                f"{small[0].replicates})",
                digits=1,
            ),
            chart_small,
            render_table(
                ["Payload (MiB)", "One-way (ms)"],
                large_rows,
                title=f"{network} -- large payloads (min of "
                f"{large[0].replicates})",
                digits=1,
            ),
            chart_large,
        ]
    ) + fit_note

    comparisons = [
        compare_series(
            f"{network} regression (slope, bandwidth)",
            [fit.slope_ms_per_mib, result.effective_bw_mibps],
            [paper_regression["slope"], paper_bw],
        ),
        compare_series(
            f"{network} small-message anchors", ours_anchor, paper_anchor
        ),
    ]
    result_obj = ExperimentResult(
        experiment_id=experiment_id,
        title=f"Figure {experiment_id[-1]}: {network} end-to-end latency",
        text=text,
        comparisons=comparisons,
        csv_tables={
            f"{experiment_id}_small": (
                ["payload_bytes", "one_way_us"], small_rows
            ),
            f"{experiment_id}_large": (
                ["payload_mib", "one_way_ms"], large_rows
            ),
        },
    )
    result_obj.text += result_obj.comparison_lines()
    return result_obj


def run_figure3() -> ExperimentResult:
    return _figure(
        "figure3", "GigaE", FIGURE3_LARGE_REGRESSION,
        SMALL_MESSAGE_ANCHORS_GIGAE, paper_bw=112.4,
    )


def run_figure4() -> ExperimentResult:
    return _figure(
        "figure4", "40GI", FIGURE4_LARGE_REGRESSION,
        SMALL_MESSAGE_ANCHORS_40GI, paper_bw=1367.1,
    )
