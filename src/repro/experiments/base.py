"""Common experiment result structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.reporting.compare import ComparisonSummary


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    #: Rendered report (paper-layout tables / ASCII figures + notes).
    text: str
    #: Ours-vs-paper statistics, one per compared series.
    comparisons: list[ComparisonSummary] = field(default_factory=list)
    #: Named CSV exports: name -> (headers, rows).
    csv_tables: dict[str, tuple[Sequence[str], Sequence[Sequence]]] = field(
        default_factory=dict
    )

    @property
    def worst_rel_diff(self) -> float:
        return max((c.max_rel_diff for c in self.comparisons), default=0.0)

    def comparison_lines(self) -> str:
        lines = ["", "ours vs paper:"]
        for c in self.comparisons:
            lines.append(
                f"  {c.label}: max rel diff {100 * c.max_rel_diff:.2f}%, "
                f"mean {100 * c.mean_rel_diff:.2f}% over {c.count} points"
            )
        return "\n".join(lines)
