"""Figure 2: client-server communications for a matrix multiplication.

The paper's Figure 2 is a sequence diagram of the seven-phase execution.
We reconstruct it from a *real* session: a functional MM run through the
middleware with an exchange hook recording every request/response, then
rendered as an ASCII sequence diagram.  The comparison checks that the
recorded (operation, bytes sent, bytes received) sequence matches the
accounting model's :func:`~repro.model.transfer.session_messages` -- the
same arithmetic the estimation model and the simulated testbed run on --
exactly, which pins the modeled world to the implemented one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult
from repro.model.transfer import session_messages
from repro.protocol.codec import encode_response
from repro.protocol.messages import (
    InitRequest,
    LaunchRequest,
    MallocRequest,
    MemcpyRequest,
    Request,
    Response,
    SetupArgsRequest,
)
from repro.rcuda.client.connection import RCudaClient
from repro.rcuda.server.daemon import RCudaDaemon
from repro.reporting.compare import compare_series
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.types import MemcpyKind
from repro.workloads.matmul import MatrixProductCase

#: Problem size for the traced session (functional: real bytes move).
TRACE_SIZE = 64


@dataclass(frozen=True)
class Exchange:
    """One recorded request/response pair."""

    operation: str
    sent_bytes: int
    received_bytes: int


def _describe(request: Request) -> str:
    if isinstance(request, InitRequest):
        return "Initialization"
    if isinstance(request, MallocRequest):
        return "cudaMalloc"
    if isinstance(request, MemcpyRequest):
        to_device = (
            MemcpyKind(request.kind) is MemcpyKind.cudaMemcpyHostToDevice
        )
        return "cudaMemcpy (to device)" if to_device else "cudaMemcpy (to host)"
    if isinstance(request, SetupArgsRequest):
        return "cudaSetupArgument"
    if isinstance(request, LaunchRequest):
        return "cudaLaunch"
    return "cuda" + type(request).__name__.removesuffix("Request")


def record_session(size: int = TRACE_SIZE) -> list[Exchange]:
    """Run one functional MM session and record every wire exchange."""
    case = MatrixProductCase()
    daemon = RCudaDaemon(SimulatedGpu())
    exchanges: list[Exchange] = []

    def hook(request: Request, response: Response, sent: int) -> None:
        exchanges.append(
            Exchange(
                operation=_describe(request),
                sent_bytes=sent,
                received_bytes=len(encode_response(response)),
            )
        )

    client = RCudaClient.connect_inproc(daemon, case.module())
    try:
        client.runtime.exchange_hook = hook
        # The initialization exchange predates the hook; reconstruct it
        # from the module size and the fixed 12-byte reply.
        exchanges.append(
            Exchange("Initialization", case.module().size + 4, 12)
        )
        result = case.run(client.runtime, size)
        assert result.verified, "the traced session must be numerically valid"
    finally:
        client.close()
    return exchanges


#: Phase labels of Section III, in diagram order.
_PHASE_OF_OP = {
    "Initialization": "1. initialization",
    "cudaMalloc": "2. memory allocation",
    "cudaMemcpy (to device)": "3. input data transfer",
    "cudaSetupArgument": "4. kernel execution",
    "cudaLaunch": "4. kernel execution",
    "cudaMemcpy (to host)": "5. output data transfer",
    "cudaFree": "6. memory release",
}


def render_sequence_diagram(exchanges: list[Exchange]) -> str:
    """The Figure 2 ASCII sequence diagram."""
    width = 74
    lines = [
        "client".ljust(width - 6) + "server",
        "  |" + " " * (width - 10) + "|",
    ]
    last_phase = None
    for exchange in exchanges:
        phase = _PHASE_OF_OP.get(exchange.operation, "")
        if phase and phase != last_phase:
            lines.append(f"  |-- {phase} {'-' * (width - 16 - len(phase))}|")
            last_phase = phase
        request_label = f" {exchange.operation} ({exchange.sent_bytes} B) "
        lines.append(
            "  |" + request_label.ljust(width - 12, "-")[: width - 12] + "->|"
        )
        reply_label = f" result ({exchange.received_bytes} B) "
        lines.append(
            "  |<" + reply_label.rjust(width - 12, "-")[: width - 12] + "-|"
        )
    lines.append(
        "  |-- 7. finalization: client closes the socket "
        + "-" * (width - 57)
        + "|"
    )
    return "\n".join(lines)


def run() -> ExperimentResult:
    exchanges = record_session()
    expected = session_messages(MatrixProductCase(), TRACE_SIZE)

    ours_flat: list[float] = []
    model_flat: list[float] = []
    for exchange, message in zip(exchanges, expected):
        ours_flat += [
            float(hash(exchange.operation) % 9973),
            exchange.sent_bytes,
            exchange.received_bytes,
        ]
        model_flat += [
            float(hash(message.operation) % 9973),
            message.send_bytes,
            message.receive_bytes,
        ]
    # Length mismatch would desynchronize the zip: compare counts too.
    ours_flat.append(float(len(exchanges)))
    model_flat.append(float(len(expected)))

    comparison = compare_series(
        "Figure 2 exchange sequence (ops + bytes)", ours_flat, model_flat
    )
    diagram = render_sequence_diagram(exchanges)
    result = ExperimentResult(
        experiment_id="figure2",
        title="Figure 2: client-server communications for a matrix "
        "multiplication (traced from a real session)",
        text=diagram,
        comparisons=[comparison],
        csv_tables={
            "figure2": (
                ["operation", "sent_bytes", "received_bytes"],
                [[e.operation, e.sent_bytes, e.received_bytes]
                 for e in exchanges],
            )
        },
    )
    result.text += result.comparison_lines()
    return result
