"""One-shot validation: regenerate everything, check agreement budgets.

This is EXPERIMENTS.md as an executable: every table and figure is
regenerated and its ours-vs-paper statistics are checked against the
per-artifact tolerance the reproduction promises.  ``python -m repro
validate`` prints the scorecard and exits non-zero on any failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import EXPERIMENT_IDS, run_experiment
from repro.reporting.tables import render_table

#: Max relative difference promised per experiment (fraction).  Table IV's
#: error columns are in absolute points and use ERROR_POINT_BUDGET.
AGREEMENT_BUDGETS: dict[str, float] = {
    "table1": 0.0,
    "table2": 1e-9,
    "table3": 0.01,
    "table4": 0.03,
    "table5": 0.01,
    "table6": 0.07,
    "figure2": 0.0,
    "figure3": 0.005,
    "figure4": 0.005,
    "figure5": 0.07,
    "figure6": 0.07,
}

#: Table IV error columns: |ours - paper| in percentage points / 100.
ERROR_POINT_BUDGET = 0.035


@dataclass(frozen=True)
class ValidationRow:
    """One comparison's verdict."""

    experiment_id: str
    label: str
    max_diff: float
    budget: float
    passed: bool


def validate_all() -> list[ValidationRow]:
    """Run every experiment, apply its budget to every comparison."""
    rows: list[ValidationRow] = []
    for experiment_id in EXPERIMENT_IDS:
        result = run_experiment(experiment_id)
        for comparison in result.comparisons:
            if "errors (abs" in comparison.label:
                budget = ERROR_POINT_BUDGET
            else:
                budget = AGREEMENT_BUDGETS[experiment_id]
            rows.append(
                ValidationRow(
                    experiment_id=experiment_id,
                    label=comparison.label,
                    max_diff=comparison.max_rel_diff,
                    budget=budget,
                    passed=comparison.max_rel_diff <= budget + 1e-12,
                )
            )
    return rows


def render_scorecard(rows: list[ValidationRow]) -> str:
    """The printable scorecard."""
    table_rows = [
        [
            row.experiment_id,
            row.label,
            f"{100 * row.max_diff:.2f}%",
            f"{100 * row.budget:.2f}%",
            "PASS" if row.passed else "FAIL",
        ]
        for row in rows
    ]
    text = render_table(
        ["Experiment", "Series", "Max diff", "Budget", "Verdict"],
        table_rows,
        title="Reproduction scorecard (ours vs paper)",
        align_left_cols=(0, 1),
    )
    passed = sum(row.passed for row in rows)
    return f"{text}\n\n{passed}/{len(rows)} series within budget"


def all_passed(rows: list[ValidationRow]) -> bool:
    return all(row.passed for row in rows)
