"""Experiment drivers: one module per table and figure of the paper.

Each ``run()`` regenerates its artifact from the implementation (codec,
network models, simulated testbed, estimation pipeline), renders it in
the paper's layout, and attaches ours-vs-paper comparison statistics.
:mod:`repro.experiments.runner` executes any subset and writes text + CSV
outputs; the CLI (``python -m repro``) and the benchmark harness both go
through it.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import run_all, write_result

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "get_experiment",
    "run_all",
    "run_experiment",
    "write_result",
]
