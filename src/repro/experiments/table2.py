"""Table II: estimated transfer times of the remote API calls, in the
paper's symbolic form, regenerated from the codec's message sizes and the
network latency models."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.transfer import table2_symbolic, table2_totals
from repro.net.spec import get_network
from repro.paperdata.table2 import TABLE2
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.testbed.simulated import case_by_name


def _entry_str(coeff: float, const: float, unit: str) -> str:
    if coeff == 0.0:
        return f"{const:.1f}"
    return f"{coeff:.1f}{unit} + {const:.1f}"


def run() -> ExperimentResult:
    blocks: list[str] = []
    comparisons = []
    csv_rows: list[list] = []

    for case_name, unit in (("MM", "m^2"), ("FFT", "n")):
        case = case_by_name(case_name)
        gigae_rows = table2_symbolic(case, get_network("GigaE"))
        ib_rows = table2_symbolic(case, get_network("40GI"))
        paper_rows = TABLE2[case_name]["rows"]

        table_rows = []
        ours_vals: list[float] = []
        paper_vals: list[float] = []
        for ge, ib, paper in zip(gigae_rows, ib_rows, paper_rows):
            mult = f" (x{ge.multiplicity})" if ge.multiplicity > 1 else ""
            table_rows.append(
                [
                    ge.operation + mult,
                    _entry_str(ge.send.coeff, ge.send.const_us, unit),
                    _entry_str(ge.receive.coeff, ge.receive.const_us, unit),
                    _entry_str(ib.send.coeff, ib.send.const_us, unit),
                    _entry_str(ib.receive.coeff, ib.receive.const_us, unit),
                ]
            )
            csv_rows.append(
                [case_name, ge.operation, ge.multiplicity,
                 ge.send.coeff, ge.send.const_us,
                 ge.receive.coeff, ge.receive.const_us,
                 ib.send.coeff, ib.send.const_us,
                 ib.receive.coeff, ib.receive.const_us]
            )
            ours_vals += [
                ge.send.coeff, ge.send.const_us,
                ge.receive.coeff, ge.receive.const_us,
                ib.send.coeff, ib.send.const_us,
                ib.receive.coeff, ib.receive.const_us,
            ]
            paper_vals += [
                paper.gigae_send.coeff, paper.gigae_send.const_us,
                paper.gigae_receive.coeff, paper.gigae_receive.const_us,
                paper.ib40_send.coeff, paper.ib40_send.const_us,
                paper.ib40_receive.coeff, paper.ib40_receive.const_us,
            ]

        ge_tot = table2_totals(gigae_rows)
        ib_tot = table2_totals(ib_rows)
        paper_tot = TABLE2[case_name]["total"]
        table_rows.append(
            [
                "Total",
                _entry_str(ge_tot["send"].coeff, ge_tot["send"].const_us, unit),
                _entry_str(ge_tot["receive"].coeff, ge_tot["receive"].const_us, unit),
                _entry_str(ib_tot["send"].coeff, ib_tot["send"].const_us, unit),
                _entry_str(ib_tot["receive"].coeff, ib_tot["receive"].const_us, unit),
            ]
        )
        ours_vals += [
            ge_tot["send"].coeff, ge_tot["send"].const_us,
            ge_tot["receive"].coeff, ge_tot["receive"].const_us,
            ib_tot["send"].coeff, ib_tot["send"].const_us,
            ib_tot["receive"].coeff, ib_tot["receive"].const_us,
        ]
        paper_vals += [
            paper_tot["gigae_send"].coeff, paper_tot["gigae_send"].const_us,
            paper_tot["gigae_receive"].coeff, paper_tot["gigae_receive"].const_us,
            paper_tot["ib40_send"].coeff, paper_tot["ib40_send"].const_us,
            paper_tot["ib40_receive"].coeff, paper_tot["ib40_receive"].const_us,
        ]

        blocks.append(
            render_table(
                ["Operation", "GigaE send", "GigaE recv", "40GI send", "40GI recv"],
                table_rows,
                title=f"Table II ({case_name}) -- transfer time entries (us; "
                f"coefficient term in the paper's raw f/g convention)",
            )
        )
        comparisons.append(
            compare_series(f"Table II {case_name} entries", ours_vals, paper_vals)
        )

    result = ExperimentResult(
        experiment_id="table2",
        title="Table II: estimated transfer times for remote API calls",
        text="\n\n".join(blocks),
        comparisons=comparisons,
        csv_tables={
            "table2": (
                ["case", "operation", "multiplicity",
                 "gigae_send_coeff", "gigae_send_const_us",
                 "gigae_recv_coeff", "gigae_recv_const_us",
                 "ib40_send_coeff", "ib40_send_const_us",
                 "ib40_recv_coeff", "ib40_recv_const_us"],
                csv_rows,
            )
        },
    )
    result.text += result.comparison_lines()
    return result
