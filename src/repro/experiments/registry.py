"""Experiment registry: id -> driver."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    figure2,
    figures34,
    figures56,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.base import ExperimentResult

_REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure2": figure2.run,
    "figure3": figures34.run_figure3,
    "figure4": figures34.run_figure4,
    "figure5": figures56.run_figure5,
    "figure6": figures56.run_figure6,
}

EXPERIMENT_IDS: tuple[str, ...] = tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENT_IDS)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    return get_experiment(experiment_id)()
