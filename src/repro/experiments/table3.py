"""Table III: per-memcpy transfer times on the measured networks, from
payload size over effective bandwidth."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.transfer import memcpy_transfer_seconds
from repro.net.spec import get_network
from repro.paperdata.table3 import TABLE3_FFT, TABLE3_MM
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.testbed.simulated import case_by_name
from repro.units import bytes_to_mib, seconds_to_ms


def run() -> ExperimentResult:
    specs = [get_network("GigaE"), get_network("40GI")]
    blocks: list[str] = []
    comparisons = []
    csv_rows: list[list] = []

    for case_name, paper_rows in (("MM", TABLE3_MM), ("FFT", TABLE3_FFT)):
        case = case_by_name(case_name)
        rows = []
        ours_flat: list[float] = []
        paper_flat: list[float] = []
        for paper in paper_rows:
            payload = case.payload_bytes(paper.size)
            times_ms = [
                seconds_to_ms(memcpy_transfer_seconds(spec, payload))
                for spec in specs
            ]
            rows.append([paper.size, bytes_to_mib(payload), *times_ms])
            csv_rows.append([case_name, paper.size, bytes_to_mib(payload), *times_ms])
            ours_flat += [bytes_to_mib(payload), *times_ms]
            paper_flat += [paper.data_mib, paper.gigae_ms, paper.ib40_ms]
        blocks.append(
            render_table(
                ["Size", "Data (MiB)", "GigaE (ms)", "40GI (ms)"],
                rows,
                title=f"Table III ({case_name}) -- per-copy transfer time",
                digits=1,
            )
        )
        comparisons.append(
            compare_series(f"Table III {case_name}", ours_flat, paper_flat)
        )

    result = ExperimentResult(
        experiment_id="table3",
        title="Table III: estimated transfer times per memory copy",
        text="\n\n".join(blocks),
        comparisons=comparisons,
        csv_tables={
            "table3": (
                ["case", "size", "data_mib", "gigae_ms", "ib40_ms"],
                csv_rows,
            )
        },
    )
    result.text += result.comparison_lines()
    return result
