"""Figures 5 and 6: processing times of both case studies across networks,
as plotted series -- Figure 5 uses the GigaE-derived model, Figure 6 the
40GI-derived one.  The underlying data is the regenerated Table VI."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.table6 import regenerate
from repro.paperdata.networks import HPC_NETWORK_NAMES
from repro.paperdata.table6 import TABLE6_FFT, TABLE6_MM
from repro.reporting.ascii_plot import ascii_chart
from repro.reporting.compare import compare_series
from repro.testbed.simulated import SimulatedTestbed


def _figure(experiment_id: str, model: str) -> ExperimentResult:
    """``model`` is ``gigae`` (Figure 5) or ``ib40`` (Figure 6)."""
    testbed = SimulatedTestbed()
    blocks: list[str] = []
    comparisons = []
    csv_tables = {}

    for case_name, paper_rows, scale, unit in (
        ("MM", TABLE6_MM, 1.0, "s"),
        ("FFT", TABLE6_FFT, 1e3, "ms"),
    ):
        rows = regenerate(case_name, testbed)
        sizes = [r.size for r in rows]
        estimates = {
            name: [
                (r.gigae_model if model == "gigae" else r.ib40_model)[name]
                * scale
                for r in rows
            ]
            for name in HPC_NETWORK_NAMES
        }
        series = {
            "CPU": [r.cpu * scale for r in rows],
            "GPU": [r.gpu * scale for r in rows],
            "GigaE": [r.gigae * scale for r in rows],
            "40GI": [r.ib40 * scale for r in rows],
            **estimates,
        }
        blocks.append(
            ascii_chart(
                sizes,
                series,
                title=(
                    f"{case_name} processing time ({unit}), "
                    f"{'GigaE' if model == 'gigae' else '40GI'} model"
                ),
                xlabel="problem size",
                ylabel=unit,
                height=18,
            )
        )
        ours_flat: list[float] = []
        paper_flat: list[float] = []
        for ours_row, paper_row in zip(rows, paper_rows):
            model_est = (
                ours_row.gigae_model if model == "gigae" else ours_row.ib40_model
            )
            paper_est = (
                paper_row.gigae_model if model == "gigae" else paper_row.ib40_model
            )
            ours_flat += [model_est[n] * scale for n in HPC_NETWORK_NAMES]
            paper_flat += list(paper_est)
        comparisons.append(
            compare_series(
                f"{case_name} {model}-model series", ours_flat, paper_flat
            )
        )
        csv_tables[f"{experiment_id}_{case_name.lower()}"] = (
            ["size", *series.keys()],
            [[s, *(series[k][i] for k in series)] for i, s in enumerate(sizes)],
        )

    figure_no = "5" if model == "gigae" else "6"
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"Figure {figure_no}: processing times "
        f"({'GigaE' if model == 'gigae' else '40GI'}-based estimates)",
        text="\n\n".join(blocks),
        comparisons=comparisons,
        csv_tables=csv_tables,
    )
    result.text += result.comparison_lines()
    return result


def run_figure5() -> ExperimentResult:
    return _figure("figure5", "gigae")


def run_figure6() -> ExperimentResult:
    return _figure("figure6", "ib40")
