"""Table VI: measured vs estimated execution times over all networks."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.hpc import Table6Result, build_table6
from repro.paperdata.networks import HPC_NETWORK_NAMES
from repro.paperdata.table6 import TABLE6_FFT, TABLE6_MM
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.testbed.simulated import SimulatedTestbed, case_by_name


def regenerate(case_name: str, testbed: SimulatedTestbed | None = None) -> list[Table6Result]:
    """The regenerated Table VI rows for one case study (seconds)."""
    testbed = testbed if testbed is not None else SimulatedTestbed()
    case = case_by_name(case_name)
    cpu, gpu, gigae, ib40 = testbed.table6_inputs(case)
    return build_table6(case, cpu, gpu, gigae, ib40)


def run() -> ExperimentResult:
    testbed = SimulatedTestbed()
    blocks: list[str] = []
    comparisons = []
    csv_rows: list[list] = []

    for case_name, paper_rows, scale, unit in (
        ("MM", TABLE6_MM, 1.0, "s"),
        ("FFT", TABLE6_FFT, 1e3, "ms"),
    ):
        rows = regenerate(case_name, testbed)
        table_rows = []
        ours_flat: list[float] = []
        paper_flat: list[float] = []
        for ours, paper in zip(rows, paper_rows):
            ge_est = [ours.gigae_model[n] * scale for n in HPC_NETWORK_NAMES]
            ib_est = [ours.ib40_model[n] * scale for n in HPC_NETWORK_NAMES]
            table_rows.append(
                [
                    ours.size,
                    ours.cpu * scale,
                    ours.gpu * scale,
                    ours.gigae * scale,
                    ours.ib40 * scale,
                    *ge_est,
                    *ib_est,
                ]
            )
            csv_rows.append([case_name, *table_rows[-1]])
            ours_flat += [
                ours.cpu * scale, ours.gpu * scale,
                ours.gigae * scale, ours.ib40 * scale,
                *ge_est, *ib_est,
            ]
            paper_flat += [
                paper.cpu, paper.gpu, paper.gigae, paper.ib40,
                *paper.gigae_model, *paper.ib40_model,
            ]
        headers = [
            "Size", "CPU", "GPU", "GigaE", "40GI",
            *(f"GE:{n}" for n in HPC_NETWORK_NAMES),
            *(f"IB:{n}" for n in HPC_NETWORK_NAMES),
        ]
        blocks.append(
            render_table(
                headers,
                table_rows,
                title=(
                    f"Table VI ({case_name}, {unit}) -- measured vs estimated; "
                    "GE:/IB: columns are the GigaE-/40GI-model estimates"
                ),
            )
        )
        comparisons.append(
            compare_series(f"Table VI {case_name}", ours_flat, paper_flat)
        )

    result = ExperimentResult(
        experiment_id="table6",
        title="Table VI: measured vs estimated execution times",
        text="\n\n".join(blocks),
        comparisons=comparisons,
        csv_tables={
            "table6": (
                ["case", "size", "cpu", "gpu", "gigae", "ib40",
                 *(f"ge_{n}" for n in HPC_NETWORK_NAMES),
                 *(f"ib_{n}" for n in HPC_NETWORK_NAMES)],
                csv_rows,
            )
        },
    )
    result.text += result.comparison_lines()
    return result
