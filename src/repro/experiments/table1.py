"""Table I: breakdown of the remote API messages -- regenerated from the
protocol codec by encoding real messages and measuring them."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.paperdata.table1 import TABLE1
from repro.protocol.accounting import table1_from_codec
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table


def run() -> ExperimentResult:
    measured = table1_from_codec()

    def _fmt(fixed: int, has_payload: bool) -> str:
        return f"x+{fixed}" if has_payload else str(fixed)

    rows = []
    ours_numbers: list[float] = []
    paper_numbers: list[float] = []
    for cost, paper in zip(measured, TABLE1):
        rows.append(
            [
                cost.operation,
                _fmt(cost.send_fixed, cost.send_has_payload),
                _fmt(paper.send_fixed_total, paper.send_has_payload),
                _fmt(cost.receive_fixed, cost.receive_has_payload),
                _fmt(paper.receive_fixed_total, paper.receive_has_payload),
            ]
        )
        ours_numbers += [
            cost.send_fixed,
            float(cost.send_has_payload),
            cost.receive_fixed,
            float(cost.receive_has_payload),
        ]
        paper_numbers += [
            paper.send_fixed_total,
            float(paper.send_has_payload),
            paper.receive_fixed_total,
            float(paper.receive_has_payload),
        ]

    table = render_table(
        ["Operation", "Send (ours)", "Send (paper)", "Recv (ours)", "Recv (paper)"],
        rows,
        title="Table I -- remote API message sizes (bytes; x = payload)",
    )
    comparison = compare_series("Table I message sizes", ours_numbers, paper_numbers)
    result = ExperimentResult(
        experiment_id="table1",
        title="Table I: breakdown of remote API messages",
        text=table,
        comparisons=[comparison],
        csv_tables={
            "table1": (
                ["operation", "send_fixed", "send_has_payload",
                 "recv_fixed", "recv_has_payload"],
                [
                    [c.operation, c.send_fixed, int(c.send_has_payload),
                     c.receive_fixed, int(c.receive_has_payload)]
                    for c in measured
                ],
            )
        },
    )
    result.text += result.comparison_lines()
    return result
