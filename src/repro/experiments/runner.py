"""Run experiments and write their artifacts to disk."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment
from repro.reporting.csvout import write_csv


def write_result(result: ExperimentResult, outdir: str | Path) -> list[Path]:
    """Write the text report and every CSV of one experiment."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    text_path = outdir / f"{result.experiment_id}.txt"
    text_path.write_text(result.text + "\n")
    paths.append(text_path)
    for name, (headers, rows) in result.csv_tables.items():
        paths.append(write_csv(outdir / f"{name}.csv", headers, rows))
    return paths


def run_all(
    experiment_ids: Iterable[str] | None = None,
    outdir: str | Path | None = None,
) -> list[ExperimentResult]:
    """Run a subset (default: everything) and optionally persist it."""
    ids = tuple(experiment_ids) if experiment_ids is not None else EXPERIMENT_IDS
    results: list[ExperimentResult] = []
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        results.append(result)
        if outdir is not None:
            write_result(result, outdir)
    return results
