"""Table IV: cross-validation of the estimation models, from simulated
testbed measurements on GigaE and 40GI."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.crossval import cross_validate
from repro.net.spec import get_network
from repro.paperdata.table4 import TABLE4_FFT, TABLE4_MM
from repro.reporting.compare import compare_series
from repro.reporting.tables import render_table
from repro.testbed.simulated import SimulatedTestbed, case_by_name


def run() -> ExperimentResult:
    testbed = SimulatedTestbed()
    spec_ge = get_network("GigaE")
    spec_ib = get_network("40GI")
    blocks: list[str] = []
    comparisons = []
    csv_rows: list[list] = []

    for case_name, paper_rows, scale, unit in (
        ("MM", TABLE4_MM, 1.0, "s"),
        ("FFT", TABLE4_FFT, 1e3, "ms"),
    ):
        case = case_by_name(case_name)
        measured_ge = testbed.measured_column(case, "GigaE")
        measured_ib = testbed.measured_column(case, "40GI")
        rows = cross_validate(case, measured_ge, measured_ib, spec_ge, spec_ib)

        table_rows = []
        ours_err: list[float] = []
        paper_err: list[float] = []
        ours_meas: list[float] = []
        paper_meas: list[float] = []
        for ours, paper in zip(rows, paper_rows):
            table_rows.append(
                [
                    ours.size,
                    ours.measured_a * scale,
                    ours.fixed_a * scale,
                    ours.estimated_b_from_a * scale,
                    ours.error_a_model_pct,
                    ours.measured_b * scale,
                    ours.fixed_b * scale,
                    ours.estimated_a_from_b * scale,
                    ours.error_b_model_pct,
                ]
            )
            csv_rows.append([case_name, *table_rows[-1]])
            ours_err += [ours.error_a_model_pct, ours.error_b_model_pct]
            paper_err += [paper.error_gigae_model_pct, paper.error_ib40_model_pct]
            ours_meas += [ours.measured_a * scale, ours.measured_b * scale]
            paper_meas += [paper.measured_gigae, paper.measured_ib40]

        blocks.append(
            render_table(
                ["Size", f"GigaE meas ({unit})", "Fixed", "Est 40GI", "Err %",
                 f"40GI meas ({unit})", "Fixed", "Est GigaE", "Err %"],
                table_rows,
                title=f"Table IV ({case_name}) -- cross-validation",
            )
        )
        comparisons.append(
            compare_series(f"Table IV {case_name} measured", ours_meas, paper_meas)
        )
        comparisons.append(
            compare_series(
                # Error columns are themselves percentages: compare in
                # absolute points, where sign agreement is the real test.
                f"Table IV {case_name} errors (abs pts/100)",
                [e / 100.0 for e in ours_err],
                [e / 100.0 for e in paper_err],
                absolute=True,
            )
        )

    result = ExperimentResult(
        experiment_id="table4",
        title="Table IV: cross-validation of both estimation models",
        text="\n\n".join(blocks),
        comparisons=comparisons,
        csv_tables={
            "table4": (
                ["case", "size", "measured_gigae", "fixed_gigae",
                 "est_ib40", "err_gigae_model_pct", "measured_ib40",
                 "fixed_ib40", "est_gigae", "err_ib40_model_pct"],
                csv_rows,
            )
        },
    )
    result.text += result.comparison_lines()
    return result
