"""Clocks: real time for functional runs, virtual time for simulations.

The paper's experiments are wall-clock measurements on real hardware; ours
re-create them on a :class:`VirtualClock` so that a 97-second GigaE matrix
product "runs" in microseconds of host time while the middleware, protocol
and device code paths are still genuinely exercised.  Components that can
work either way accept any object satisfying :class:`Clock`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface: read time, spend time."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def advance(self, seconds: float) -> None:
        """Spend ``seconds`` of time (sleep or virtual advance)."""
        ...


class VirtualClock:
    """A discrete simulated clock.  ``advance`` is free; ``now`` is exact."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(
                f"cannot advance a clock by a negative time ({seconds})"
            )
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move forward to ``timestamp``; never backwards."""
        if timestamp > self._now:
            self._now = timestamp

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.9f}s)"


class WallClock:
    """The host's monotonic clock; ``advance`` really sleeps."""

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(
                f"cannot sleep for a negative time ({seconds})"
            )
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "WallClock()"
