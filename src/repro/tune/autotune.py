"""Online retuning: step a live session toward the right tuned config.

A session launched with the wrong profile (or on a link whose behaviour
changed) shows up in the :class:`~repro.obs.conformance
.ConformanceMonitor` as streamed-copy drift: the EWMA relative error of
the ``h2d`` series leaves the band because the assumed network's
transfer law no longer matches what the wire delivers.  The
:class:`AutoTuner` sits in the span path (it is a tracer-sink callable,
feeding the monitor it wraps), and when drift is flagged it:

1. estimates the link's effective bandwidth from the streamed spans'
   payload/duration (EWMA-smoothed);
2. picks the *tuned neighbour*: the shipped table entry whose network
   is nearest in log-bandwidth space;
3. steps the runtime's live knobs -- streaming chunk size and pipeline
   window -- one ladder rung toward that entry's config, at most one
   step per ``cooldown`` observations.

Steps are deliberately conservative (one rung at a time, only the two
knobs that are safe to move mid-session) so a transient does not slam
the transport across the space.  ``status()`` is what ``/healthz`` and
``repro top`` render.
"""

from __future__ import annotations

import math

from repro.net.spec import get_network
from repro.tune.space import DEFAULT_SPACE, TransferConfig, TuningSpace

MIB = 1 << 20

#: Knobs the tuner may move on a live runtime.  Frame size and window
#: take effect on the next copy; the rest (socket buffers, allocator,
#: scheduler quantum) are fixed at session/daemon construction.
LIVE_KNOBS = ("chunk_bytes", "pipeline_window")


class AutoTuner:
    """Drift-driven live retuning of one client runtime.

    ``monitor`` is a ConformanceMonitor already configured for the
    network the session *assumed*; ``table`` maps profile names to
    :class:`~repro.tune.table.TunedEntry` (defaults to the shipped
    table).  Attach the tuner as the tracer sink (it is callable) or
    feed it spans explicitly via :meth:`observe`.
    """

    def __init__(
        self,
        runtime,
        monitor,
        table=None,
        space: TuningSpace = DEFAULT_SPACE,
        cooldown: int = 4,
        bw_alpha: float = 0.3,
        enabled: bool = True,
    ) -> None:
        if table is None:
            from repro.tune.table import SHIPPED_TABLE

            table = SHIPPED_TABLE
        self.runtime = runtime
        self.monitor = monitor
        self.table = dict(table)
        self.space = space
        self.cooldown = max(1, cooldown)
        self.bw_alpha = bw_alpha
        self.enabled = enabled
        self.observations = 0
        self.streamed_observations = 0
        self.drift_events = 0
        self.steps: list[dict] = []
        self.observed_bw_mibps: float | None = None
        self.target_profile: str | None = None
        self._since_step = self.cooldown  # first drift may step at once

    # -- span path -----------------------------------------------------------

    def __call__(self, span) -> None:
        self.observe(span)

    def observe(self, span) -> None:
        """Feed one finished client span: monitor first, then retune."""
        self.monitor.observe(span)
        self.observations += 1
        self._since_step += 1
        if not self._is_streamed_h2d(span):
            return
        self.streamed_observations += 1
        self._update_bandwidth(span)
        if not self.enabled:
            return
        if not self._streamed_drift():
            return
        self.drift_events += 1
        if self._since_step < self.cooldown:
            return
        self._step()

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _is_streamed_h2d(span) -> bool:
        return (
            getattr(span, "kind", None) == "client"
            and getattr(span, "phase", None) == "h2d"
            and span.attrs.get("streamed")
            and span.end is not None
            and span.duration_seconds > 0.0
        )

    def _update_bandwidth(self, span) -> None:
        payload = span.attrs.get("bytes_sent")
        if not payload:
            payload = span.attrs.get("chunks", 0) * span.attrs.get(
                "chunk_bytes", 0
            )
        if not payload:
            return
        bw = (payload / MIB) / span.duration_seconds
        if self.observed_bw_mibps is None:
            self.observed_bw_mibps = bw
        else:
            self.observed_bw_mibps += self.bw_alpha * (
                bw - self.observed_bw_mibps
            )

    def _streamed_drift(self) -> bool:
        return any(f.phase == "h2d" for f in self.monitor.findings())

    def _nearest_profile(self) -> str | None:
        """The table entry nearest the observed bandwidth (log space)."""
        if self.observed_bw_mibps is None or not self.table:
            return None
        target = math.log(max(self.observed_bw_mibps, 1e-9))
        return min(
            self.table,
            key=lambda name: abs(
                math.log(get_network(name).effective_bw_mibps) - target
            ),
        )

    def _live_config(self) -> TransferConfig:
        window = self.runtime.pipeline_window
        return self.space.default_config().replace(
            chunk_bytes=self.runtime.chunk_bytes,
            pipeline_window=0 if window is None else window,
        )

    def _step(self) -> None:
        profile = self._nearest_profile()
        if profile is None:
            return
        self.target_profile = profile
        target = self.table[profile].config
        current = self._live_config()
        stepped = self.space.step_toward(current, target, LIVE_KNOBS)
        if stepped == current:
            return
        self._since_step = 0
        if stepped.chunk_bytes != current.chunk_bytes:
            self.runtime.chunk_bytes = stepped.chunk_bytes
        if stepped.pipeline_window != current.pipeline_window:
            # Never flip a sync session into pipelining mid-flight; only
            # resize an already-pipelined window.
            if self.runtime.pipeline and stepped.pipeline_window > 0:
                self.runtime.pipeline_window = stepped.pipeline_window
        self.steps.append(
            {
                "after_observations": self.observations,
                "target_profile": profile,
                "chunk_bytes": self.runtime.chunk_bytes,
                "pipeline_window": self.runtime.pipeline_window,
                "observed_bw_mibps": self.observed_bw_mibps,
            }
        )

    # -- reporting -----------------------------------------------------------

    def converged(self) -> bool:
        """Within one ladder rung of the nearest tuned config on every
        live knob -- the retune demo's acceptance predicate."""
        profile = self.target_profile or self._nearest_profile()
        if profile is None:
            return False
        distance = self.space.rung_distance(
            self._live_config(), self.table[profile].config
        )
        return all(distance[name] <= 1 for name in LIVE_KNOBS)

    def status(self) -> dict:
        """The tune block surfaced on /healthz and in ``repro top``."""
        current = self._live_config()
        return {
            "enabled": self.enabled,
            "observations": self.observations,
            "streamed_observations": self.streamed_observations,
            "drift_events": self.drift_events,
            "drift_status": self.monitor.status,
            "observed_bw_mibps": self.observed_bw_mibps,
            "target_profile": self.target_profile,
            "converged": self.converged(),
            "steps": len(self.steps),
            "last_step": self.steps[-1] if self.steps else None,
            "chunk_bytes": current.chunk_bytes,
            "pipeline_window": current.pipeline_window,
        }
