"""The offline search driver: successive halving + coordinate descent.

Per network the driver spends its budget in three stages:

1. **Rung 0** -- the prior (static default) plus seeded random samples
   of the space, each scored on the *quick* workload subset.  The top
   third survive.
2. **Rung 1** -- survivors re-scored on the full matrix; the cheapest
   becomes the incumbent.
3. **Descent** -- one-rung coordinate moves around the incumbent,
   full-matrix scored, adopted greedily; stops after ``sweeps`` passes
   or when no neighbour improves.
4. **Simplify** -- any knob whose non-default value buys nothing on the
   virtual clock (socket buffers and the malloc policy are invisible to
   it; random rung-0 winners drag arbitrary values along) is reset to
   its prior.  The shipped table only pins knobs that earned their
   deviation.

Every evaluation lands in the trial log, and :func:`run_tuning` writes
the whole campaign -- space, per-network trial history, winners, and
the tuned-vs-default ratios -- to ``BENCH_tuning.json``.  Scores are
virtual-clock seconds (see :mod:`repro.tune.workloads`), so reruns
reproduce the numbers and CI can gate on the committed table.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.tune.space import DEFAULT_SPACE, TransferConfig, TuningSpace
from repro.tune.workloads import (
    NETWORK_NAMES,
    aggregate_seconds,
    evaluate_config,
    workload_names,
)


@dataclass(frozen=True)
class Trial:
    """One scored candidate."""

    trial_id: int
    network: str
    stage: str  # "default" | "rung0" | "rung1" | "descent"
    config: TransferConfig
    scores: dict[str, float]

    @property
    def aggregate(self) -> float:
        return aggregate_seconds(self.scores)

    def to_dict(self) -> dict:
        return {
            "trial_id": self.trial_id,
            "network": self.network,
            "stage": self.stage,
            "config": self.config.to_dict(),
            "scores": self.scores,
            "aggregate_seconds": self.aggregate,
        }


@dataclass
class NetworkTuning:
    """Everything one network's search produced."""

    network: str
    default: Trial
    best: Trial
    #: Quick-subset aggregate of the winner -- the CI gate value the
    #: shipped table records.
    quick_aggregate: float = 0.0
    trials: list[Trial] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """Tuned/default aggregate; < 1.0 means the tuner won."""
        if self.default.aggregate <= 0.0:
            return 1.0
        return self.best.aggregate / self.default.aggregate

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "default": self.default.to_dict(),
            "best": self.best.to_dict(),
            "quick_aggregate_seconds": self.quick_aggregate,
            "ratio": self.ratio,
            "trials": [t.to_dict() for t in self.trials],
        }


class _Evaluator:
    """Scores configs, memoizing per (config, quick) so the descent
    never pays twice for a revisited point."""

    def __init__(self, network: str, log: list[Trial]) -> None:
        self.network = network
        self.log = log
        self._cache: dict[tuple, Trial] = {}

    def __call__(
        self, config: TransferConfig, stage: str, quick: bool
    ) -> Trial:
        key = (tuple(sorted(config.to_dict().items())), quick)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        scores = evaluate_config(self.network, config, quick=quick)
        trial = Trial(
            trial_id=len(self.log),
            network=self.network,
            stage=stage,
            config=config,
            scores=scores,
        )
        self.log.append(trial)
        self._cache[key] = trial
        return trial


def tune_network(
    network: str,
    space: TuningSpace = DEFAULT_SPACE,
    seed: int = 0,
    rung0_candidates: int = 12,
    survivors: int = 4,
    sweeps: int = 2,
    progress=None,
) -> NetworkTuning:
    """Search one network; returns the winner plus the full trial log."""
    rng = random.Random((seed, network).__repr__())
    log: list[Trial] = []
    evaluate = _Evaluator(network, log)

    def note(msg: str) -> None:
        if progress is not None:
            progress(f"[{network}] {msg}")

    default_cfg = space.default_config()
    default = evaluate(default_cfg, "default", quick=False)
    note(f"default aggregate {default.aggregate:.6f}s")

    # Rung 0: prior + random samples on the quick subset.
    pool = [default_cfg]
    seen = {tuple(sorted(default_cfg.to_dict().items()))}
    while len(pool) < rung0_candidates:
        cand = space.random_config(rng)
        key = tuple(sorted(cand.to_dict().items()))
        if key in seen:
            continue
        seen.add(key)
        pool.append(cand)
    rung0 = sorted(
        (evaluate(c, "rung0", quick=True) for c in pool),
        key=lambda t: t.aggregate,
    )
    keep = rung0[: max(1, survivors)]
    note(f"rung 0 kept {len(keep)}/{len(rung0)} candidates")

    # Rung 1: survivors on the full matrix.
    rung1 = sorted(
        (evaluate(t.config, "rung1", quick=False) for t in keep),
        key=lambda t: t.aggregate,
    )
    best = min(rung1 + [default], key=lambda t: t.aggregate)
    note(f"rung 1 incumbent {best.aggregate:.6f}s")

    # Coordinate descent: greedy one-rung moves.
    for sweep in range(sweeps):
        improved = False
        for knob, cand in space.neighbours(best.config):
            trial = evaluate(cand, "descent", quick=False)
            if trial.aggregate < best.aggregate:
                note(
                    f"sweep {sweep}: {knob} -> "
                    f"{getattr(cand, knob)!r} ({trial.aggregate:.6f}s)"
                )
                best = trial
                improved = True
        if not improved:
            break

    # Simplify: walk knobs in order, resetting each to its prior when
    # that does not cost anything (ties break toward the default).
    for knob in space.knobs:
        if getattr(best.config, knob.name) == knob.prior:
            continue
        trial = evaluate(
            best.config.replace(**{knob.name: knob.prior}), "simplify",
            quick=False,
        )
        if trial.aggregate <= best.aggregate:
            note(f"simplify: {knob.name} back to prior {knob.prior!r}")
            best = trial

    note(f"best ratio {best.aggregate / max(default.aggregate, 1e-12):.3f}")
    quick = aggregate_seconds(
        evaluate_config(network, best.config, quick=True)
    )
    return NetworkTuning(
        network=network, default=default, best=best,
        quick_aggregate=quick, trials=log,
    )


def space_summary(space: TuningSpace = DEFAULT_SPACE) -> dict:
    return {
        k.name: {"values": list(k.values), "prior": k.prior,
                 "description": k.description}
        for k in space.knobs
    }


def run_tuning(
    networks: tuple[str, ...] = NETWORK_NAMES,
    space: TuningSpace = DEFAULT_SPACE,
    seed: int = 0,
    out_path: str | None = "BENCH_tuning.json",
    progress=None,
    **search_kwargs,
) -> dict:
    """The full campaign: every network searched, one JSON document."""
    results = {
        name: tune_network(
            name, space=space, seed=seed, progress=progress, **search_kwargs
        )
        for name in networks
    }
    wins = sum(1 for r in results.values() if r.ratio < 1.0)
    doc = {
        "seed": seed,
        "workloads": list(workload_names()),
        "quick_workloads": list(workload_names(quick=True)),
        "space": space_summary(space),
        "networks": {name: r.to_dict() for name, r in results.items()},
        "summary": {
            "networks": len(results),
            "tuned_wins": wins,
            "ratios": {name: r.ratio for name, r in results.items()},
        },
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


def reevaluate_shipped(
    tolerance: float = 0.05, networks: tuple[str, ...] | None = None
) -> list[dict]:
    """CI smoke: re-score every committed tuned config on the quick
    subset and compare against the score recorded when the table was
    generated.  A committed config regressing past ``tolerance`` means
    the transport/pipeline code lost performance the table promised."""
    from repro.tune.table import SHIPPED_TABLE

    rows = []
    for name, entry in SHIPPED_TABLE.items():
        if networks is not None and name not in networks:
            continue
        scores = evaluate_config(name, entry.config, quick=True)
        observed = aggregate_seconds(scores)
        recorded = entry.quick_aggregate_seconds
        regression = (observed - recorded) / recorded if recorded > 0 else 0.0
        rows.append(
            {
                "network": name,
                "recorded_seconds": recorded,
                "observed_seconds": observed,
                "regression": regression,
                "ok": regression <= tolerance,
                "scores": scores,
            }
        )
    return rows
