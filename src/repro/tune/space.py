"""Declarative tuning space over the transfer/pipeline knobs.

The middleware's hot path exposes a handful of scalar knobs -- streaming
frame size, chunking threshold, pipeline window, socket buffer sizes,
device malloc policy, launch-coalesce width, D2D routing -- whose best
values depend on the interconnect (Section VI's seven networks span four
orders of magnitude in effective bandwidth).  This module describes that
parameter space declaratively: each :class:`Knob` carries a discrete
value ladder plus a prior (the shipped static default), and a
:class:`TuningSpace` composes them into :class:`TransferConfig` points
the search driver in :mod:`repro.tune.search` can enumerate, perturb,
and score.

Ladders are deliberately coarse (powers of two): the virtual-clock
testbed's cost models are smooth in these knobs, so a finer grid buys
noise, not signal, and the online tuner steps along the same rungs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace

from repro.errors import ConfigurationError

KIB = 1 << 10
MIB = 1 << 20

#: Adaptive frame sizing sentinel understood by the client runtime: the
#: chunker derives the frame from the link's bandwidth-delay product.
ADAPTIVE = None

D2D_DIRECT = "direct"
D2D_STAGED = "staged"


@dataclass(frozen=True)
class TransferConfig:
    """One point in the tuning space: every knob pinned to a value.

    The defaults ARE the static shipped behaviour -- a default-built
    config must leave the runtime byte- and timing-identical to a run
    with no profile at all, which is what the no-profile conformance
    test pins down.
    """

    #: Streaming frame size; ``None`` keeps the adaptive link-derived
    #: window (see ``RemoteCudaRuntime._stream_chunk_bytes``).
    chunk_bytes: int | None = ADAPTIVE
    #: Copies at or above this many bytes go down the chunked streaming
    #: path; below it they stay monolithic.
    stream_threshold: int = 1 * MIB
    #: Deferred-ack in-flight bound; 0 keeps strict per-call
    #: synchronization (the protocol default).
    pipeline_window: int = 0
    #: SO_RCVBUF/SO_SNDBUF floor applied to TCP transports.
    socket_buffer_bytes: int = 4 * MIB
    #: Device allocator policy (``first-fit`` / ``best-fit`` / ``binned``).
    malloc_policy: str = "first-fit"
    #: Fair-share scheduler quantum: launches dispatched per tenant turn.
    launch_coalesce_width: int = 16
    #: Same-session device-to-device routing: ``direct`` executes the
    #: copy server-side off one header-only request; ``staged`` bounces
    #: the payload through the client (D2H + H2D), the pre-fast-path
    #: wire shape kept as a comparison baseline.
    d2d_route: str = D2D_DIRECT

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "TransferConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown transfer-config keys: {sorted(unknown)}"
            )
        return cls(**data)

    def replace(self, **changes) -> "TransferConfig":
        return replace(self, **changes)

    def client_kwargs(self) -> dict:
        """Constructor kwargs for ``RemoteCudaRuntime``-shaped clients."""
        window = self.pipeline_window
        return {
            "chunk_bytes": self.chunk_bytes,
            "stream_threshold": self.stream_threshold,
            "pipeline": window > 0,
            "pipeline_window": window if window > 0 else None,
            "d2d_route": self.d2d_route,
        }


@dataclass(frozen=True)
class Knob:
    """One tunable dimension: a named, ordered ladder of legal values."""

    name: str
    values: tuple
    prior: object
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"knob {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigurationError(f"knob {self.name!r} repeats a value")
        if self.prior not in self.values:
            raise ConfigurationError(
                f"knob {self.name!r}: prior {self.prior!r} not on the ladder"
            )

    def index(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ConfigurationError(
                f"knob {self.name!r}: {value!r} is not on the ladder "
                f"{list(self.values)}"
            ) from None

    def neighbours(self, value) -> list:
        """The one-rung moves from ``value`` (one or two entries)."""
        idx = self.index(value)
        out = []
        if idx > 0:
            out.append(self.values[idx - 1])
        if idx < len(self.values) - 1:
            out.append(self.values[idx + 1])
        return out

    def step_toward(self, value, target):
        """``value`` moved one rung toward ``target`` (or unchanged)."""
        idx, goal = self.index(value), self.index(target)
        if goal > idx:
            return self.values[idx + 1]
        if goal < idx:
            return self.values[idx - 1]
        return value


def _default_knobs() -> tuple[Knob, ...]:
    return (
        Knob(
            "chunk_bytes",
            (ADAPTIVE, 64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB,
             1 * MIB, 2 * MIB, 4 * MIB),
            prior=ADAPTIVE,
            description="streaming frame size (None = link-adaptive)",
        ),
        Knob(
            "stream_threshold",
            (256 * KIB, 512 * KIB, 1 * MIB, 2 * MIB, 4 * MIB),
            prior=1 * MIB,
            description="copies at/above this size stream chunked",
        ),
        Knob(
            "pipeline_window",
            (0, 4, 8, 16, 32, 64),
            prior=0,
            description="deferred-ack in-flight bound (0 = strict sync)",
        ),
        Knob(
            "socket_buffer_bytes",
            (1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB),
            prior=4 * MIB,
            description="TCP SO_RCVBUF/SO_SNDBUF floor",
        ),
        Knob(
            "malloc_policy",
            ("first-fit", "best-fit", "binned"),
            prior="first-fit",
            description="device allocator placement policy",
        ),
        Knob(
            "launch_coalesce_width",
            (1, 4, 8, 16, 32, 64),
            prior=16,
            description="fair-share launches dispatched per tenant turn",
        ),
        Knob(
            "d2d_route",
            (D2D_DIRECT, D2D_STAGED),
            prior=D2D_DIRECT,
            description="same-session D2D copy routing",
        ),
    )


@dataclass(frozen=True)
class TuningSpace:
    """The knob set the search driver walks."""

    knobs: tuple[Knob, ...] = field(default_factory=_default_knobs)

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ConfigurationError("tuning space repeats a knob name")
        legal = {f.name for f in fields(TransferConfig)}
        for name in names:
            if name not in legal:
                raise ConfigurationError(
                    f"knob {name!r} is not a TransferConfig field"
                )

    def knob(self, name: str) -> Knob:
        for k in self.knobs:
            if k.name == name:
                return k
        raise ConfigurationError(f"no knob named {name!r}")

    def default_config(self) -> TransferConfig:
        """Every knob at its prior: the static shipped behaviour."""
        return TransferConfig(**{k.name: k.prior for k in self.knobs})

    def validate(self, config: TransferConfig) -> None:
        for k in self.knobs:
            k.index(getattr(config, k.name))

    def random_config(self, rng: random.Random) -> TransferConfig:
        return TransferConfig(
            **{k.name: rng.choice(k.values) for k in self.knobs}
        )

    def neighbours(
        self, config: TransferConfig, knob_names: tuple[str, ...] | None = None
    ) -> list[tuple[str, TransferConfig]]:
        """All one-rung perturbations of ``config``, labelled by knob."""
        out = []
        for k in self.knobs:
            if knob_names is not None and k.name not in knob_names:
                continue
            for value in k.neighbours(getattr(config, k.name)):
                out.append((k.name, config.replace(**{k.name: value})))
        return out

    def step_toward(
        self,
        config: TransferConfig,
        target: TransferConfig,
        knob_names: tuple[str, ...] = ("chunk_bytes", "pipeline_window"),
    ) -> TransferConfig:
        """``config`` with each named knob moved one rung toward
        ``target`` -- the online tuner's conservative live step."""
        changes = {}
        for name in knob_names:
            k = self.knob(name)
            stepped = k.step_toward(getattr(config, name), getattr(target, name))
            if stepped != getattr(config, name):
                changes[name] = stepped
        return config.replace(**changes) if changes else config

    def rung_distance(self, a: TransferConfig, b: TransferConfig) -> dict[str, int]:
        """Per-knob ladder distance between two configs."""
        return {
            k.name: abs(k.index(getattr(a, k.name)) - k.index(getattr(b, k.name)))
            for k in self.knobs
        }


#: The canonical space every entry point shares.
DEFAULT_SPACE = TuningSpace()
