"""The shipped per-network tuned table.

``SHIPPED_TABLE`` is the checked-in output of ``repro tune`` (the full
search of :mod:`repro.tune.search` at seed 0): for each of the paper's
seven interconnects, the winning :class:`TransferConfig` plus the
scores recorded when the table was generated.  Clients and daemons load
an entry by network name through the ``profile=`` / ``--profile`` knob;
explicit kwargs always win over the profile.

The recorded scores are part of the contract: CI re-evaluates every
entry on the quick workload subset (``repro tune --quick``) and fails
if a committed config regresses more than 5% against its
``quick_aggregate_seconds`` -- the table is a performance promise, not
documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tune.space import DEFAULT_SPACE, TransferConfig

KIB = 1 << 10
MIB = 1 << 20

#: Name resolving to the static defaults (no tuning applied).
DEFAULT_PROFILE = "default"


@dataclass(frozen=True)
class TunedEntry:
    """One network's winning config plus its recorded evidence."""

    network: str
    config: TransferConfig
    #: Full-matrix virtual seconds of ``config`` when the table was made.
    aggregate_seconds: float
    #: Full-matrix virtual seconds of the static default, same run.
    default_aggregate_seconds: float
    #: Quick-subset virtual seconds of ``config`` -- the CI gate value.
    quick_aggregate_seconds: float

    @property
    def ratio(self) -> float:
        """Tuned/default; < 1.0 means the shipped config beats defaults."""
        if self.default_aggregate_seconds <= 0.0:
            return 1.0
        return self.aggregate_seconds / self.default_aggregate_seconds


def _entry(network, config_kwargs, aggregate, default_aggregate, quick):
    return TunedEntry(
        network=network,
        config=TransferConfig(**config_kwargs),
        aggregate_seconds=aggregate,
        default_aggregate_seconds=default_aggregate,
        quick_aggregate_seconds=quick,
    )


#: Output of ``repro tune`` at seed 0 (see BENCH_tuning.json for the
#: full trial log).  The pattern the search found: the pipeline window
#: is the knob that pays everywhere -- wide (64) on high-latency links
#: where each blocked ack is expensive, narrow (8) on 40GI where the
#: window stall itself is cheap and a shallow queue keeps the settle
#: arithmetic tight; the two sub-microsecond HT networks additionally
#: prefer pinned 256 KiB frames over the adaptive window (their
#: bandwidth-delay product is so small the adaptive chunker over-sizes
#: frames).  Socket buffers and the malloc policy stay at their priors:
#: the virtual clock cannot see them, and the simplify pass refuses to
#: ship a deviation that never earned a measured win.
SHIPPED_TABLE: dict[str, TunedEntry] = {
    "GigaE": _entry(
        "GigaE",
        {"pipeline_window": 64},
        aggregate=0.740963559,
        default_aggregate=0.747596266,
        quick=0.084506809,
    ),
    "40GI": _entry(
        "40GI",
        {"pipeline_window": 8},
        aggregate=0.091245245,
        default_aggregate=0.098575365,
        quick=0.020921062,
    ),
    "10GE": _entry(
        "10GE",
        {"pipeline_window": 64},
        aggregate=0.104489744,
        default_aggregate=0.10749963,
        quick=0.014210548,
    ),
    "10GI": _entry(
        "10GI",
        {"pipeline_window": 64},
        aggregate=0.094148965,
        default_aggregate=0.095653862,
        quick=0.011752492,
    ),
    "Myr": _entry(
        "Myr",
        {"pipeline_window": 64},
        aggregate=0.11825633,
        default_aggregate=0.119159197,
        quick=0.01370699,
    ),
    "F-HT": _entry(
        "F-HT",
        {"chunk_bytes": 256 * KIB, "pipeline_window": 64},
        aggregate=0.065348148,
        default_aggregate=0.065975995,
        quick=0.007661802,
    ),
    "A-HT": _entry(
        "A-HT",
        {"chunk_bytes": 256 * KIB, "pipeline_window": 64},
        aggregate=0.036910064,
        default_aggregate=0.037382367,
        quick=0.00455541,
    ),
}


def list_profiles() -> tuple[str, ...]:
    """Known profile names (the seven networks plus ``default``)."""
    return (DEFAULT_PROFILE, *SHIPPED_TABLE.keys())


def get_entry(name: str) -> TunedEntry:
    try:
        return SHIPPED_TABLE[name]
    except KeyError:
        known = ", ".join(list_profiles())
        raise ConfigurationError(
            f"unknown profile {name!r}; known profiles: {known}"
        ) from None


def resolve_profile(name: str) -> TransferConfig:
    """Profile name -> the TransferConfig clients/daemons should apply."""
    if name == DEFAULT_PROFILE:
        return DEFAULT_SPACE.default_config()
    return get_entry(name).config
