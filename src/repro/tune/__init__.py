"""Auto-tuning of the transfer/pipeline parameter space.

Four pieces:

* :mod:`repro.tune.space` -- the declarative knob space
  (:class:`TransferConfig`, :class:`TuningSpace`);
* :mod:`repro.tune.workloads` -- the virtual-clock workload matrix
  candidates are scored on;
* :mod:`repro.tune.search` -- the offline driver (successive halving +
  coordinate descent) writing ``BENCH_tuning.json``;
* :mod:`repro.tune.table` -- the checked-in per-network winners served
  through the ``profile=`` knob;
* :mod:`repro.tune.autotune` -- the online tuner stepping a live
  session toward the table when conformance drift says the assumed
  network is wrong.
"""

from repro.tune.autotune import AutoTuner
from repro.tune.space import DEFAULT_SPACE, Knob, TransferConfig, TuningSpace
from repro.tune.table import (
    DEFAULT_PROFILE,
    SHIPPED_TABLE,
    TunedEntry,
    get_entry,
    list_profiles,
    resolve_profile,
)

__all__ = [
    "AutoTuner",
    "DEFAULT_PROFILE",
    "DEFAULT_SPACE",
    "Knob",
    "SHIPPED_TABLE",
    "TransferConfig",
    "TunedEntry",
    "TuningSpace",
    "get_entry",
    "list_profiles",
    "resolve_profile",
]
