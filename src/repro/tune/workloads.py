"""The workload matrix candidate configs are scored on.

Every workload runs a real client session against a real daemon over the
in-process transport, wrapped in a :class:`~repro.transport.timed
.TimedTransport` charging a :class:`~repro.net.simlink.SimulatedLink`
for the network under study.  The score is pure virtual time::

    link clock delta            (request legs, streaming settle)
  + device clock delta(s)       (kernel/copy cost models)
  + round-trip delta x response latency

so evaluation is deterministic and network-scaled: the same candidate
scores identically on every run, and a 40-Gb link really is three
orders of magnitude cheaper per byte than GigaE.  Devices run with
``functional=False`` -- the cost models advance the clocks but no bytes
are copied device-side, keeping a full matrix evaluation cheap.

The matrix mirrors the paper's usage spectrum: the MM case study at a
small and a large size (Section IV.B), a burst of tiny calls (latency
bound -- where the pipeline window pays), streamed copies from 1 to
64 MiB (bandwidth bound -- where frame size pays), an eight-tenant
shared-device mix (where the coalesce width pays), and a D2D staging
copy (where routing pays).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.net.simlink import SimulatedLink
from repro.net.spec import NetworkSpec, get_network
from repro.rcuda.client.connection import RCudaClient
from repro.rcuda.server.daemon import RCudaDaemon
from repro.rcuda.server.tenancy import DevicePool
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.errors import check
from repro.simcuda.types import Dim3, MemcpyKind
from repro.transport.inproc import inproc_pair
from repro.transport.timed import TimedTransport
from repro.tune.space import TransferConfig
from repro.workloads.matmul import MatrixProductCase

KIB = 1 << 10
MIB = 1 << 20

#: All seven interconnects of the paper, measured first.
NETWORK_NAMES = ("GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT")

_CASE = MatrixProductCase()


class Harness:
    """One daemon + N tenant sessions over one timed link.

    ``score()`` reads the virtual stopwatch: link clock, every device
    clock, and the blocking round trips each client paid (priced at the
    link's small-response latency) -- the quantity the tuner minimizes.
    """

    def __init__(
        self, spec: NetworkSpec, config: TransferConfig, tenants: int = 1
    ) -> None:
        self.spec = spec
        self.config = config
        self.link = SimulatedLink(spec)
        if tenants > 1:
            self.pool = DevicePool(
                devices=1,
                quantum=config.launch_coalesce_width,
                device_factory=lambda: SimulatedGpu(
                    functional=False, memory_policy=config.malloc_policy
                ),
            )
            self.devices = list(self.pool.devices)
            self.daemon = RCudaDaemon(self.devices[0], pool=self.pool)
        else:
            self.pool = None
            self.devices = [
                SimulatedGpu(functional=False, memory_policy=config.malloc_policy)
            ]
            self.daemon = RCudaDaemon(self.devices[0])
        self.clients: list[RCudaClient] = []
        for _ in range(tenants):
            client_end, server_end = inproc_pair()
            self.daemon.serve_transport(server_end)
            timed = TimedTransport(client_end, self.link)
            self.clients.append(
                RCudaClient.connect(timed, _CASE.module(), **config.client_kwargs())
            )

    @property
    def runtime(self):
        return self.clients[0].runtime

    def score(self) -> float:
        response = self.spec.actual_one_way_seconds(4)
        trips = sum(c.runtime.round_trips for c in self.clients)
        return (
            self.link.clock.now()
            + sum(d.clock.now() for d in self.devices)
            + trips * response
        )

    def close(self) -> None:
        for client in self.clients:
            client.close()
        self.daemon.stop()


@contextmanager
def _session(spec, config, tenants: int = 1):
    harness = Harness(spec, config, tenants=tenants)
    try:
        yield harness
    finally:
        harness.close()


def _host_buffer(nbytes: int) -> np.ndarray:
    return np.zeros(nbytes, dtype=np.uint8)


# -- workload bodies --------------------------------------------------------


def _run_mm(harness: Harness, size: int) -> None:
    # functional=False devices return unverifiable bytes; the wire
    # traffic and cost-model charges are identical to a verified run.
    _CASE.run(harness.runtime, size, verify=False)


def _run_burst(harness: Harness, iterations: int = 64) -> None:
    """Many tiny state-changing calls, one synchronization at the end:
    strict sync pays a round trip per call, a pipeline window pays
    ~one per window stall."""
    rt = harness.runtime
    err, ptr = rt.cudaMalloc(4 * KIB)
    check(err, "burst malloc")
    for _ in range(iterations):
        check(rt.cudaMemset(ptr, 0, 4 * KIB), "burst memset")
        check(
            rt.launch_kernel(
                _CASE.kernel_name,
                Dim3(1, 1, 1),
                Dim3(16, 4, 1),
                (ptr, ptr, ptr, 16, 16, 16, 1.0, 0.0),
            ),
            "burst launch",
        )
    check(rt.cudaThreadSynchronize(), "burst sync")
    rt.cudaFree(ptr)


def _run_stream(harness: Harness, nbytes: int) -> None:
    """One large host-to-device copy: the chunked streaming path."""
    rt = harness.runtime
    err, ptr = rt.cudaMalloc(nbytes)
    check(err, "stream malloc")
    host = _host_buffer(nbytes)
    err, _ = rt.cudaMemcpy(
        ptr, 0, nbytes, MemcpyKind.cudaMemcpyHostToDevice, host_data=host
    )
    check(err, "stream h2d")
    check(rt.cudaThreadSynchronize(), "stream sync")
    rt.cudaFree(ptr)


def _run_tenants(harness: Harness, rounds: int = 4) -> None:
    """Eight tenants interleaving launches on one shared device: the
    fair-share scheduler's coalesce width sets how much launch overhead
    amortizes per dispatch turn."""
    runtimes = [c.runtime for c in harness.clients]
    ptrs = []
    for rt in runtimes:
        err, ptr = rt.cudaMalloc(64 * KIB)
        check(err, "tenant malloc")
        ptrs.append(ptr)
    for _ in range(rounds):
        for rt, ptr in zip(runtimes, ptrs):
            check(
                rt.launch_kernel(
                    _CASE.kernel_name,
                    Dim3(2, 4, 1),
                    Dim3(16, 4, 1),
                    (ptr, ptr, ptr, 64, 64, 64, 1.0, 0.0),
                ),
                "tenant launch",
            )
    for rt, ptr in zip(runtimes, ptrs):
        check(rt.cudaThreadSynchronize(), "tenant sync")
        rt.cudaFree(ptr)


def _run_d2d(harness: Harness, nbytes: int = 8 * MIB) -> None:
    """Same-session device-to-device copy: ``direct`` routing executes
    server-side off a header-only request; ``staged`` pays the payload
    twice on the wire."""
    rt = harness.runtime
    err, src = rt.cudaMalloc(nbytes)
    check(err, "d2d malloc src")
    err, dst = rt.cudaMalloc(nbytes)
    check(err, "d2d malloc dst")
    err, _ = rt.cudaMemcpy(
        dst, src, nbytes, MemcpyKind.cudaMemcpyDeviceToDevice
    )
    check(err, "d2d copy")
    check(rt.cudaThreadSynchronize(), "d2d sync")
    rt.cudaFree(src)
    rt.cudaFree(dst)


# -- the matrix -------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    name: str
    tenants: int
    body: object  # callable(Harness) -> None
    quick: bool  # member of the cheap subset (rung 0 / --quick)


WORKLOADS: tuple[Workload, ...] = (
    Workload("mm-256", 1, lambda h: _run_mm(h, 256), quick=True),
    Workload("mm-1024", 1, lambda h: _run_mm(h, 1024), quick=False),
    Workload("burst", 1, _run_burst, quick=True),
    Workload("stream-1mib", 1, lambda h: _run_stream(h, 1 * MIB), quick=False),
    Workload("stream-8mib", 1, lambda h: _run_stream(h, 8 * MIB), quick=True),
    Workload("stream-64mib", 1, lambda h: _run_stream(h, 64 * MIB), quick=False),
    Workload("tenants-8", 8, _run_tenants, quick=True),
    Workload("d2d-8mib", 1, _run_d2d, quick=False),
)


def workload_names(quick: bool = False) -> tuple[str, ...]:
    return tuple(w.name for w in WORKLOADS if w.quick or not quick)


def evaluate_config(
    network: str | NetworkSpec,
    config: TransferConfig,
    quick: bool = False,
    workloads: tuple[str, ...] | None = None,
) -> dict[str, float]:
    """Virtual seconds per workload for one candidate on one network.

    ``quick`` restricts to the cheap subset; ``workloads`` restricts to
    named entries.  Each workload gets a fresh harness, so scores never
    leak across workloads.
    """
    spec = network if isinstance(network, NetworkSpec) else get_network(network)
    chosen = [
        w
        for w in WORKLOADS
        if (workloads is None or w.name in workloads) and (w.quick or not quick)
    ]
    scores: dict[str, float] = {}
    for w in chosen:
        with _session(spec, config, tenants=w.tenants) as harness:
            before = harness.score()
            w.body(harness)
            scores[w.name] = harness.score() - before
    return scores


def aggregate_seconds(scores: dict[str, float]) -> float:
    """The trial objective: total virtual seconds across the matrix."""
    return sum(scores.values())
