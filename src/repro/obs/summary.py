"""ASCII summaries of span logs: the `repro stats` backend.

Aggregates a span stream per (kind, function): call count, latency
statistics, and wire bytes, rendered through :mod:`repro.reporting` so
the output matches the rest of the toolkit's tables.  Also converts a
span log back into an :class:`~repro.testbed.trace.ExecutionTrace`, the
structure the estimation model was built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.exporters import phase_breakdown
from repro.obs.spans import Span
from repro.reporting import render_table


@dataclass(frozen=True)
class FunctionStats:
    """Aggregate over every span of one function on one side."""

    kind: str
    name: str
    calls: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    bytes_sent: int
    bytes_received: int


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def aggregate_spans(spans: Iterable[Span]) -> list[FunctionStats]:
    """Per-(kind, function) statistics, client side first."""
    groups: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        groups.setdefault((span.kind, span.name), []).append(span)
    out: list[FunctionStats] = []
    for (kind, name), members in sorted(groups.items()):
        durations = sorted(s.duration_seconds for s in members)
        total = sum(durations)
        out.append(
            FunctionStats(
                kind=kind,
                name=name,
                calls=len(members),
                total_seconds=total,
                mean_seconds=total / len(members),
                p50_seconds=_percentile(durations, 0.50),
                p95_seconds=_percentile(durations, 0.95),
                p99_seconds=_percentile(durations, 0.99),
                bytes_sent=sum(int(s.attrs.get("bytes_sent", 0)) for s in members),
                bytes_received=sum(
                    int(s.attrs.get("bytes_received", 0)) for s in members
                ),
            )
        )
    return out


def render_summary(spans: Iterable[Span], title: str = "Span summary") -> str:
    """The `repro stats` table: one row per (side, function)."""
    spans = list(spans)
    stats = aggregate_spans(spans)
    rows = [
        [
            s.kind,
            s.name,
            s.calls,
            s.total_seconds * 1e3,
            s.mean_seconds * 1e3,
            s.p50_seconds * 1e3,
            s.p95_seconds * 1e3,
            s.p99_seconds * 1e3,
            s.bytes_sent,
            s.bytes_received,
        ]
        for s in stats
    ]
    table = render_table(
        ["Side", "Function", "Calls", "Total (ms)", "Mean (ms)",
         "P50 (ms)", "P95 (ms)", "P99 (ms)", "B sent", "B recv"],
        rows,
        title=title,
        digits=3,
        align_left_cols=(0, 1),
    )
    phases = phase_breakdown(spans)
    if phases:
        total = sum(phases.values()) or 1.0
        phase_rows = [
            [name, seconds * 1e3, 100.0 * seconds / total]
            for name, seconds in phases.items()
        ]
        table += "\n\n" + render_table(
            ["Phase", "Time (ms)", "Share (%)"],
            phase_rows,
            title="Client phase breakdown",
            digits=3,
        )
    return table


def spans_to_trace(
    spans: Iterable[Span],
    case: str,
    size: int,
    network: str,
    kind: str = "client",
) -> "ExecutionTrace":
    """Rebuild an :class:`ExecutionTrace` from a span log.

    Span time is attributed per phase the way the functional testbed sees
    it: one aggregate entry per phase, in canonical order, so
    ``by_phase()`` of the result equals :func:`phase_breakdown` of the
    spans by construction.
    """
    from repro.testbed.trace import PHASE_ORDER, ExecutionTrace

    trace = ExecutionTrace(case=case, size=size, network=network)
    for phase, seconds in phase_breakdown(spans, kind=kind).items():
        if phase in PHASE_ORDER:
            trace.add(phase, host_seconds=seconds)
    return trace
