"""Span tracing for the rCUDA request path.

One span covers one remoted operation: the client opens a span around each
request/response exchange, the server opens one around each dispatched
request.  Spans are keyed by (session, seq) so the two sides of the same
RPC can be joined after the fact without widening the fixed Table I wire
format by a single byte -- correlation is positional, exactly like the
protocol itself (requests on a connection are strictly ordered).

Timestamps come from any :class:`repro.clock.Clock`, so the same tracer
records wall time under the functional testbed and virtual time under the
simulated one.  The default tracer is :data:`NULL_TRACER`, whose every
method is a no-op, keeping the uninstrumented hot path free of work
beyond one attribute test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.clock import Clock, WallClock

#: Span kinds: which side of the wire observed the operation.
KIND_CLIENT = "client"
KIND_SERVER = "server"


@dataclass
class Span:
    """One timed operation on one side of the wire."""

    name: str
    kind: str
    session: str
    seq: int
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    @property
    def phase(self) -> str | None:
        """Section III phase this operation belongs to, if attributed."""
        return self.attrs.get("phase")

    #: Reserved top-level keys of the JSONL form.  An attr with one of
    #: these names would overwrite the span's own field in the flat dict,
    #: so colliding attrs are namespaced under an ``attrs.`` prefix.
    CORE_KEYS = frozenset({"name", "kind", "session", "seq", "start", "end"})

    def to_event(self) -> dict:
        """The JSONL form (one flat dict per line).

        Attrs whose names collide with a core key (``start``, ``seq``,
        ...) are written as ``attrs.<name>`` so they can never shadow the
        span's own fields; everything else stays flat for greppability.
        """
        event = {
            "name": self.name,
            "kind": self.kind,
            "session": self.session,
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
        }
        core = self.CORE_KEYS
        for k, v in self.attrs.items():
            event[f"attrs.{k}" if k in core else k] = v
        return event

    @classmethod
    def from_event(cls, event: dict) -> "Span":
        """Inverse of :meth:`to_event`."""
        core = cls.CORE_KEYS
        attrs = {}
        for k, v in event.items():
            if k in core:
                continue
            if k.startswith("attrs.") and k[6:] in core:
                attrs[k[6:]] = v
            else:
                attrs[k] = v
        return cls(
            name=event["name"],
            kind=event["kind"],
            session=event["session"],
            seq=int(event["seq"]),
            start=float(event["start"]),
            end=None if event.get("end") is None else float(event["end"]),
            attrs=attrs,
        )


class Tracer:
    """Collects spans; optionally streams each finished span to a sink."""

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        sink: Callable[[Span], None] | None = None,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.spans: list[Span] = []
        self._sink = sink

    def start(self, name: str, kind: str, session: str, seq: int, **attrs) -> Span:
        """Open a span at the clock's current instant."""
        return Span(
            name=name,
            kind=kind,
            session=session,
            seq=seq,
            start=self.clock.now(),
            attrs=attrs,
        )

    def finish(self, span: Span, **attrs) -> Span:
        """Close ``span`` now, merge ``attrs``, and retain it."""
        span.end = self.clock.now()
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        if self._sink is not None:
            self._sink(span)
        return span

    def fail(self, span: Span, **attrs) -> Span:
        """Close ``span`` after a transport/protocol failure.

        The request path calls this from its error handlers so a raise
        between send and response never leaves a span dangling; the span
        is retained with ``outcome="error"`` (in-flight pipelined spans
        that will never see their response are abandoned the same way).
        """
        return self.finish(span, outcome="error", **attrs)

    def annotate(self, span: Span, **attrs) -> Span:
        """Merge attrs into an already-finished span.

        Deferred-ack (pipelined) calls finish their span when the request
        leaves the client -- that is the per-call latency -- and record
        the acknowledgement later, at drain time, through this method
        (``acked`` timestamp, response bytes, error code).  Streaming
        sinks have already seen the span by then; batch exporters pick
        the merged attrs up.
        """
        span.attrs.update(attrs)
        return span

    def record(
        self,
        name: str,
        kind: str,
        session: str,
        seq: int,
        start: float,
        end: float,
        **attrs,
    ) -> Span:
        """Retain an already-timed span (virtual-clock replays)."""
        span = Span(
            name=name, kind=kind, session=session, seq=seq,
            start=start, end=end, attrs=attrs,
        )
        self.spans.append(span)
        if self._sink is not None:
            self._sink(span)
        return span

    # -- queries ----------------------------------------------------------

    def spans_for(self, kind: str | None = None, session: str | None = None) -> list[Span]:
        return [
            s for s in self.spans
            if (kind is None or s.kind == kind)
            and (session is None or s.session == session)
        ]

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """The zero-cost default: every operation is a no-op.

    ``enabled`` is False so instrumented code can skip even the argument
    marshalling (byte-counter snapshots and the like) that feeding a real
    tracer would need.
    """

    enabled = False
    spans: tuple = ()

    def start(self, name: str, kind: str, session: str, seq: int, **attrs) -> None:
        return None

    def finish(self, span, **attrs) -> None:
        return None

    def fail(self, span, **attrs) -> None:
        return None

    def annotate(self, span, **attrs) -> None:
        return None

    def record(self, *args, **attrs) -> None:
        return None

    def spans_for(self, kind: str | None = None, session: str | None = None) -> list:
        return []

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer instance; use this instead of constructing one.
NULL_TRACER = NullTracer()
