"""`repro top`: a live ASCII dashboard over /metrics, /sessions, /healthz.

Standard-library only.  Each refresh scrapes the three endpoints a
running ``repro serve --metrics-port`` exposes and renders one screen:
daemon health and SLO status, throughput (counter deltas between
refreshes), tail-latency quantiles from the streaming SLO sketches, and
the per-session accounting table.  ``--once`` renders a single frame
(what the tests drive); the interactive loop just repeats it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import TransportError
from repro.reporting import render_table

#: Bytes-per-second and similar rates are derived from counter deltas
#: between consecutive frames; the first frame shows totals instead.


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """A minimal parser of the v0.0.4 text exposition: per metric name a
    list of (labels, value) samples.  Enough for the exposition this
    repo's own exporter renders (no escapes beyond ``\\"``, ``\\\\`` and
    ``\\n`` appear in our label values)."""
    out: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                labels_s, value_s = rest.rsplit("}", 1)
                labels = {}
                for part in _split_labels(labels_s):
                    k, v = part.split("=", 1)
                    labels[k] = (
                        v.strip('"')
                        .replace("\\n", "\n")
                        .replace('\\"', '"')
                        .replace("\\\\", "\\")
                    )
            else:
                name, value_s = line.rsplit(None, 1)
                labels = {}
            value = float(value_s)
        except ValueError:
            continue  # one malformed line must not kill the dashboard
        out.setdefault(name.strip(), []).append((labels, value))
    return out


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (p.strip() for p in parts) if p]


def metric_value(
    metrics: dict, name: str, default: float = 0.0, **labels
) -> float:
    """First sample of ``name`` whose labels include ``labels``."""
    for sample_labels, value in metrics.get(name, ()):
        if all(sample_labels.get(k) == str(v) for k, v in labels.items()):
            return value
    return default


def fetch_endpoints(base_url: str, timeout: float = 2.0) -> dict:
    """One scrape of /metrics, /healthz and /sessions.

    Returns ``{"metrics": {...}, "health": {...}, "sessions": {...}}``;
    raises :class:`~repro.errors.TransportError` when /metrics itself is
    unreachable (the other two degrade to empty documents)."""
    base = base_url.rstrip("/")

    def get(path: str) -> bytes:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.read()

    try:
        metrics_text = get("/metrics").decode()
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise TransportError(f"cannot scrape {base}/metrics: {exc}") from exc
    out = {"metrics": parse_prometheus(metrics_text)}
    for key, path in (("health", "/healthz"), ("sessions", "/sessions")):
        try:
            out[key] = json.loads(get(path).decode())
        except urllib.error.HTTPError as exc:
            # /healthz answers 503 while stopping -- the body still parses.
            try:
                out[key] = json.loads(exc.read().decode())
            except Exception:
                out[key] = {}
        except Exception:
            out[key] = {}
    return out


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GiB"


#: ``--sort`` column -> ledger accessor.  Tenant-backed keys read the
#: ``tenant`` block a ``--share-device`` daemon adds to /sessions rows
#: (zero for unshared sessions, so the sort is still total).
SESSION_SORT_KEYS = {
    "session": lambda s: str(s.get("session", "")),
    "reqs": lambda s: s.get("requests", 0),
    "held": lambda s: s.get("device_bytes_held", 0),
    "in": lambda s: s.get("bytes_in", 0),
    "out": lambda s: s.get("bytes_out", 0),
    "launches": lambda s: s.get("launches", 0),
    "quota": lambda s: (s.get("tenant") or {}).get("quota_used_bytes", 0),
    "wait": lambda s: (s.get("tenant") or {}).get("queue_wait_p99_s", 0.0),
    "coalesced": lambda s: (
        (s.get("tenant") or {}).get("launches_coalesced", 0)
    ),
}


def render_dashboard(
    snapshot: dict,
    previous: dict | None = None,
    interval_seconds: float | None = None,
    sort: str | None = None,
) -> str:
    """One frame of the dashboard from a :func:`fetch_endpoints` snapshot.

    With a ``previous`` snapshot and the seconds between them, counters
    become rates; without, totals are shown.  ``sort`` orders the session
    table by one of :data:`SESSION_SORT_KEYS` (descending, except the
    lexical ``session`` key).
    """
    metrics = snapshot.get("metrics", {})
    health = snapshot.get("health", {}) or {}
    sessions_doc = snapshot.get("sessions", {}) or {}
    lines: list[str] = []

    status = health.get("status", "unknown")
    drift = health.get("drift", "disabled")
    slo = health.get("slo", "disabled")
    uptime = health.get("uptime_seconds", 0.0)
    lines.append(
        f"rcuda daemon  status={status}  uptime={uptime:.0f}s  "
        f"drift={drift}  slo={slo}"
    )

    active = metric_value(metrics, "rcuda_active_sessions")
    total = metric_value(metrics, "rcuda_sessions_total")
    unclean = metric_value(metrics, "rcuda_unclean_sessions_total")
    mem_used = metric_value(metrics, "rcuda_device_mem_used_bytes")
    mem_cap = metric_value(metrics, "rcuda_device_mem_capacity_bytes")
    requests = metric_value(metrics, "rcuda_requests_total")
    occupancy = 100.0 * mem_used / mem_cap if mem_cap else 0.0
    lines.append(
        f"sessions: {active:.0f} active / {total:.0f} total "
        f"({unclean:.0f} unclean)   device mem: "
        f"{_fmt_bytes(mem_used)} / {_fmt_bytes(mem_cap)} "
        f"({occupancy:.1f}%)"
    )

    if "loop_lag_seconds" in health:
        # The async daemon's saturation signals (exported on /healthz
        # since the event-loop PR, surfaced here at last): scheduling
        # lag of the loop itself plus the decoded-but-undispatched
        # request backlog across every session queue.
        lines.append(
            f"event loop: lag {health.get('loop_lag_seconds', 0.0) * 1e3:.2f} ms "
            f"(max {health.get('loop_lag_max_seconds', 0.0) * 1e3:.2f} ms)   "
            f"queued requests: {health.get('queued_requests', 0)}   "
            f"connections: {health.get('loop_connections', 0)}   "
            f"backpressure stalls: {health.get('backpressure_stalls', 0)}"
        )

    tune = health.get("tune")
    if tune:
        # A daemon serving under a tuned profile (and, when an online
        # AutoTuner reports through it, the live retuning state).
        cfg = tune.get("config", {}) or {}
        knobs = "  ".join(
            f"{key}={cfg[key]!r}" for key in sorted(cfg)
        )
        lines.append(
            f"tuned profile: {tune.get('profile')} "
            f"({tune.get('source', 'tuned-table')})  {knobs}"
        )
        auto = tune.get("autotune")
        if auto:
            bw = auto.get("observed_bw_mibps")
            bw_text = f"{bw:.0f} MiB/s" if bw else "n/a"
            lines.append(
                f"autotune: drift={auto.get('drift_status')} "
                f"steps={auto.get('steps', 0)} "
                f"target={auto.get('target_profile')} "
                f"observed bw {bw_text} "
                f"converged={auto.get('converged')}"
            )

    if previous is not None and interval_seconds and interval_seconds > 0:
        prev_requests = metric_value(
            previous.get("metrics", {}), "rcuda_requests_total"
        )
        prev_bytes = sum(
            v for _, v in previous.get("metrics", {}).get(
                "rcuda_rpc_bytes_total", ()
            )
        )
        now_bytes = sum(
            v for _, v in metrics.get("rcuda_rpc_bytes_total", ())
        )
        rps = max(0.0, requests - prev_requests) / interval_seconds
        bps = max(0.0, now_bytes - prev_bytes) / interval_seconds
        lines.append(
            f"throughput: {rps:,.0f} req/s   {_fmt_bytes(bps)}/s on the wire"
        )
    else:
        lines.append(f"throughput: {requests:,.0f} requests total")

    slo_objectives = health.get("slo_objectives") or {}
    if slo_objectives:
        rows = [
            [
                name,
                "ok" if entry.get("ok") else "BURNING",
                entry.get("burn_rate", 0.0),
                entry.get("window_samples", 0),
            ]
            for name, entry in sorted(slo_objectives.items())
        ]
        lines.append("")
        lines.append(
            render_table(
                ["Objective", "State", "Burn rate", "Samples"],
                rows,
                title="SLO burn rates",
                digits=3,
                align_left_cols=(0, 1),
            )
        )

    quantiles = metrics.get("rcuda_slo_quantile", [])
    latency_rows = []
    by_series: dict[tuple, dict] = {}
    for labels, value in quantiles:
        if labels.get("metric") != "latency_seconds":
            continue
        key = (labels.get("call", ""), labels.get("phase", ""))
        by_series.setdefault(key, {})[labels.get("quantile", "")] = value
    for (call, phase), qs in sorted(by_series.items()):
        latency_rows.append([
            call, phase,
            qs.get("0.5", 0.0) * 1e3,
            qs.get("0.95", 0.0) * 1e3,
            qs.get("0.99", 0.0) * 1e3,
        ])
    if latency_rows:
        lines.append("")
        lines.append(
            render_table(
                ["Call", "Phase", "P50 (ms)", "P95 (ms)", "P99 (ms)"],
                latency_rows,
                title="Tail latency (streaming estimates)",
                digits=3,
                align_left_cols=(0, 1),
            )
        )

    ledgers = list(sessions_doc.get("sessions", []))
    if sort is not None and sort in SESSION_SORT_KEYS:
        key = SESSION_SORT_KEYS[sort]
        ledgers.sort(key=key, reverse=(sort != "session"))
    tenanted = any(s.get("tenant") for s in ledgers)
    session_rows = []
    for s in ledgers:
        row = [
            s.get("session", "?"),
            "live" if not s.get("finished") else (
                s.get("close_reason") or "closed"
            ),
            s.get("requests", 0),
            s.get("device_bytes_held", 0),
            s.get("bytes_in", 0),
            s.get("bytes_out", 0),
            s.get("launches", 0),
            s.get("last_error_name") or "-",
        ]
        if tenanted:
            t = s.get("tenant") or {}
            quota = t.get("quota_bytes")
            used = t.get("quota_used_bytes", 0)
            row.extend([
                f"{used}/{quota}" if quota is not None else str(used),
                f"{t.get('queue_wait_p99_s', 0.0) * 1e3:.2f}",
                t.get("launches_coalesced", 0),
            ])
        session_rows.append(row)
    if session_rows:
        headers = ["Session", "State", "Reqs", "Held B", "B in", "B out",
                   "Launches", "Last err"]
        left = (0, 1, 7)
        if tenanted:
            headers += ["Quota B", "Wait p99 ms", "Coalesced"]
            left = (0, 1, 7, 8)
        lines.append("")
        lines.append(
            render_table(
                headers,
                session_rows,
                title="Sessions",
                digits=0,
                align_left_cols=left,
            )
        )
    else:
        lines.append("")
        lines.append("(no session ledgers -- accounting disabled?)")
    return "\n".join(lines)


def run_top(
    base_url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    out=None,
    clear: bool = True,
    sort: str | None = None,
) -> int:
    """The refresh loop: scrape, render, sleep, repeat.

    ``iterations=None`` runs until interrupted; ``iterations=1`` is the
    ``--once`` mode.  Returns a process exit code (1 when the first
    scrape already fails -- the daemon is not there)."""
    import sys

    out = out if out is not None else sys.stdout
    previous: dict | None = None
    prev_t: float | None = None
    n = 0
    while True:
        try:
            snapshot = fetch_endpoints(base_url)
        except TransportError as exc:
            print(f"repro top: {exc}", file=out)
            return 1
        now = time.monotonic()
        frame = render_dashboard(
            snapshot,
            previous=previous,
            interval_seconds=(
                now - prev_t if prev_t is not None else None
            ),
            sort=sort,
        )
        if clear and n > 0:
            print("\033[2J\033[H", end="", file=out)
        print(frame, file=out)
        previous, prev_t = snapshot, now
        n += 1
        if iterations is not None and n >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
