"""Exporters: JSONL span logs, Chrome trace-event JSON, Prometheus text.

Three interchange formats over the same span/metric data:

* **JSONL** -- one event dict per line; the durable form `repro stats`
  replays and the form ``repro run --trace-out`` / ``repro serve
  --log-json`` write;
* **Chrome trace events** -- the ``traceEvents`` JSON that Perfetto and
  ``chrome://tracing`` load; client and server become processes, sessions
  become named tracks;
* **Prometheus text exposition v0.0.4** -- what a scrape of
  ``repro serve --metrics-port`` returns.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import IO, Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import KIND_CLIENT, Span

# -- JSONL ---------------------------------------------------------------------


def write_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    """Write one event per line; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_event(), sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path: str | Path) -> list[Span]:
    """Load a span log written by :func:`write_jsonl` (or streamed by
    :class:`JsonlSink`)."""
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_event(json.loads(line)))
    return spans


class JsonlSink:
    """A tracer sink that streams each finished span to a file.

    Safe to share between the client tracer and server session threads;
    one lock serializes lines so events never interleave mid-record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, span: Span) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.write(json.dumps(span.to_event(), sort_keys=True))
                self._fh.write("\n")
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- Chrome trace events -------------------------------------------------------


#: Microseconds per unit of ``Span.start`` for each supported time unit.
_TIME_UNIT_SCALE = {"s": 1e6, "ms": 1e3, "us": 1.0}


def _time_scale(time_unit: str) -> float:
    """Microseconds per ``time_unit`` -- shared by span and counter
    events so both track kinds land on the same timeline.  Wall and
    virtual clocks both report seconds, so "s" is right for either; an
    unknown unit used to surface as a raw ``KeyError`` deep in the
    export, now it is a configuration error."""
    try:
        return _TIME_UNIT_SCALE[time_unit]
    except KeyError:
        from repro.errors import ConfigurationError

        known = ", ".join(sorted(_TIME_UNIT_SCALE))
        raise ConfigurationError(
            f"unknown trace time unit {time_unit!r}; known units: {known}"
        ) from None


def chrome_trace(
    spans: Iterable[Span],
    time_unit: str = "s",
    counters: Iterable = (),
    flows: Iterable = (),
) -> dict:
    """Build a Chrome trace-event document (the ``traceEvents`` format).

    Each span becomes one complete ("X") event.  Client and server sides
    become separate processes; each session gets its own thread row, so
    Perfetto shows one track per session on either side of the wire.
    ``counters`` (e.g. :attr:`~repro.obs.profiler.RuntimeProfiler.samples`)
    become counter ("C") events under a dedicated ``rcuda-counters``
    process -- one counter track per sample name, rendered by Perfetto as
    a filled graph on the same timeline.  ``flows``
    (:class:`~repro.obs.causal.ChromeFlow`, e.g. from
    :meth:`~repro.obs.causal.AssembledTrace.flows`) become flow-start /
    flow-finish ("s"/"f") pairs binding a client slice to the server
    slices that serviced it, so the assembled trace renders as one
    connected timeline instead of two unrelated processes.
    ``time_unit`` names the unit of ``Span.start`` *and* the counters'
    ``t`` ("s" for wall or virtual seconds); timestamps are emitted in
    microseconds as the format wants.
    """
    scale = _time_scale(time_unit)
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        if span.end is None:
            continue
        pid = pids.setdefault(span.kind, len(pids) + 1)
        tid_key = (span.kind, span.session)
        if tid_key not in tids:
            tids[tid_key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[tid_key], "args": {"name": span.session},
            })
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.attrs.get("phase", "rpc"),
            "pid": pid,
            "tid": tids[tid_key],
            "ts": span.start * scale,
            "dur": span.duration_seconds * scale,
            "args": {"seq": span.seq, **span.attrs},
        })
    for flow in flows:
        endpoints = (
            ("s", flow.src_kind, flow.src_session, flow.src_ts),
            ("f", flow.dst_kind, flow.dst_session, flow.dst_ts),
        )
        for ph, kind, session, ts in endpoints:
            pid = pids.setdefault(kind, len(pids) + 1)
            tid_key = (kind, session)
            if tid_key not in tids:
                tids[tid_key] = len(tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tids[tid_key], "args": {"name": session},
                })
            event = {
                "ph": ph,
                "name": flow.name,
                "cat": "causal",
                "id": flow.flow_id,
                "pid": pid,
                "tid": tids[tid_key],
                "ts": ts * scale,
            }
            if ph == "f":
                # Bind to the enclosing slice even when the arrival
                # timestamp sits on the slice boundary.
                event["bp"] = "e"
            events.append(event)
    counter_events: list[dict] = []
    counter_pid: int | None = None
    for sample in counters:
        if counter_pid is None:
            counter_pid = len(pids) + 1
        counter_events.append({
            "ph": "C",
            "name": sample.name,
            "pid": counter_pid,
            "tid": 0,
            "ts": sample.t * scale,
            "args": {"value": sample.value},
        })
    meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": f"rcuda-{kind}"}}
        for kind, pid in pids.items()
    ]
    if counter_pid is not None:
        meta.append({
            "ph": "M", "name": "process_name", "pid": counter_pid, "tid": 0,
            "args": {"name": "rcuda-counters"},
        })
    return {
        "traceEvents": meta + events + counter_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    spans: Iterable[Span],
    path: str | Path,
    time_unit: str = "s",
    counters: Iterable = (),
    flows: Iterable = (),
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(
            spans, time_unit=time_unit, counters=counters, flows=flows
        ))
    )
    return path


# -- Prometheus text exposition ------------------------------------------------


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The text exposition format v0.0.4 of every metric in ``registry``."""
    lines: list[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, (cumulative, total, count) in metric.samples():
                for bound, c in zip(metric.buckets, cumulative):
                    bl = dict(labels, le=_format_value(bound))
                    lines.append(f"{metric.name}_bucket{_format_labels(bl)} {c}")
                bl = dict(labels, le="+Inf")
                lines.append(f"{metric.name}_bucket{_format_labels(bl)} {count}")
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(total)}"
                )
                lines.append(f"{metric.name}_count{_format_labels(labels)} {count}")
    return "\n".join(lines) + "\n"


def metrics_snapshot(registry: MetricsRegistry) -> dict:
    """Every metric family as a JSON-ready dict (the postmortem form).

    The same data a scrape renders, but structured: per family the type,
    help text, and each label series' value (histograms keep their
    cumulative buckets + sum + count).
    """
    snapshot: dict = {}
    for metric in registry.collect():
        family: dict = {
            "type": metric.type_name,
            "help": metric.help_text,
            "samples": [],
        }
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                family["samples"].append({"labels": labels, "value": value})
        elif isinstance(metric, Histogram):
            for labels, (cumulative, total, count) in metric.samples():
                family["samples"].append({
                    "labels": labels,
                    "buckets": dict(
                        zip(map(_format_value, metric.buckets), cumulative)
                    ),
                    "sum": total,
                    "count": count,
                })
        snapshot[metric.name] = family
    return snapshot


# -- phase aggregation ---------------------------------------------------------


def phase_breakdown(spans: Iterable[Span], kind: str = KIND_CLIENT) -> dict[str, float]:
    """Total span seconds per Section III phase, canonically ordered.

    This is the span-derived counterpart of
    :meth:`repro.testbed.trace.ExecutionTrace.by_phase`: aggregating a
    virtual-clock span log of a simulated run reproduces that run's phase
    totals exactly.
    """
    from repro.testbed.trace import PHASE_ORDER

    totals: dict[str, float] = {}
    for span in spans:
        if kind is not None and span.kind != kind:
            continue
        phase = span.attrs.get("phase")
        if phase is None:
            continue
        totals[phase] = totals.get(phase, 0.0) + span.duration_seconds
    ordered = {name: totals.pop(name) for name in PHASE_ORDER if name in totals}
    ordered.update(totals)  # non-canonical phases trail in insertion order
    return ordered
