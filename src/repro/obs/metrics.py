"""Metrics: counters, gauges, and fixed-bucket histograms in a registry.

The shapes mirror the Prometheus client-library data model (the exporter
in :mod:`repro.obs.exporters` renders the v0.0.4 text exposition), scoped
to what the daemon actually needs: labelled samples, cumulative histogram
buckets, and callback gauges so device-memory occupancy is read at scrape
time instead of being pushed on every allocation.

Everything is thread-safe under one lock per metric -- session threads
record concurrently while a scrape renders.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.errors import ConfigurationError

#: Default latency buckets in seconds (Prometheus client defaults,
#: extended downward: loopback RPCs sit in the tens of microseconds).
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Metric:
    """Base: a named family of samples keyed by label values."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        #: The per-label-key sample store; each subclass aliases its own
        #: dict here so :meth:`remove` works uniformly.
        self._store: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def remove(self, **labels) -> bool:
        """Drop one label series so a long-running process does not
        accumulate dead series (e.g. per-session gauges after the session
        completes).  Returns True when a series was actually removed."""
        key = self._key(labels)
        with self._lock:
            return self._store.pop(key, None) is not None

    def series_count(self) -> int:
        """Live label series on this metric family."""
        with self._lock:
            return len(self._store)


class Counter(Metric):
    """A monotonically increasing count."""

    type_name = "counter"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = self._store

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[tuple[dict, float]]:
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(zip(self.labelnames, key)), value


class Gauge(Metric):
    """A value that can go up and down, or be computed at read time."""

    type_name = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = self._store
        self._fn: Callable[[], float] | None = None

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the (unlabelled) value lazily at collection time."""
        if self.labelnames:
            raise ConfigurationError(
                f"callback gauge {self.name} cannot have labels"
            )
        self._fn = fn

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[tuple[dict, float]]:
        if self._fn is not None:
            yield {}, float(self._fn())
            return
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(zip(self.labelnames, key)), value


class Histogram(Metric):
    """Fixed-bucket distribution with cumulative bucket counts."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name} buckets must be sorted and non-empty"
            )
        self.buckets = tuple(float(b) for b in buckets)
        #: per label key: ([count per bucket], sum, count)
        self._series: dict[tuple[str, ...], tuple[list[int], float, int]] = self._store

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            counts, total, n = self._series.get(
                key, ([0] * len(self.buckets), 0.0, 0)
            )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._series[key] = (counts, total + value, n + 1)

    def snapshot(self, **labels) -> tuple[list[int], float, int]:
        """(cumulative bucket counts, sum, count) for one label set."""
        with self._lock:
            counts, total, n = self._series.get(
                self._key(labels), ([0] * len(self.buckets), 0.0, 0)
            )
            cumulative: list[int] = []
            running = 0
            for c in counts:
                running += c
                cumulative.append(running)
            return cumulative, total, n

    def samples(self) -> Iterator[tuple[dict, tuple[list[int], float, int]]]:
        with self._lock:
            keys = list(self._series)
        for key in keys:
            labels = dict(zip(self.labelnames, key))
            yield labels, self.snapshot(**labels)


class MetricsRegistry:
    """Get-or-create home for every metric a process exposes."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()
        self._collect_hooks: list[Callable[[], None]] = []

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name} already registered as "
                        f"{existing.type_name}, not {cls.type_name}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames=labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames=labelnames, buckets=buckets
        )

    def add_collect_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` before every collection (scrape-time refresh of
        derived series -- SLO quantiles, per-session gauges -- keeping
        the request hot path free of registry writes)."""
        with self._lock:
            self._collect_hooks.append(fn)

    def collect(self) -> list[Metric]:
        with self._lock:
            hooks = list(self._collect_hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:
                # A broken refresher must never take the scrape down.
                pass
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics
