"""Span naming: map wire requests to CUDA call names and phases.

Both ends of an exchange see the same request object (the client before
encode, the server after decode), so both sides derive identical span
names, function ids and Section III phase attributions from this table.
"""

from __future__ import annotations

from repro.protocol.constants import FunctionId
from repro.protocol.messages import (
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    LaunchRequest,
    MallocRequest,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemsetRequest,
    PropertiesRequest,
    Request,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
)
from repro.simcuda.types import MemcpyKind

#: (span name, function id, phase) per request type; memcpys are refined
#: by transfer direction in :func:`describe_request`.
_TABLE: dict[type, tuple[str, int | None, str]] = {
    InitRequest: ("initialize", None, "init"),
    MallocRequest: ("cudaMalloc", int(FunctionId.MALLOC), "malloc"),
    MemcpyRequest: ("cudaMemcpy", int(FunctionId.MEMCPY), "h2d"),
    MemcpyAsyncRequest: (
        "cudaMemcpyAsync", int(FunctionId.MEMCPY_ASYNC), "h2d"
    ),
    # A streamed copy is still one logical cudaMemcpy: the Begin frame
    # carries the span; chunk/End frames are its wire-level shrapnel.
    MemcpyStreamBeginRequest: (
        "cudaMemcpy", int(FunctionId.MEMCPY_STREAM_BEGIN), "h2d"
    ),
    MemcpyChunkRequest: (
        "cudaMemcpyChunk", int(FunctionId.MEMCPY_CHUNK), "h2d"
    ),
    MemcpyStreamEndRequest: (
        "cudaMemcpyStreamEnd", int(FunctionId.MEMCPY_STREAM_END), "h2d"
    ),
    MemsetRequest: ("cudaMemset", int(FunctionId.MEMSET), "h2d"),
    SetupArgsRequest: (
        "cudaSetupArgument", int(FunctionId.SETUP_ARGS), "launch"
    ),
    LaunchRequest: ("cudaLaunch", int(FunctionId.LAUNCH), "launch"),
    FreeRequest: ("cudaFree", int(FunctionId.FREE), "free"),
    SyncRequest: (
        "cudaThreadSynchronize", int(FunctionId.SYNCHRONIZE), "kernel"
    ),
    PropertiesRequest: (
        "cudaGetDeviceProperties", int(FunctionId.GET_PROPERTIES), "host"
    ),
    StreamCreateRequest: (
        "cudaStreamCreate", int(FunctionId.STREAM_CREATE), "host"
    ),
    StreamSyncRequest: (
        "cudaStreamSynchronize", int(FunctionId.STREAM_SYNC), "kernel"
    ),
    EventCreateRequest: (
        "cudaEventCreate", int(FunctionId.EVENT_CREATE), "host"
    ),
    EventRecordRequest: (
        "cudaEventRecord", int(FunctionId.EVENT_RECORD), "host"
    ),
    EventElapsedRequest: (
        "cudaEventElapsedTime", int(FunctionId.EVENT_ELAPSED), "host"
    ),
}


def describe_request(request: Request) -> tuple[str, int | None, str]:
    """(span name, function id or None for init, phase) for one request."""
    name, fid, phase = _TABLE[type(request)]
    if isinstance(
        request, (MemcpyRequest, MemcpyAsyncRequest, MemcpyStreamBeginRequest)
    ):
        if MemcpyKind(request.kind) is MemcpyKind.cudaMemcpyDeviceToHost:
            phase = "d2h"
    return name, fid, phase
