"""Span naming: map wire requests to CUDA call names and phases.

Both ends of an exchange see the same request object (the client before
encode, the server after decode), so both sides derive identical span
names, function ids and Section III phase attributions from this table.
"""

from __future__ import annotations

from repro.protocol.constants import FunctionId
from repro.protocol.messages import (
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    LaunchRequest,
    MallocRequest,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemsetRequest,
    PropertiesRequest,
    Request,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
)
from repro.simcuda.types import MemcpyKind

#: (span name, function id, phase) per request type; memcpys are refined
#: by transfer direction in :func:`describe_request`.
_TABLE: dict[type, tuple[str, int | None, str]] = {
    InitRequest: ("initialize", None, "init"),
    MallocRequest: ("cudaMalloc", int(FunctionId.MALLOC), "malloc"),
    MemcpyRequest: ("cudaMemcpy", int(FunctionId.MEMCPY), "h2d"),
    MemcpyAsyncRequest: (
        "cudaMemcpyAsync", int(FunctionId.MEMCPY_ASYNC), "h2d"
    ),
    # A streamed copy is still one logical cudaMemcpy: the Begin frame
    # carries the span; chunk/End frames are its wire-level shrapnel.
    MemcpyStreamBeginRequest: (
        "cudaMemcpy", int(FunctionId.MEMCPY_STREAM_BEGIN), "h2d"
    ),
    MemcpyChunkRequest: (
        "cudaMemcpyChunk", int(FunctionId.MEMCPY_CHUNK), "h2d"
    ),
    MemcpyStreamEndRequest: (
        "cudaMemcpyStreamEnd", int(FunctionId.MEMCPY_STREAM_END), "h2d"
    ),
    MemsetRequest: ("cudaMemset", int(FunctionId.MEMSET), "h2d"),
    SetupArgsRequest: (
        "cudaSetupArgument", int(FunctionId.SETUP_ARGS), "launch"
    ),
    LaunchRequest: ("cudaLaunch", int(FunctionId.LAUNCH), "launch"),
    FreeRequest: ("cudaFree", int(FunctionId.FREE), "free"),
    SyncRequest: (
        "cudaThreadSynchronize", int(FunctionId.SYNCHRONIZE), "kernel"
    ),
    PropertiesRequest: (
        "cudaGetDeviceProperties", int(FunctionId.GET_PROPERTIES), "host"
    ),
    StreamCreateRequest: (
        "cudaStreamCreate", int(FunctionId.STREAM_CREATE), "host"
    ),
    StreamSyncRequest: (
        "cudaStreamSynchronize", int(FunctionId.STREAM_SYNC), "kernel"
    ),
    EventCreateRequest: (
        "cudaEventCreate", int(FunctionId.EVENT_CREATE), "host"
    ),
    EventRecordRequest: (
        "cudaEventRecord", int(FunctionId.EVENT_RECORD), "host"
    ),
    EventElapsedRequest: (
        "cudaEventElapsedTime", int(FunctionId.EVENT_ELAPSED), "host"
    ),
}


#: Request types whose phase/ledger direction depends on the memcpy kind
#: field.  Checked with ``type() in`` and a plain int compare: this runs
#: once per dispatched request, and constructing a ``MemcpyKind`` enum
#: member there costs more than the rest of the lookup combined.
_DIRECTIONAL: frozenset[type] = frozenset(
    {MemcpyRequest, MemcpyAsyncRequest, MemcpyStreamBeginRequest}
)
_D2H = int(MemcpyKind.cudaMemcpyDeviceToHost)


def describe_request(request: Request) -> tuple[str, int | None, str]:
    """(span name, function id or None for init, phase) for one request."""
    name, fid, phase = _TABLE[type(request)]
    if type(request) in _DIRECTIONAL and request.kind == _D2H:
        phase = "d2h"
    return name, fid, phase


#: Accounting kinds: which ledger counter a request bumps.
KIND_ALLOC = "alloc"
KIND_FREE = "free"
KIND_COPY_IN = "copy_in"
KIND_COPY_OUT = "copy_out"
KIND_CHUNK = "chunk"
KIND_LAUNCH = "launch"
KIND_OTHER = "other"


_KIND_TABLE: dict[type, str] = {
    MallocRequest: KIND_ALLOC,
    FreeRequest: KIND_FREE,
    MemcpyChunkRequest: KIND_CHUNK,
    LaunchRequest: KIND_LAUNCH,
    MemsetRequest: KIND_COPY_IN,
}


def request_kind(request: Request) -> str:
    """Classify a request for per-session accounting.

    Coarser than :func:`describe_request`: the ledger cares about
    resource movement (allocations, copies per direction, launches), not
    span naming.  Stream Begin frames count as the copy they open; chunk
    frames count separately so the ledger shows assembly progress.
    """
    t = type(request)
    kind = _KIND_TABLE.get(t)
    if kind is not None:
        return kind
    if t in _DIRECTIONAL:
        return KIND_COPY_OUT if request.kind == _D2H else KIND_COPY_IN
    return KIND_OTHER


#: Fused hot-path descriptor: one dict hit per dispatched request gives
#: (span name, function id, phase, accounting kind).  The server's
#: dispatch loop uses this instead of calling :func:`describe_request`
#: and :func:`request_kind` separately; for the types in
#: :data:`DIRECTIONAL_TYPES` the caller flips phase/kind to d2h/copy_out
#: when ``request.kind == D2H_KIND``.
HOT_DESCRIPTORS: dict[type, tuple[str, int | None, str, str]] = {
    t: (
        name,
        fid,
        phase,
        _KIND_TABLE.get(t, KIND_COPY_IN if t in _DIRECTIONAL else KIND_OTHER),
    )
    for t, (name, fid, phase) in _TABLE.items()
}
DIRECTIONAL_TYPES = _DIRECTIONAL
D2H_KIND = _D2H
