"""Observability for the rCUDA stack: spans, metrics, exporters.

The paper built its estimation model by "analyzing the traces of two
different case studies over two different networks"; this package makes
that kind of trace a first-class product of every run:

* :mod:`repro.obs.spans` -- one span per remote API call (client side)
  and per dispatched request (server side), keyed by session + sequence
  number, timed on wall or virtual clocks;
* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms in a registry (RPC latency per function, bytes per op,
  active sessions, device-memory occupancy);
* :mod:`repro.obs.exporters` -- JSONL event logs, Chrome trace-event
  JSON (Perfetto-loadable), Prometheus v0.0.4 text exposition;
* :mod:`repro.obs.summary` -- ASCII tables for `repro stats`;
* :mod:`repro.obs.httpserver` -- the `--metrics-port` scrape endpoint,
  with a ``/healthz`` probe;
* :mod:`repro.obs.conformance` -- live predicted-vs-measured model
  conformance with EWMA drift detection (`repro drift`);
* :mod:`repro.obs.causal` -- cross-process trace assembly joining client
  and server spans on (session, seq) into causally-linked request trees,
  with per-request phase attribution, critical-path extraction and
  Perfetto flow events (`repro explain`);
* :mod:`repro.obs.profiler` -- sampled counter tracks (queue depth,
  in-flight window, memory occupancy) for the Perfetto timeline;
* :mod:`repro.obs.flight` -- always-on bounded flight recorder and
  postmortem dumps (`repro postmortem`);
* :mod:`repro.obs.slo` -- streaming tail-latency quantiles and SLO
  burn-rate evaluation;
* :mod:`repro.obs.accounting` -- per-session resource ledgers (the
  ``/sessions`` endpoint);
* :mod:`repro.obs.top` -- the `repro top` live ops dashboard.

Instrumentation defaults to :data:`NULL_TRACER`, a no-op, so the
uninstrumented hot path stays as fast as before the package existed.
"""

from repro.obs.causal import (
    CAUSAL_PHASES,
    AssembledTrace,
    ChromeFlow,
    CriticalPath,
    RequestNode,
    TraceAssembler,
    stream_bound_stage,
    stream_stage_totals,
)
from repro.obs.conformance import (
    RATIO_BUCKETS,
    ConformanceConfig,
    ConformanceMonitor,
    DriftFinding,
    DriftReport,
)
from repro.obs.accounting import SessionAccounting
from repro.obs.exporters import (
    JsonlSink,
    chrome_trace,
    metrics_snapshot,
    phase_breakdown,
    read_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flight import (
    EVENT_DAEMON,
    EVENT_ERROR,
    EVENT_SESSION,
    EVENT_SPAN,
    EVENT_STREAM,
    FlightRecorder,
    build_postmortem,
    read_postmortem,
    render_postmortem,
    write_postmortem,
)
from repro.obs.httpserver import MetricsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.naming import describe_request, request_kind
from repro.obs.profiler import (
    DEFAULT_INTERVAL_SECONDS,
    CounterSample,
    RuntimeProfiler,
)
from repro.obs.slo import (
    DEFAULT_QUANTILES,
    P2Quantile,
    QuantileSketch,
    SloEngine,
    SloObjective,
    default_objectives,
    parse_objective,
)
from repro.obs.spans import (
    KIND_CLIENT,
    KIND_SERVER,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.summary import (
    FunctionStats,
    aggregate_spans,
    render_summary,
    spans_to_trace,
)

__all__ = [
    "CAUSAL_PHASES",
    "DEFAULT_BUCKETS",
    "DEFAULT_INTERVAL_SECONDS",
    "DEFAULT_QUANTILES",
    "EVENT_DAEMON",
    "EVENT_ERROR",
    "EVENT_SESSION",
    "EVENT_SPAN",
    "EVENT_STREAM",
    "AssembledTrace",
    "ChromeFlow",
    "ConformanceConfig",
    "ConformanceMonitor",
    "Counter",
    "CounterSample",
    "CriticalPath",
    "DriftFinding",
    "DriftReport",
    "FlightRecorder",
    "FunctionStats",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KIND_CLIENT",
    "KIND_SERVER",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "P2Quantile",
    "QuantileSketch",
    "RATIO_BUCKETS",
    "RequestNode",
    "RuntimeProfiler",
    "SessionAccounting",
    "SloEngine",
    "SloObjective",
    "Span",
    "TraceAssembler",
    "Tracer",
    "aggregate_spans",
    "build_postmortem",
    "chrome_trace",
    "default_objectives",
    "describe_request",
    "metrics_snapshot",
    "parse_objective",
    "phase_breakdown",
    "read_jsonl",
    "read_postmortem",
    "render_postmortem",
    "render_prometheus",
    "render_summary",
    "request_kind",
    "spans_to_trace",
    "stream_bound_stage",
    "stream_stage_totals",
    "write_chrome_trace",
    "write_jsonl",
    "write_postmortem",
]
