"""Observability for the rCUDA stack: spans, metrics, exporters.

The paper built its estimation model by "analyzing the traces of two
different case studies over two different networks"; this package makes
that kind of trace a first-class product of every run:

* :mod:`repro.obs.spans` -- one span per remote API call (client side)
  and per dispatched request (server side), keyed by session + sequence
  number, timed on wall or virtual clocks;
* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms in a registry (RPC latency per function, bytes per op,
  active sessions, device-memory occupancy);
* :mod:`repro.obs.exporters` -- JSONL event logs, Chrome trace-event
  JSON (Perfetto-loadable), Prometheus v0.0.4 text exposition;
* :mod:`repro.obs.summary` -- ASCII tables for `repro stats`;
* :mod:`repro.obs.httpserver` -- the `--metrics-port` scrape endpoint,
  with a ``/healthz`` probe;
* :mod:`repro.obs.conformance` -- live predicted-vs-measured model
  conformance with EWMA drift detection (`repro drift`);
* :mod:`repro.obs.profiler` -- sampled counter tracks (queue depth,
  in-flight window, memory occupancy) for the Perfetto timeline.

Instrumentation defaults to :data:`NULL_TRACER`, a no-op, so the
uninstrumented hot path stays as fast as before the package existed.
"""

from repro.obs.conformance import (
    RATIO_BUCKETS,
    ConformanceConfig,
    ConformanceMonitor,
    DriftFinding,
    DriftReport,
)
from repro.obs.exporters import (
    JsonlSink,
    chrome_trace,
    phase_breakdown,
    read_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.httpserver import MetricsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.naming import describe_request
from repro.obs.profiler import (
    DEFAULT_INTERVAL_SECONDS,
    CounterSample,
    RuntimeProfiler,
)
from repro.obs.spans import (
    KIND_CLIENT,
    KIND_SERVER,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.summary import (
    FunctionStats,
    aggregate_spans,
    render_summary,
    spans_to_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_INTERVAL_SECONDS",
    "ConformanceConfig",
    "ConformanceMonitor",
    "Counter",
    "CounterSample",
    "DriftFinding",
    "DriftReport",
    "FunctionStats",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KIND_CLIENT",
    "KIND_SERVER",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "RATIO_BUCKETS",
    "RuntimeProfiler",
    "Span",
    "Tracer",
    "aggregate_spans",
    "chrome_trace",
    "describe_request",
    "phase_breakdown",
    "read_jsonl",
    "render_prometheus",
    "render_summary",
    "spans_to_trace",
    "write_chrome_trace",
    "write_jsonl",
]
