"""Streaming tail-latency quantiles and SLO burn-rate evaluation.

The paper's claim is a *bounded overhead*; an operator's version of that
claim is a tail-latency objective ("p99 dispatch latency of cudaMemcpy
stays under X", "p99 measured/predicted ratio stays under 1.5x").  This
module keeps that check running continuously without storing samples:

* :class:`QuantileSketch` -- a fixed-geometric-bucket histogram (HDR /
  CKMS-style sketch).  Bucket boundaries grow by a constant factor, so
  any quantile is answered within a *guaranteed* relative error of
  ``sqrt(growth) - 1`` (~3.9% at the default 1.08) using a bounded
  number of integer counters: O(1) memory per series no matter how many
  observations stream through.
* :class:`P2Quantile` -- the classic five-marker P² estimator (Jain &
  Chlamtac 1985) for tracking one quantile in exactly 15 floats; used
  where a single running percentile is wanted without a sketch.
* :class:`SloObjective` -- a declarative objective: metric, label
  selectors, quantile, threshold.
* :class:`SloEngine` -- folds observations into per-(metric, call,
  phase, network) sketches over a sliding window of bucketed good/bad
  counts per objective, and evaluates **burn rate**: the observed
  violation fraction divided by the objective's error budget
  (``1 - quantile``).  Burn rate > 1 means the series is eating budget
  faster than the SLO allows.

The engine publishes quantile gauges and burn rates into a
:class:`~repro.obs.metrics.MetricsRegistry` via a collect hook (scrape
time, not observe time) and contributes an ``slo`` block to ``/healthz``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Quantiles every series tracks (rendered by `repro top` and Prometheus).
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Fixed-geometric-bucket streaming quantile estimator.

    Values are counted in buckets ``[lo * growth**i, lo * growth**(i+1))``
    and a quantile query walks the cumulative counts, answering with the
    geometric midpoint of the target bucket (clamped to the exact
    observed min/max).  Relative error is bounded by ``sqrt(growth) - 1``
    for values inside ``[lo, hi]``; values outside clamp into the edge
    buckets.  Memory is bounded by the fixed bucket count regardless of
    the observation count.
    """

    def __init__(
        self,
        lo: float = 1e-9,
        hi: float = 1e4,
        growth: float = 1.08,
    ) -> None:
        if not (0 < lo < hi) or growth <= 1.0:
            raise ConfigurationError(
                f"sketch needs 0 < lo < hi and growth > 1, "
                f"got lo={lo}, hi={hi}, growth={growth}"
            )
        self._lo = lo
        self._log_lo = math.log(lo)
        self._log_growth = math.log(growth)
        self._growth = growth
        self.bucket_limit = int(math.ceil((math.log(hi) - self._log_lo)
                                          / self._log_growth)) + 2
        self._counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self._lo:
            return 0
        i = int((math.log(value) - self._log_lo) / self._log_growth) + 1
        return min(i, self.bucket_limit - 1)

    def observe(self, value: float) -> None:
        value = float(value)
        i = self._index(value) if value > 0 else 0
        self._counts[i] = self._counts.get(i, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The value at rank ``q`` (0..1), within the sketch's error bound."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for i in sorted(self._counts):
            seen += self._counts[i]
            if seen > rank:
                if i == 0:
                    estimate = self._lo
                else:
                    lower = math.exp(
                        self._log_lo + (i - 1) * self._log_growth
                    )
                    estimate = lower * math.sqrt(self._growth)
                return min(self.max, max(self.min, estimate))
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __len__(self) -> int:
        """Live bucket count -- bounded by ``bucket_limit``."""
        return len(self._counts)


class P2Quantile:
    """The classic P² single-quantile estimator: five markers, no samples.

    State is exactly five heights + five positions + five desired
    positions; per observation the markers shift by parabolic (or linear)
    interpolation toward their ideal ranks.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"P2 quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._pos: list[float] = []
        self._desired: list[float] = []
        self._dn = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if h is None:
            self._initial.append(float(x))
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0,
                ]
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < h[i]:
                    k = i - 1
                    break
        n = self._pos
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._dn[i]
        for i in range(1, 4):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, int(d))
                h[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        n, h = self._pos, self._heights
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        n, h = self._pos, self._heights
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """The current estimate (exact while fewer than five samples)."""
        if self._heights is None:
            if not self._initial:
                return 0.0
            ordered = sorted(self._initial)
            idx = min(
                len(ordered) - 1,
                max(0, round(self.q * (len(ordered) - 1))),
            )
            return ordered[idx]
        return self._heights[2]


# -- objectives ----------------------------------------------------------------


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective: "quantile of metric <= threshold".

    ``call``/``phase``/``network`` are selectors; ``None`` matches any
    value, so one objective can cover a family of series.  The error
    budget is ``1 - quantile``: a p99 objective tolerates 1% of events
    over the threshold before its burn rate crosses 1.
    """

    name: str
    threshold: float
    metric: str = "latency_seconds"
    quantile: float = 0.99
    call: str | None = None
    phase: str | None = None
    network: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError(
                f"objective {self.name}: quantile must be in (0, 1), "
                f"got {self.quantile}"
            )
        if self.threshold <= 0:
            raise ConfigurationError(
                f"objective {self.name}: threshold must be > 0, "
                f"got {self.threshold}"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.quantile

    def matches(self, metric: str, call: str, phase: str, network: str) -> bool:
        return (
            metric == self.metric
            and (self.call is None or call == self.call)
            and (self.phase is None or phase == self.phase)
            and (self.network is None or network == self.network)
        )

    def describe(self) -> str:
        scope = ",".join(
            f"{k}={v}"
            for k, v in (
                ("call", self.call), ("phase", self.phase),
                ("network", self.network),
            )
            if v is not None
        ) or "all series"
        return (
            f"{self.name}: p{self.quantile * 100:g} {self.metric} "
            f"<= {self.threshold:g} on {scope}"
        )


def parse_objective(spec: str) -> SloObjective:
    """Parse the CLI form ``name:metric:pQQ<=threshold[:call[:phase]]``.

    Examples: ``memcpy-tail:latency_seconds:p99<=0.005:cudaMemcpy`` or
    ``model:model_ratio:p99<=1.5``.
    """
    parts = spec.split(":")
    if len(parts) < 3 or "<=" not in parts[2]:
        raise ConfigurationError(
            f"bad SLO spec {spec!r}; want name:metric:pQQ<=threshold[:call[:phase]]"
        )
    name, metric = parts[0], parts[1]
    quantile_s, threshold_s = parts[2].split("<=", 1)
    if not quantile_s.startswith("p"):
        raise ConfigurationError(
            f"bad SLO quantile {quantile_s!r} in {spec!r}; want e.g. p99"
        )
    try:
        quantile = float(quantile_s[1:]) / 100.0
        threshold = float(threshold_s)
    except ValueError as exc:
        raise ConfigurationError(f"bad SLO spec {spec!r}: {exc}") from None
    return SloObjective(
        name=name,
        metric=metric,
        quantile=quantile,
        threshold=threshold,
        call=parts[3] if len(parts) > 3 and parts[3] else None,
        phase=parts[4] if len(parts) > 4 and parts[4] else None,
    )


def default_objectives() -> tuple[SloObjective, ...]:
    """The objectives `repro serve` evaluates out of the box."""
    return (
        SloObjective(
            name="rpc-tail",
            metric="latency_seconds",
            quantile=0.99,
            threshold=0.050,
            description="p99 server dispatch latency stays under 50 ms",
        ),
        SloObjective(
            name="model-conformance",
            metric="model_ratio",
            quantile=0.99,
            threshold=1.5,
            description=(
                "p99 measured/predicted overhead ratio stays within "
                "1.5x of the paper model"
            ),
        ),
    )


# -- burn-rate window ----------------------------------------------------------


class _BurnWindow:
    """Bucketed sliding window of good/bad counts for one objective."""

    def __init__(
        self, window_seconds: float, buckets: int, clock
    ) -> None:
        self.window_seconds = window_seconds
        self.bucket_seconds = window_seconds / buckets
        self._clock = clock
        #: (bucket_start, good, bad), oldest first.
        self._buckets: deque[list] = deque()

    def _advance(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._buckets and self._buckets[0][0] + self.bucket_seconds < cutoff:
            self._buckets.popleft()

    def add(self, ok: bool) -> None:
        now = self._clock()
        self._advance(now)
        if (
            not self._buckets
            or now - self._buckets[-1][0] >= self.bucket_seconds
        ):
            self._buckets.append([now, 0, 0])
        self._buckets[-1][1 if ok else 2] += 1

    def totals(self) -> tuple[int, int]:
        """(good, bad) inside the window right now."""
        self._advance(self._clock())
        good = sum(b[1] for b in self._buckets)
        bad = sum(b[2] for b in self._buckets)
        return good, bad


# -- the engine ----------------------------------------------------------------


@dataclass
class _Series:
    sketch: QuantileSketch = field(default_factory=QuantileSketch)


class SloEngine:
    """Per-(metric, call, phase, network) tail quantiles + SLO burn rates.

    Observations arrive from the server dispatch path (latency) and the
    conformance monitor (measured/predicted ratio); evaluation is pulled
    by ``/healthz``, the Prometheus collect hook, and `repro top`.
    """

    def __init__(
        self,
        objectives=None,
        network: str = "local",
        window_seconds: float = 300.0,
        buckets: int = 30,
        min_samples: int = 10,
        clock=None,
        metrics=None,
    ) -> None:
        import time as _time

        self.objectives: tuple[SloObjective, ...] = tuple(
            default_objectives() if objectives is None else objectives
        )
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"duplicate SLO objective names: {sorted(names)}"
            )
        self.network = network
        self.min_samples = min_samples
        self._clock = clock if clock is not None else _time.monotonic
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str, str, str], _Series] = {}
        self._windows: dict[str, _BurnWindow] = {
            o.name: _BurnWindow(window_seconds, buckets, self._clock)
            for o in self.objectives
        }
        self._observations = 0
        if metrics is not None:
            self.bind_metrics(metrics)

    # -- ingest -------------------------------------------------------------

    def observe(
        self,
        call: str,
        phase: str,
        value: float,
        metric: str = "latency_seconds",
        network: str | None = None,
    ) -> None:
        """Fold one measurement into its series and objective windows."""
        network = network if network is not None else self.network
        key = (metric, call, phase, network)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series()
            series.sketch.observe(value)
            self._observations += 1
            for objective in self.objectives:
                if objective.matches(metric, call, phase, network):
                    self._windows[objective.name].add(
                        value <= objective.threshold
                    )

    def observe_span(self, span) -> None:
        """Tracer-sink form: finished client/server spans become latency
        observations on their (call, phase) series."""
        if span.end is None:
            return
        self.observe(
            span.name, span.attrs.get("phase") or "", span.duration_seconds
        )

    # -- queries ------------------------------------------------------------

    def quantile(
        self,
        call: str,
        phase: str,
        q: float,
        metric: str = "latency_seconds",
        network: str | None = None,
    ) -> float | None:
        key = (metric, call, phase, network or self.network)
        with self._lock:
            series = self._series.get(key)
            return series.sketch.quantile(q) if series is not None else None

    def series_table(
        self, quantiles=DEFAULT_QUANTILES
    ) -> list[dict]:
        """One row per series: labels, count, and the tracked quantiles."""
        with self._lock:
            items = sorted(self._series.items())
            rows = []
            for (metric, call, phase, network), series in items:
                row = {
                    "metric": metric, "call": call, "phase": phase,
                    "network": network, "count": series.sketch.count,
                    "mean": series.sketch.mean,
                }
                for q in quantiles:
                    row[f"p{q * 100:g}"] = series.sketch.quantile(q)
                rows.append(row)
        return rows

    def evaluate(self) -> list[dict]:
        """Burn-rate evaluation of every objective, evaluation order
        matching declaration order."""
        out = []
        with self._lock:
            for objective in self.objectives:
                good, bad = self._windows[objective.name].totals()
                total = good + bad
                violation = bad / total if total else 0.0
                burn = violation / objective.budget if total else 0.0
                out.append({
                    "objective": objective.name,
                    "description": objective.description or objective.describe(),
                    "metric": objective.metric,
                    "quantile": objective.quantile,
                    "threshold": objective.threshold,
                    "window_samples": total,
                    "window_violations": bad,
                    "burn_rate": burn,
                    "ok": total < self.min_samples or burn <= 1.0,
                })
        return out

    @property
    def status(self) -> str:
        """``no-data`` / ``ok`` / ``breach`` -- what /healthz reports."""
        if self._observations == 0:
            return "no-data"
        return "ok" if all(e["ok"] for e in self.evaluate()) else "breach"

    def health_block(self) -> dict:
        """The ``slo`` entry merged into the /healthz document."""
        return {
            "slo": self.status,
            "slo_objectives": {
                e["objective"]: {
                    "ok": e["ok"],
                    "burn_rate": round(e["burn_rate"], 4),
                    "window_samples": e["window_samples"],
                }
                for e in self.evaluate()
            },
        }

    # -- Prometheus ---------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Publish quantiles and burn rates at scrape time via a collect
        hook (the hot path never touches the registry)."""
        quantile_gauge = registry.gauge(
            "rcuda_slo_quantile",
            "Streaming quantile estimate per series.",
            labelnames=("metric", "call", "phase", "network", "quantile"),
        )
        burn_gauge = registry.gauge(
            "rcuda_slo_burn_rate",
            "Error-budget burn rate per SLO objective (>1 = burning).",
            labelnames=("objective",),
        )
        ok_gauge = registry.gauge(
            "rcuda_slo_ok",
            "1 while the objective's burn rate is inside budget.",
            labelnames=("objective",),
        )

        def refresh() -> None:
            for row in self.series_table():
                for q in DEFAULT_QUANTILES:
                    quantile_gauge.set(
                        row[f"p{q * 100:g}"],
                        metric=row["metric"], call=row["call"],
                        phase=row["phase"], network=row["network"],
                        quantile=f"{q:g}",
                    )
            for e in self.evaluate():
                burn_gauge.set(e["burn_rate"], objective=e["objective"])
                ok_gauge.set(
                    1.0 if e["ok"] else 0.0, objective=e["objective"]
                )

        registry.add_collect_hook(refresh)
