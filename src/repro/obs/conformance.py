"""Live model conformance: predicted-vs-measured drift, continuously.

The paper's headline product is a model that predicts rCUDA execution
time from network parameters.  PR 1 made every run *measurable* (spans);
this module makes every run a *model check*: each finished client span
is compared against the prediction the active
:class:`~repro.net.spec.NetworkSpec` and
:class:`~repro.simcuda.timing.DeviceTimingModel` would have made for
that call class, and the stream of relative errors is tracked per
(call, phase, network) with

* a **ratio histogram** (measured/predicted) in a metrics registry, so a
  Prometheus scrape shows the conformance distribution live;
* an **EWMA of the relative error** per series -- the drift detector: a
  calibrated model under the clock it was calibrated for stays inside a
  configurable band, a miscalibrated component (or a hot path the model
  does not describe, like pipelining) pushes the EWMA out and raises a
  finding;
* **exemplar span ids** for outliers, so a drift finding points at
  concrete spans in the trace it was computed from.

The monitor is clock-agnostic: it only reads span timestamps, so it
works identically on wall-clock functional runs and virtual-clock
simulated ones.  It is also sink-compatible (``monitor`` is callable),
so it can be attached to a live :class:`~repro.obs.spans.Tracer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.model.estimate import kernel_seconds_for, predict_call_seconds
from repro.net.spec import NetworkSpec
from repro.obs.spans import KIND_CLIENT, Span
from repro.simcuda.timing import DeviceTimingModel

#: Measured/predicted ratio buckets: symmetric around 1 in log space.
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0, 10.0)


@dataclass(frozen=True)
class ConformanceConfig:
    """Tunables of the drift detector."""

    #: EWMA smoothing factor for the relative error stream.
    ewma_alpha: float = 0.2
    #: |EWMA relative error| beyond this raises a drift finding.
    band: float = 0.35
    #: Findings need at least this many samples on the series.
    min_samples: int = 5
    #: Spans whose ratio leaves [1/x, x] are kept as exemplars.
    outlier_ratio: float = 3.0
    #: Exemplars retained per series (worst first).
    max_exemplars: int = 5


@dataclass
class SeriesStats:
    """Running conformance state of one (call, phase, network) series."""

    call: str
    phase: str
    network: str
    samples: int = 0
    measured_total: float = 0.0
    predicted_total: float = 0.0
    ewma_rel_error: float = 0.0
    #: (session, seq, ratio) of the most extreme outliers seen.
    exemplars: list[tuple[str, int, float]] = field(default_factory=list)

    @property
    def mean_ratio(self) -> float:
        if self.predicted_total <= 0.0:
            return float("inf") if self.measured_total > 0 else 1.0
        return self.measured_total / self.predicted_total


@dataclass(frozen=True)
class DriftFinding:
    """One series whose EWMA relative error left the band."""

    call: str
    phase: str
    network: str
    samples: int
    ewma_rel_error: float
    mean_ratio: float
    exemplars: tuple[tuple[str, int, float], ...]

    def describe(self) -> str:
        direction = "over" if self.ewma_rel_error > 0 else "under"
        return (
            f"{self.call} [{self.phase}] on {self.network}: measured runs "
            f"{abs(self.ewma_rel_error):.0%} {direction} the model "
            f"(EWMA, {self.samples} samples, mean ratio "
            f"{self.mean_ratio:.2f}x)"
        )


@dataclass(frozen=True)
class DriftReport:
    """Snapshot of every conformance series plus the active findings."""

    network: str
    rows: tuple[SeriesStats, ...]
    findings: tuple[DriftFinding, ...]
    unmodeled_spans: int

    @property
    def status(self) -> str:
        if not self.rows:
            return "no-data"
        return "drift" if self.findings else "ok"

    def render(self) -> str:
        from repro.reporting import render_table

        rows = [
            [
                s.call, s.phase, s.samples,
                s.measured_total * 1e3, s.predicted_total * 1e3,
                s.mean_ratio,
                100.0 * s.ewma_rel_error,
            ]
            for s in self.rows
        ]
        table = render_table(
            ["Call", "Phase", "N", "Measured (ms)", "Predicted (ms)",
             "Ratio", "EWMA err (%)"],
            rows,
            title=f"Model conformance vs {self.network} (status: {self.status})",
            digits=3,
        )
        lines = [table]
        for finding in self.findings:
            lines.append(f"DRIFT: {finding.describe()}")
        if self.unmodeled_spans:
            lines.append(
                f"({self.unmodeled_spans} spans had no model prediction "
                "and were skipped)"
            )
        return "\n".join(lines)


class ConformanceMonitor:
    """Compares every client span against the model's per-call prediction.

    Feed it spans through :meth:`observe` / :meth:`observe_spans`, or
    attach it as a tracer sink (the instance is callable).  Optionally
    pass a :class:`~repro.obs.metrics.MetricsRegistry` to publish the
    ratio histogram, per-series EWMA gauges, and a findings counter.
    """

    def __init__(
        self,
        network: NetworkSpec,
        timing: DeviceTimingModel | None = None,
        metrics=None,
        config: ConformanceConfig | None = None,
        transfer: str = "behaviour",
    ) -> None:
        self.network = network
        self.timing = timing if timing is not None else DeviceTimingModel()
        self.config = config if config is not None else ConformanceConfig()
        self.transfer = transfer
        self._series: dict[tuple[str, str], SeriesStats] = {}
        self._flagged: set[tuple[str, str]] = set()
        self.unmodeled_spans = 0
        #: Workload context: kernel drain + host-phase predictions.
        self._kernel_seconds = 0.0
        self._host_seconds: float | None = None
        # Lazily-derived wire header sizes (from the real codec).
        from repro.protocol.accounting import (
            memcpy_chunk_cost,
            memcpy_d2h_cost,
            memcpy_h2d_cost,
            memcpy_stream_begin_cost,
            memcpy_stream_end_cost,
        )

        self._h2d_header = memcpy_h2d_cost().send_fixed
        self._d2h_header = memcpy_d2h_cost().receive_fixed
        self._stream_begin = memcpy_stream_begin_cost().send_fixed
        self._chunk_header = memcpy_chunk_cost().send_fixed
        self._stream_end = memcpy_stream_end_cost().send_fixed
        self.metrics = metrics
        if metrics is not None:
            self._m_ratio = metrics.histogram(
                "rcuda_model_ratio",
                "Measured/predicted time ratio per call class.",
                labelnames=("call", "phase", "network"),
                buckets=RATIO_BUCKETS,
            )
            self._m_ewma = metrics.gauge(
                "rcuda_model_ewma_relative_error",
                "EWMA of (measured-predicted)/predicted per call class.",
                labelnames=("call", "phase", "network"),
            )
            self._m_findings = metrics.counter(
                "rcuda_model_drift_findings_total",
                "Series whose conformance EWMA left the configured band.",
            )

    # -- workload context ---------------------------------------------------

    def set_workload(
        self,
        case,
        size: int,
        calibration=None,
    ) -> None:
        """Teach the monitor what run it is watching.

        Kernel drain time (charged to the synchronous D2H copy and to
        explicit synchronizes) and the host-phase prediction need the
        case study and problem size; with a
        :class:`~repro.model.calibration.Calibration` both come from the
        calibrated components (and ``timing`` is replaced by the
        calibrated one), otherwise from the raw timing model.
        """
        if calibration is not None:
            self.timing = calibration.timing
            self._kernel_seconds = calibration.kernel_seconds(case, size)
            self._host_seconds = calibration.remote_host_seconds(case, size)
        else:
            self._kernel_seconds = kernel_seconds_for(case, size, self.timing)
            self._host_seconds = None

    # -- prediction ---------------------------------------------------------

    def predict_span_seconds(self, span: Span) -> float | None:
        """The model's time for this span's call class, or None when the
        model has nothing to say (unattributed host work, zero-byte
        bookkeeping calls)."""
        phase = span.phase
        if phase is None:
            return None
        if span.name == "host work":
            return self._host_seconds
        bytes_sent = int(span.attrs.get("bytes_sent", 0) or 0)
        bytes_received = int(span.attrs.get("bytes_received", 0) or 0)
        if bytes_sent == 0 and bytes_received == 0:
            return None
        if span.attrs.get("streamed"):
            return self._predict_streamed_seconds(
                span, bytes_sent, bytes_received
            )
        pcie_payload = 0
        kernel = 0.0
        if "Memcpy" in span.name:
            if phase == "d2h":
                pcie_payload = max(0, bytes_received - self._d2h_header)
                kernel = self._kernel_seconds
            else:
                pcie_payload = max(0, bytes_sent - self._h2d_header)
        elif span.name in ("cudaThreadSynchronize", "cudaStreamSynchronize"):
            kernel = self._kernel_seconds
        return predict_call_seconds(
            network=self.network,
            timing=self.timing,
            bytes_sent=bytes_sent,
            bytes_received=bytes_received,
            pcie_payload_bytes=pcie_payload,
            kernel_seconds=kernel,
            transfer=self.transfer,
        )

    def predict_stage_seconds(self, span: Span) -> dict[str, float] | None:
        """The per-call prediction split along the causal phases.

        Same components :meth:`predict_span_seconds` sums, keyed the way
        :mod:`repro.obs.causal` attributes a request: the request leg is
        the ``network`` stage, the PCIe hop plus any kernel drain is the
        ``device`` stage, the return leg is the ``response`` stage.  The
        serialize/queue/scheduler phases are host-side costs the Section
        IV/V model deliberately does not describe, so they predict zero
        -- measured time landing there is *unmodeled*, which is exactly
        what ``repro explain --against-model`` wants to localize.
        ``total`` carries the model's call total (less than the stage
        sum on streamed copies, where the pipeline hides part of it).
        Returns None where the model has nothing to say.
        """
        from repro.obs.causal import (
            PHASE_DEVICE,
            PHASE_NETWORK,
            PHASE_RESPONSE,
        )

        total = self.predict_span_seconds(span)
        if total is None or span.name == "host work":
            return None
        bytes_sent = int(span.attrs.get("bytes_sent", 0) or 0)
        bytes_received = int(span.attrs.get("bytes_received", 0) or 0)

        def one_way(nbytes: float) -> float:
            if self.transfer == "behaviour":
                return self.network.actual_one_way_seconds(nbytes)
            return self.network.estimated_transfer_seconds(nbytes)

        phase = span.phase
        if span.attrs.get("streamed") and phase != "d2h":
            chunks = max(1, int(span.attrs.get("chunks", 1) or 1))
            payload = max(
                0,
                bytes_sent
                - self._stream_begin
                - chunks * self._chunk_header
                - self._stream_end,
            )
            stream_wire = max(0, bytes_sent - self._stream_begin)
            if self.transfer == "behaviour":
                stream_net = self.network.actual_one_way_seconds(
                    stream_wire, include_distortion=False
                )
            else:
                stream_net = self.network.estimated_transfer_seconds(
                    stream_wire
                )
            stages = {
                PHASE_NETWORK: one_way(self._stream_begin) + stream_net,
                PHASE_DEVICE: self._chunked_pcie_seconds(payload, chunks),
                PHASE_RESPONSE: one_way(bytes_received),
            }
        else:
            device = 0.0
            if "Memcpy" in span.name:
                if phase == "d2h":
                    if span.attrs.get("streamed"):
                        chunks = max(
                            1, int(span.attrs.get("chunks", 1) or 1)
                        )
                        payload = max(0, bytes_received - 4 - chunks * 4 - 4)
                        device = self._chunked_pcie_seconds(payload, chunks)
                    else:
                        payload = max(0, bytes_received - self._d2h_header)
                        if payload > 0:
                            device = self.timing.pcie.transfer_seconds(
                                payload
                            )
                    device += self._kernel_seconds
                else:
                    payload = max(0, bytes_sent - self._h2d_header)
                    if payload > 0:
                        device = self.timing.pcie.transfer_seconds(payload)
            elif span.name in (
                "cudaThreadSynchronize", "cudaStreamSynchronize"
            ):
                device = self._kernel_seconds
            stages = {
                PHASE_NETWORK: one_way(bytes_sent),
                PHASE_DEVICE: device,
                PHASE_RESPONSE: one_way(bytes_received),
            }
        stages["total"] = total
        return stages

    def _predict_streamed_seconds(
        self, span: Span, bytes_sent: int, bytes_received: int
    ) -> float:
        """Overlap-aware prediction for a chunked streaming copy.

        The paper's no-overlap model charges network + PCIe serially;
        on a streamed span the network hop of chunk i+1 overlaps the
        device hop of chunk i, so the model charges the classic pipeline
        bound instead.  The Begin still rides the serial small-message
        path and the terminal ack closes the exchange.  Stage totals are
        behaviour-side by default (what a simulated link really charges),
        matching the monitor's ``transfer`` setting.
        """
        from repro.model.overlap import pipelined_seconds

        chunks = max(1, int(span.attrs.get("chunks", 1) or 1))

        def one_way(nbytes: float) -> float:
            if self.transfer == "behaviour":
                return self.network.actual_one_way_seconds(nbytes)
            return self.network.estimated_transfer_seconds(nbytes)

        def stream_way(nbytes: float) -> float:
            # Individual frames sit below the distortion onset, so the
            # streamed flow moves at the undistorted large-payload law.
            if self.transfer == "behaviour":
                return self.network.actual_one_way_seconds(
                    nbytes, include_distortion=False
                )
            return self.network.estimated_transfer_seconds(nbytes)

        if span.phase == "d2h":
            # The server assembles every frame (per-chunk PCIe reads)
            # before the one vectored response leaves, so D2H stays
            # serial; its gain is zero-copy, not overlap.
            payload = max(0, bytes_received - 4 - chunks * 4 - 4)
            return (
                one_way(bytes_sent)
                + self._chunked_pcie_seconds(payload, chunks)
                + self._kernel_seconds
                + one_way(bytes_received)
            )
        payload = max(
            0,
            bytes_sent
            - self._stream_begin
            - chunks * self._chunk_header
            - self._stream_end,
        )
        stream_wire = max(0, bytes_sent - self._stream_begin)
        pcie_total = self._chunked_pcie_seconds(payload, chunks)
        return (
            one_way(self._stream_begin)
            + pipelined_seconds([stream_way(stream_wire), pcie_total], chunks)
            + one_way(bytes_received)
        )

    def _chunked_pcie_seconds(self, payload: int, chunks: int) -> float:
        """Device-stage total: each frame pays its own PCIe charge."""
        if payload <= 0:
            return 0.0
        return chunks * self.timing.pcie.transfer_seconds(payload / chunks)

    # -- observation --------------------------------------------------------

    def __call__(self, span: Span) -> None:
        self.observe(span)

    def observe(self, span: Span) -> None:
        """Fold one finished client span into the conformance state."""
        if span.kind != KIND_CLIENT or span.end is None:
            return
        predicted = self.predict_span_seconds(span)
        if predicted is None or predicted <= 0.0:
            self.unmodeled_spans += 1
            return
        measured = span.duration_seconds
        ratio = measured / predicted
        rel_error = ratio - 1.0
        cfg = self.config
        key = (span.name, span.phase or "")
        series = self._series.get(key)
        if series is None:
            series = SeriesStats(
                call=span.name, phase=span.phase or "",
                network=self.network.name,
            )
            series.ewma_rel_error = rel_error
            self._series[key] = series
        else:
            series.ewma_rel_error += cfg.ewma_alpha * (
                rel_error - series.ewma_rel_error
            )
        series.samples += 1
        series.measured_total += measured
        series.predicted_total += predicted
        if ratio >= cfg.outlier_ratio or ratio <= 1.0 / cfg.outlier_ratio:
            series.exemplars.append((span.session, span.seq, ratio))
            series.exemplars.sort(key=lambda e: abs(e[2] - 1.0), reverse=True)
            del series.exemplars[cfg.max_exemplars:]
        drifting = (
            series.samples >= cfg.min_samples
            and abs(series.ewma_rel_error) > cfg.band
        )
        if self.metrics is not None:
            labels = dict(
                call=series.call, phase=series.phase, network=series.network
            )
            self._m_ratio.observe(ratio, **labels)
            self._m_ewma.set(series.ewma_rel_error, **labels)
            if drifting and key not in self._flagged:
                self._m_findings.inc()
        if drifting:
            self._flagged.add(key)
        elif key in self._flagged and abs(series.ewma_rel_error) <= cfg.band:
            self._flagged.discard(key)

    def observe_spans(self, spans) -> None:
        for span in spans:
            self.observe(span)

    # -- reporting ----------------------------------------------------------

    def findings(self) -> list[DriftFinding]:
        """Series currently outside the band (enough samples seen)."""
        out: list[DriftFinding] = []
        for key in sorted(self._flagged):
            s = self._series[key]
            out.append(
                DriftFinding(
                    call=s.call, phase=s.phase, network=s.network,
                    samples=s.samples, ewma_rel_error=s.ewma_rel_error,
                    mean_ratio=s.mean_ratio,
                    exemplars=tuple(s.exemplars),
                )
            )
        return out

    @property
    def status(self) -> str:
        """``no-data`` / ``ok`` / ``drift`` -- what /healthz reports."""
        if not self._series:
            return "no-data"
        return "drift" if self._flagged else "ok"

    def drift_report(self) -> DriftReport:
        rows = tuple(
            replace(s, exemplars=list(s.exemplars))
            for _, s in sorted(self._series.items())
        )
        return DriftReport(
            network=self.network.name,
            rows=rows,
            findings=tuple(self.findings()),
            unmodeled_spans=self.unmodeled_spans,
        )

    def phase_table(self) -> dict[str, tuple[float, float]]:
        """(measured, predicted) seconds per phase, canonically ordered."""
        from repro.testbed.trace import PHASE_ORDER

        totals: dict[str, tuple[float, float]] = {}
        for series in self._series.values():
            m, p = totals.get(series.phase, (0.0, 0.0))
            totals[series.phase] = (
                m + series.measured_total, p + series.predicted_total
            )
        ordered = {
            name: totals.pop(name) for name in PHASE_ORDER if name in totals
        }
        ordered.update(totals)
        return ordered
