"""Flight recorder: a bounded in-memory ring of structured events, plus
postmortem dumps rendered by ``repro postmortem``.

A daemon that dies tells you nothing unless something was already
watching.  The flight recorder is that something: an always-on ring
buffer (``collections.deque`` with ``maxlen``) holding the last N
structured events -- span completions, errors, session lifecycle
transitions, stream begin/end -- recorded at near-zero hot-path cost
(one tuple build and one lock-free ``deque.append`` per event; no I/O,
no allocation growth).

When a session ends uncleanly (transport died mid-message or
mid-stream, malformed traffic, a dispatch raise) or the daemon stops
with live sessions, the recorder's contents plus a metrics snapshot,
the per-session accounting ledgers and the sticky error are written as
one JSON **postmortem dump**.  ``repro postmortem <dump.json>`` renders
it back as the ASCII timeline a human reads first after a crash.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from pathlib import Path
from typing import Iterable

#: Event kinds the recorder distinguishes (free-form kinds are allowed;
#: these are the ones the middleware emits).
EVENT_SPAN = "span"
EVENT_ERROR = "error"
EVENT_SESSION = "session"
EVENT_STREAM = "stream"
EVENT_DAEMON = "daemon"

#: Default ring capacity: enough for the tail of a burst workload while
#: keeping a worst-case dump in the tens of kilobytes.  Sized so the
#: ring's resident tuples stay small against the L2 cache: the recorder
#: rides the dispatch hot path, and a multi-megabyte ring measurably
#: slows everything around it through eviction alone.
DEFAULT_CAPACITY = 1024

_DUMP_IDS = itertools.count(1)


class FlightRecorder:
    """Bounded ring of (t, kind, name, session, seq, attrs) events.

    Callable with a :class:`~repro.obs.spans.Span` so it plugs straight
    into a tracer as a sink; :meth:`record` takes raw fields so the
    server hot path can log completions without building a Span at all.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._ring: deque[tuple] = deque(maxlen=capacity)
        #: Events ever recorded (the ring forgets, this does not).
        self.total_events = 0
        #: Add to a ``time.perf_counter()`` reading to get wall time.
        #: Hot paths that already hold a perf-counter timestamp pass
        #: ``t=reading + wall_offset`` to :meth:`record_span` and skip a
        #: second clock read; the small drift against NTP-adjusted wall
        #: time over long runs is irrelevant for a crash timeline.
        self.wall_offset = time.time() - time.perf_counter()

    def record(
        self,
        kind: str,
        name: str,
        session: str = "",
        seq: int = 0,
        **attrs,
    ) -> None:
        """Append one event at the current wall instant.

        Lock-free on purpose: ``deque.append`` with a ``maxlen`` is
        atomic under CPython, and this runs once per dispatched request
        on every session thread.  ``total_events`` may undercount by a
        hair under heavy cross-thread contention; it is a diagnostic
        total, not an invariant.
        """
        self._ring.append((time.time(), kind, name, session, seq, attrs))
        self.total_events += 1

    def record_span(
        self,
        name: str,
        session: str,
        seq: int,
        duration_seconds: float,
        phase: str,
        error: int = 0,
        t: float | None = None,
        tenant: str = "",
        depth: int = 0,
    ) -> None:
        """Positional fast path for the one event the dispatch loop emits
        per request.  Stored as a flat 8-tuple (no attrs dict): this is
        by far the highest-volume event, and a dict per entry triples
        the ring's resident size and allocation churn.  Shared-device
        daemons pass ``tenant`` (and the tenant's queued-launch ``depth``
        at completion time), widening the entry to a 10-tuple so
        postmortem dumps stay attributable per tenant.
        :meth:`snapshot` renders both shapes identically.
        """
        stamp = time.time() if t is None else t
        if tenant:
            self._ring.append(
                (stamp, EVENT_SPAN, name, session, seq, duration_seconds,
                 phase, error, tenant, depth)
            )
        else:
            self._ring.append(
                (stamp, EVENT_SPAN, name, session, seq, duration_seconds,
                 phase, error)
            )
        self.total_events += 1

    def __call__(self, span) -> None:
        """Tracer-sink compatibility: record a finished span."""
        self.record(
            EVENT_SPAN,
            span.name,
            session=span.session,
            seq=span.seq,
            duration_seconds=span.duration_seconds,
            **{
                k: span.attrs[k]
                for k in ("phase", "error", "outcome")
                if k in span.attrs
            },
        )

    def snapshot(self, last: int | None = None) -> list[dict]:
        """The retained events, oldest first, as JSON-ready dicts."""
        events = list(self._ring)  # atomic copy; appends may race past it
        if last is not None:
            events = events[-last:]
        out = []
        for event in events:
            if len(event) >= 8:  # flat span fast path (record_span)
                t, kind, name, session, seq, duration, phase, error = event[:8]
                d = {
                    "t": t, "kind": kind, "name": name,
                    "session": session, "seq": seq,
                    "duration_seconds": duration, "phase": phase,
                }
                if error:
                    d["error"] = error
                if len(event) == 10:  # tenant-attributed (shared device)
                    d["tenant"] = event[8]
                    d["queued_launch_depth"] = event[9]
            else:
                t, kind, name, session, seq, attrs = event
                d = {
                    "t": t, "kind": kind, "name": name,
                    "session": session, "seq": seq, **attrs,
                }
            out.append(d)
        return out

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


# -- postmortem dumps ----------------------------------------------------------


def build_postmortem(
    reason: str,
    flight: FlightRecorder | None = None,
    registry=None,
    sessions: Iterable[dict] = (),
    sticky_error: str | int | None = None,
    detail: str = "",
    last_events: int | None = None,
) -> dict:
    """Assemble the crash document: recent events + metrics snapshot +
    per-session accounting + the sticky error that triggered it."""
    from repro.obs.exporters import metrics_snapshot

    return {
        "postmortem": True,
        "reason": reason,
        "detail": detail,
        "written_at": time.time(),
        "sticky_error": sticky_error,
        "events": (
            flight.snapshot(last=last_events) if flight is not None else []
        ),
        "events_total": flight.total_events if flight is not None else 0,
        "sessions": [dict(s) for s in sessions],
        "metrics": metrics_snapshot(registry) if registry is not None else {},
    }


def write_postmortem(dump: dict, directory: str | Path) -> Path:
    """Write ``dump`` under ``directory`` with a unique timestamped name."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    path = directory / f"postmortem-{stamp}-{next(_DUMP_IDS):04d}.json"
    path.write_text(json.dumps(dump, indent=2, default=str) + "\n")
    return path


def read_postmortem(path: str | Path) -> dict:
    """Load a dump written by :func:`write_postmortem`."""
    dump = json.loads(Path(path).read_text())
    if not isinstance(dump, dict) or not dump.get("postmortem"):
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"{path} is not a postmortem dump")
    return dump


def render_postmortem(dump: dict, last_events: int = 40) -> str:
    """The `repro postmortem` view: header, ledgers, event timeline."""
    from repro.reporting import render_table

    lines = [
        f"POSTMORTEM: {dump.get('reason', 'unknown')}",
    ]
    if dump.get("detail"):
        lines.append(f"  detail: {dump['detail']}")
    if dump.get("sticky_error") not in (None, "", 0):
        lines.append(f"  sticky error: {dump['sticky_error']}")
    written = dump.get("written_at")
    if written:
        lines.append(
            "  written: "
            + time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(written))
        )
    sessions = dump.get("sessions", [])
    if sessions:
        rows = [
            [
                s.get("session", "?"),
                s.get("requests", 0),
                s.get("allocs", 0) - s.get("frees", 0),
                s.get("device_bytes_held", 0),
                s.get("bytes_in", 0),
                s.get("bytes_out", 0),
                s.get("open_streams", 0),
                s.get("last_error_name") or s.get("last_error", 0),
                s.get("close_reason", "") or ("live" if not s.get("finished") else "closed"),
            ]
            for s in sessions
        ]
        lines.append("")
        lines.append(
            render_table(
                ["Session", "Reqs", "Live allocs", "Held B", "B in",
                 "B out", "Streams", "Last err", "State"],
                rows,
                title="Session accounting at time of death",
                digits=0,
                align_left_cols=(0, 7, 8),
            )
        )
    events = dump.get("events", [])
    if events:
        shown = events[-last_events:]
        lines.append("")
        lines.append(
            f"Last {len(shown)} of {dump.get('events_total', len(events))} "
            "recorded events (oldest first):"
        )
        t0 = shown[0].get("t", 0.0)
        for e in shown:
            extra = {
                k: v for k, v in e.items()
                if k not in ("t", "kind", "name", "session", "seq")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            lines.append(
                f"  +{e.get('t', 0.0) - t0:9.4f}s  "
                f"[{e.get('kind', '?'):>7s}] "
                f"{e.get('session', ''):<12s} "
                f"#{e.get('seq', 0):<5d} "
                f"{e.get('name', '')}"
                + (f"  ({detail})" if detail else "")
            )
    else:
        lines.append("")
        lines.append("(no events retained)")
    metrics = dump.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append(f"Metrics snapshot: {len(metrics)} families "
                     "(see the JSON for full samples)")
    return "\n".join(lines)
