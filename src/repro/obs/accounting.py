"""Per-session resource ledgers: who holds what, right now.

The ROADMAP's multi-tenant rearchitecture needs per-tenant accounting
before it can enforce quotas or fairness; this module is that substrate.
One :class:`SessionAccounting` rides on every
:class:`~repro.rcuda.server.session.ServerSession` and is updated inline
by the dispatch path (plain integer adds -- no locks, no allocation) so
the daemon can answer "which session holds those 900 MB" from the
``/sessions`` endpoint, per-session labelled gauges, and postmortem
dumps without reconstructing anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SessionAccounting:
    """Running resource ledger of one server session.

    Written by the owning session thread only; read concurrently by
    scrapes and dumps.  Fields are plain ints/floats, so torn reads are
    impossible under CPython and readers see a near-instantaneous view.
    """

    session: str
    started_at: float = field(default_factory=time.time)
    started_monotonic: float = field(default_factory=time.monotonic)
    #: Request traffic.  Byte totals are not added up per request: the
    #: transport already counts every wire byte, so while the session is
    #: live the ledger reads the transport's counters (see
    #: :meth:`bind_transport`); at close the totals are frozen into the
    #: plain fields.
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Device memory.
    allocs: int = 0
    frees: int = 0
    device_bytes_held: int = 0
    peak_device_bytes: int = 0
    #: Transfers and launches.
    copies_in: int = 0
    copies_out: int = 0
    chunks_received: int = 0
    launches: int = 0
    #: Streaming state: H2D streams currently open mid-assembly.
    open_streams: int = 0
    #: Sticky error state: the last non-success CUDA status this session
    #: produced, kept after the session dies (postmortems show it).
    last_error: int = 0
    last_error_name: str = ""
    #: Lifecycle.
    finished: bool = False
    close_reason: str = ""
    #: Live byte-counter source (not serialized); ``None`` once frozen.
    _transport: object | None = None
    #: Live tenant ledger source on a pooled device (not serialized);
    #: ``None`` for unshared sessions and once frozen.
    _tenant: object | None = None
    #: Frozen tenant snapshot after close (shared sessions only).
    tenant: dict | None = None

    def bind_transport(self, transport) -> None:
        """Source ``bytes_in``/``bytes_out`` from the transport's own
        wire counters while the session is live -- zero hot-path cost."""
        self._transport = transport

    def bind_tenant(self, tenant) -> None:
        """Source the per-tenant block (quota, queue, coalescing,
        contention) live from the pool tenant; shared sessions only."""
        self._tenant = tenant

    def freeze_tenant(self) -> None:
        """Snapshot the tenant ledger at close so postmortems and late
        scrapes keep the quota/queue picture after the tenant detaches."""
        t = self._tenant
        if t is not None:
            self.tenant = t.snapshot()
            self._tenant = None

    def freeze_bytes(self) -> None:
        """Copy the transport totals into the plain fields and unbind;
        called at session close so the ledger outlives the socket."""
        t = self._transport
        if t is not None:
            self.bytes_in = t.bytes_received
            self.bytes_out = t.bytes_sent
            self._transport = None

    @property
    def current_bytes_in(self) -> int:
        t = self._transport
        return t.bytes_received if t is not None else self.bytes_in

    @property
    def current_bytes_out(self) -> int:
        t = self._transport
        return t.bytes_sent if t is not None else self.bytes_out

    @property
    def age_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    @property
    def live_allocations(self) -> int:
        return self.allocs - self.frees

    def record_error(self, error: int) -> None:
        if error != 0:
            self.last_error = int(error)
            try:
                from repro.simcuda.errors import CudaError

                self.last_error_name = CudaError(error).name
            except ValueError:
                self.last_error_name = f"error-{error}"

    def _base_dict(self) -> dict:
        return {
            "session": self.session,
            "started_at": self.started_at,
            "age_seconds": round(self.age_seconds, 3),
            "requests": self.requests,
            "bytes_in": self.current_bytes_in,
            "bytes_out": self.current_bytes_out,
            "allocs": self.allocs,
            "frees": self.frees,
            "live_allocations": self.live_allocations,
            "device_bytes_held": self.device_bytes_held,
            "peak_device_bytes": self.peak_device_bytes,
            "copies_in": self.copies_in,
            "copies_out": self.copies_out,
            "chunks_received": self.chunks_received,
            "launches": self.launches,
            "open_streams": self.open_streams,
            "last_error": self.last_error,
            "last_error_name": self.last_error_name,
            "finished": self.finished,
            "close_reason": self.close_reason,
        }

    def to_dict(self) -> dict:
        """The JSON form served by ``/sessions`` and stored in dumps.

        Unshared sessions keep the exact historical document; a tenant
        block is appended only when the session rides a device pool.
        """
        d = self._base_dict()
        t = self._tenant
        if t is not None:
            d["tenant"] = t.snapshot()
        elif self.tenant is not None:
            d["tenant"] = self.tenant
        return d
