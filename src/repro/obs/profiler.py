"""Continuous runtime profiling: counter tracks next to the span tracks.

Spans show *when each call ran*; they cannot show how deep the pipeline
was while it ran.  The profiler samples named sources -- server dispatch
depth, client in-flight window, bytes in flight, device-memory occupancy
-- on a background thread (wall clock) or on demand (virtual clocks,
where a sampling thread is meaningless), and the samples export as
Perfetto/Chrome *counter* events (``"ph": "C"``) on the same timeline as
the spans, so pipelined-mode overlap is visible at a glance.

Sources are zero-argument callables returning a number; a source that
raises (e.g. read during teardown) is skipped for that sample rather
than killing the profiler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.clock import Clock, WallClock

#: Default sampling period of the background thread.
DEFAULT_INTERVAL_SECONDS = 0.005


@dataclass(frozen=True)
class CounterSample:
    """One reading of one counter track."""

    name: str
    t: float
    value: float

    def to_event(self) -> dict:
        """The JSONL form (parallel to ``Span.to_event``)."""
        return {"counter": self.name, "t": self.t, "value": self.value}


class RuntimeProfiler:
    """Samples a set of named sources into counter tracks."""

    def __init__(
        self,
        clock: Clock | None = None,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.interval_seconds = interval_seconds
        self.samples: list[CounterSample] = []
        self._sources: dict[str, Callable[[], float]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sources ------------------------------------------------------------

    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) one counter track."""
        with self._lock:
            self._sources[name] = fn

    def attach_client(self, runtime, prefix: str = "client") -> None:
        """Track a client runtime's pipeline state: the in-flight window
        (deferred requests awaiting their ack) and the unacknowledged
        request bytes on the wire."""
        self.add_source(f"{prefix}.inflight_window", lambda: runtime.inflight_count)
        self.add_source(f"{prefix}.bytes_in_flight", lambda: runtime.bytes_inflight)
        self.add_source(
            f"{prefix}.chunks_streamed", lambda: runtime.chunks_streamed
        )

    def attach_daemon(self, daemon, prefix: str = "server") -> None:
        """Track a daemon's queue depth, session count, per-session
        device-memory holdings, and global device-memory occupancy."""
        self.add_source(f"{prefix}.queue_depth", lambda: daemon.dispatch_depth)
        self.add_source(f"{prefix}.active_sessions", lambda: daemon.active_sessions)
        self.add_source(
            f"{prefix}.session_mem_bytes", lambda: daemon.session_memory_bytes
        )
        memory = daemon.device.memory
        self.add_source(f"{prefix}.device_mem_used", lambda: memory.used)

    # -- sampling -----------------------------------------------------------

    def sample(self) -> None:
        """Read every source once, at the clock's current instant.

        Works under any clock -- virtual-clock harnesses call this at
        the instants they control instead of running the thread.
        """
        t = self.clock.now()
        with self._lock:
            sources = list(self._sources.items())
        readings: list[CounterSample] = []
        for name, fn in sources:
            try:
                readings.append(CounterSample(name, t, float(fn())))
            except Exception:
                continue  # source mid-teardown: skip this reading
        with self._lock:
            self.samples.extend(readings)

    def start(self) -> "RuntimeProfiler":
        """Start the wall-clock sampling thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.sample()
            self._stop.wait(self.interval_seconds)

    def stop(self) -> None:
        """Stop the thread and take one final sample."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()

    def __enter__(self) -> "RuntimeProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- queries ------------------------------------------------------------

    def tracks(self) -> dict[str, list[CounterSample]]:
        """Samples grouped per counter name, in time order."""
        out: dict[str, list[CounterSample]] = {}
        with self._lock:
            samples = list(self.samples)
        for s in samples:
            out.setdefault(s.name, []).append(s)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self.samples)
