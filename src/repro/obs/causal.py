"""Causal request tracing: join both sides of the wire into one timeline.

Client spans and server spans have always shared a correlation key --
``(session, seq)``, positional like the protocol itself -- but nothing
ever joined them.  This module is that join:

* :class:`TraceAssembler` pairs client sessions with server sessions
  (their ids differ: ``client-N`` on one side, ``server-N`` on the
  other), walks the two span sequences stream-aware (a chunked copy is
  ONE client span but Begin + k chunks + End on the server), estimates
  the clock offset between the two sides from the causality constraints
  of synchronous exchanges, and emits one :class:`RequestNode` per
  logical call -- a causally-linked request tree whose children are the
  server spans that serviced it.

* **Phase attribution** carves each node's wall time into the six named
  segments of the serving path -- ``client-serialize``, ``network``,
  ``server-queue``, ``tenant-scheduler-wait``, ``device``, ``response``
  -- as an *exact partition*: labeled sub-intervals are laid over the
  node's wall interval by priority and whatever no evidence claims is
  the network.  Segments therefore sum to the node's wall time by
  construction, so "where did this request's time go" always has a
  complete answer.

* **Critical-path extraction** sweeps a session's (possibly
  overlapping, under pipelined deferred-acks) nodes and charges every
  instant to the node gating progress -- the active node whose
  completion lies furthest out -- then decomposes the charged time by
  the nodes' attributed segments.  For streamed copies,
  :func:`stream_stage_totals` gives the overlap model's per-stage
  totals so the pipeline-bound stage (network vs device) is identified
  from the same math the CI acceptance gate uses.

* :meth:`AssembledTrace.flows` emits Perfetto flow events
  (``"ph":"s"/"f"``) binding each client slice to the server slices
  that serviced it, so the chrome exporter renders the assembled trace
  as one connected timeline.

* Scheduler **blame**: when a node's tenant-scheduler-wait dominates,
  :meth:`AssembledTrace.blame_scheduler` finds the flight-recorder
  batch event (another tenant's coalesced launch batch executing under
  the drain) responsible.

Everything here is offline analysis over recorded spans -- the serving
hot path only gained the three cheap attrs feeding it (``sent`` on the
client, ``queued_for``/``sched_drain`` on the server).
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field

from repro.obs.spans import KIND_CLIENT, KIND_SERVER, Span

#: The six named segments of the causal breakdown, pipeline order.
PHASE_CLIENT_SERIALIZE = "client-serialize"
PHASE_NETWORK = "network"
PHASE_SERVER_QUEUE = "server-queue"
PHASE_SCHED_WAIT = "tenant-scheduler-wait"
PHASE_DEVICE = "device"
PHASE_RESPONSE = "response"
CAUSAL_PHASES = (
    PHASE_CLIENT_SERIALIZE,
    PHASE_NETWORK,
    PHASE_SERVER_QUEUE,
    PHASE_SCHED_WAIT,
    PHASE_DEVICE,
    PHASE_RESPONSE,
)

#: Carving priority: direct evidence beats derived evidence.  Device
#: execution is the server's own measurement; scheduler wait and queue
#: time are its measured prefixes; the client-serialize and response
#: legs are boundary-derived; the residual is the network.
_PRIORITY = {
    PHASE_DEVICE: 6,
    PHASE_SCHED_WAIT: 5,
    PHASE_SERVER_QUEUE: 4,
    PHASE_CLIENT_SERIALIZE: 3,
    PHASE_RESPONSE: 2,
}

#: Server span names a streamed H2D client span absorbs after its
#: matching Begin span ("cudaMemcpy", same name as the client span).
_STREAM_TAIL = ("cudaMemcpyChunk", "cudaMemcpyStreamEnd")

#: How many unmatched server spans the alignment walk may skip while
#: searching for a client span's mate (tolerates dropped client spans).
_LOOKAHEAD = 4


@dataclass(frozen=True)
class ChromeFlow:
    """One Perfetto flow arrow between two slices of the chrome export.

    Timestamps are in the spans' own clock unit; the exporter scales
    them exactly like slice timestamps, and binds each endpoint to the
    (kind, session) track the pids/tids maps assign.
    """

    flow_id: int
    name: str
    src_kind: str
    src_session: str
    src_ts: float
    dst_kind: str
    dst_session: str
    dst_ts: float


@dataclass
class RequestNode:
    """One logical remoted call: the client span plus the server spans
    that serviced it, with the wall time carved into named segments."""

    session: str
    seq: int
    name: str
    client: Span
    #: Server spans, request order (a streamed H2D owns Begin + chunks +
    #: End; most calls own exactly one).  These are the node's children
    #: in the request tree.
    server: list[Span] = field(default_factory=list)
    #: Seconds the server side lags the client clock (add to a server
    #: timestamp to land on the client timeline).
    clock_offset: float = 0.0
    #: Node wall interval on the client clock.  ``end`` extends past the
    #: client span for deferred calls (to the ``acked`` instant -- the
    #: request is causally live until its acknowledgement lands).
    start: float = 0.0
    end: float = 0.0
    #: Exact partition of ``[start, end]``: seconds per causal phase.
    segments: dict[str, float] = field(default_factory=dict)
    #: The partition as (lo, hi, phase) sub-intervals, ascending; the
    #: critical-path sweep intersects these.
    timeline: list[tuple[float, float, str]] = field(default_factory=list)
    tenant: str = ""

    @property
    def children(self) -> list[Span]:
        return self.server

    @property
    def wall_seconds(self) -> float:
        return self.end - self.start

    @property
    def attributed_fraction(self) -> float:
        """Fraction of the wall time carrying a named phase.  1.0 by
        construction (the residual is the network phase) unless the node
        is degenerate (zero wall time)."""
        wall = self.wall_seconds
        if wall <= 0.0:
            return 1.0
        return sum(self.segments.values()) / wall

    @property
    def streamed(self) -> bool:
        return bool(self.client.attrs.get("streamed"))

    @property
    def deferred(self) -> bool:
        return bool(self.client.attrs.get("deferred"))

    def dominant_phase(self) -> str:
        if not self.segments:
            return PHASE_NETWORK
        return max(self.segments.items(), key=lambda kv: kv[1])[0]


@dataclass
class CriticalPath:
    """Where a session's wall-clock actually went: per-node responsible
    seconds plus their phase decomposition."""

    total_seconds: float
    #: (node, seconds the node gated progress), descending.
    entries: list[tuple[RequestNode, float]]
    #: Responsible seconds per causal phase.
    phase_seconds: dict[str, float]

    def dominant_phase(self) -> str:
        if not self.phase_seconds:
            return PHASE_NETWORK
        return max(self.phase_seconds.items(), key=lambda kv: kv[1])[0]


class AssembledTrace:
    """The assembler's product: request nodes plus the session pairing,
    clock offsets, orphans, and the scheduler events for blame."""

    def __init__(
        self,
        nodes: list[RequestNode],
        pairing: dict[str, str],
        offsets: dict[str, float],
        orphan_client: list[Span],
        orphan_server: list[Span],
        sched_events: list[dict],
        wall_offset: float | None = None,
    ) -> None:
        self.nodes = nodes
        #: client session id -> server session id.
        self.pairing = pairing
        #: client session id -> estimated server clock offset.
        self.offsets = offsets
        self.orphan_client = orphan_client
        self.orphan_server = orphan_server
        self.sched_events = sched_events
        self.wall_offset = wall_offset
        self._by_key = {(n.session, n.seq): n for n in nodes}

    # -- queries -------------------------------------------------------------

    def node(self, session: str, seq: int) -> RequestNode | None:
        return self._by_key.get((session, seq))

    def nodes_for(self, session: str) -> list[RequestNode]:
        return [n for n in self.nodes if n.session == session]

    def sessions(self) -> list[str]:
        seen: dict[str, None] = {}
        for n in self.nodes:
            seen.setdefault(n.session)
        return list(seen)

    def phase_totals(self) -> dict[str, float]:
        """Seconds per causal phase, summed over every node."""
        totals = {phase: 0.0 for phase in CAUSAL_PHASES}
        for node in self.nodes:
            for phase, seconds in node.segments.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def top(self, k: int = 10) -> list[RequestNode]:
        """The k nodes with the most wall time, descending."""
        return sorted(
            self.nodes, key=lambda n: (-n.wall_seconds, n.session, n.seq)
        )[: max(0, k)]

    # -- critical path -------------------------------------------------------

    def critical_path(self, session: str | None = None) -> CriticalPath:
        """Sweep the (possibly overlapping) nodes of ``session`` (or all
        sessions) and charge each instant to the node gating progress:
        among the nodes covering that instant, the one whose completion
        lies furthest out.  Under pipelined deferred-acks several nodes
        are live at once and the sweep picks the one the client is
        actually waiting on; synchronous runs degenerate to "every node
        owns its own interval"."""
        nodes = [
            n for n in self.nodes
            if n.wall_seconds > 0.0
            and (session is None or n.session == session)
        ]
        if not nodes:
            return CriticalPath(0.0, [], {})
        cuts = sorted({t for n in nodes for t in (n.start, n.end)})
        charged: dict[tuple[str, int], float] = {}
        phase_seconds: dict[str, float] = {}
        by_key = {(n.session, n.seq): n for n in nodes}
        active: list[RequestNode] = []
        for lo, hi in zip(cuts, cuts[1:]):
            active = [n for n in nodes if n.start <= lo and n.end >= hi]
            if not active:
                continue
            winner = max(active, key=lambda n: (n.end, n.start, n.seq))
            key = (winner.session, winner.seq)
            charged[key] = charged.get(key, 0.0) + (hi - lo)
            for s_lo, s_hi, phase in winner.timeline:
                overlap = min(hi, s_hi) - max(lo, s_lo)
                if overlap > 0.0:
                    phase_seconds[phase] = (
                        phase_seconds.get(phase, 0.0) + overlap
                    )
        entries = sorted(
            ((by_key[key], seconds) for key, seconds in charged.items()),
            key=lambda e: (-e[1], e[0].session, e[0].seq),
        )
        return CriticalPath(
            total_seconds=sum(charged.values()),
            entries=entries,
            phase_seconds=phase_seconds,
        )

    # -- perfetto flows ------------------------------------------------------

    def flows(self) -> list[ChromeFlow]:
        """One request arrow (client send -> first server slice) and one
        response arrow (last server slice -> client completion) per
        assembled node, ready for the chrome exporter."""
        out: list[ChromeFlow] = []
        ids = itertools.count(1)
        for node in self.nodes:
            if not node.server:
                continue
            c = node.client
            if c.end is None:
                continue
            first, last = node.server[0], node.server[-1]
            sent = c.attrs.get("sent")
            src_ts = c.end if sent is None else min(max(sent, c.start), c.end)
            label = f"{node.session}:{node.seq}"
            out.append(ChromeFlow(
                next(ids), label,
                KIND_CLIENT, c.session, src_ts,
                KIND_SERVER, first.session, first.start,
            ))
            out.append(ChromeFlow(
                next(ids), f"{label} resp",
                KIND_SERVER, last.session,
                last.end if last.end is not None else last.start,
                KIND_CLIENT, c.session, c.end,
            ))
        return out

    # -- scheduler blame -----------------------------------------------------

    def blame_scheduler(self, node: RequestNode, slack: float = 0.01):
        """The flight-recorder batch event most responsible for this
        node's tenant-scheduler-wait: the largest coalesced batch another
        tenant executed while this node's server span was draining.
        Returns the event dict, or None without evidence."""
        if not self.sched_events or not node.server:
            return None
        woff = self.wall_offset if self.wall_offset is not None else 0.0
        lo = node.server[0].start + node.clock_offset + woff - slack
        last = node.server[-1]
        hi = (
            (last.end if last.end is not None else last.start)
            + node.clock_offset + woff + slack
        )
        window = [
            e for e in self.sched_events if lo <= e.get("t", 0.0) <= hi
        ]
        if not window:
            return None
        foreign = [e for e in window if e.get("tenant", "") != node.tenant]
        pool = foreign if foreign else window
        return max(pool, key=lambda e: (e.get("launches", 0), e.get("t", 0.0)))


class TraceAssembler:
    """Joins client spans, server spans and flight-recorder events into
    an :class:`AssembledTrace`.

    ``flight_events`` are :meth:`~repro.obs.flight.FlightRecorder.
    snapshot` dicts (or the ``events`` list of a postmortem dump): the
    scheduler's ``sched``/``batch`` events feed blame, and the span
    events calibrate the wall offset between flight time (``time.time``)
    and span time (the tracer clock) when the caller does not pass one.
    Assembly is order-invariant: spans may arrive in any order and from
    any interleaving of files.
    """

    def __init__(
        self,
        flight_events: list[dict] | tuple = (),
        wall_offset: float | None = None,
        lookahead: int = _LOOKAHEAD,
    ) -> None:
        self.flight_events = list(flight_events)
        self.wall_offset = wall_offset
        self.lookahead = max(0, int(lookahead))

    # -- entry point ---------------------------------------------------------

    def assemble(self, spans) -> AssembledTrace:
        clients: dict[str, list[Span]] = {}
        servers: dict[str, list[Span]] = {}
        for span in spans:
            if span.kind == KIND_CLIENT:
                clients.setdefault(span.session, []).append(span)
            elif span.kind == KIND_SERVER:
                servers.setdefault(span.session, []).append(span)
        # Deterministic regardless of arrival order: the daemons assign
        # seqs strictly ordered per session; ties (never produced by the
        # runtimes) break on timestamps.
        for group in (clients, servers):
            for span_list in group.values():
                span_list.sort(key=lambda s: (s.seq, s.start, s.name))
        pairing = self._pair_sessions(clients, servers)
        nodes: list[RequestNode] = []
        offsets: dict[str, float] = {}
        orphan_client: list[Span] = []
        matched_server: set[int] = set()
        for c_session in sorted(clients):
            s_session = pairing.get(c_session)
            s_spans = servers.get(s_session, []) if s_session else []
            matches, unmatched = self._walk(clients[c_session], s_spans)
            offset = (
                self.estimate_clock_offset(matches)
                if s_spans else 0.0
            )
            offsets[c_session] = offset
            orphan_client.extend(unmatched)
            for c_span, s_list in matches:
                for s in s_list:
                    matched_server.add(id(s))
                nodes.append(self._build_node(c_span, s_list, offset))
        orphan_server = [
            s
            for s_session in sorted(servers)
            for s in servers[s_session]
            if id(s) not in matched_server
        ]
        sched_events = [
            e for e in self.flight_events
            if e.get("kind") == "sched" and e.get("name") == "batch"
        ]
        wall_offset = self.wall_offset
        if wall_offset is None and sched_events:
            wall_offset = self._infer_wall_offset(servers)
        nodes.sort(key=lambda n: (n.start, n.session, n.seq))
        return AssembledTrace(
            nodes=nodes,
            pairing=pairing,
            offsets=offsets,
            orphan_client=orphan_client,
            orphan_server=orphan_server,
            sched_events=sched_events,
            wall_offset=wall_offset,
        )

    # -- session pairing -----------------------------------------------------

    def _pair_sessions(
        self,
        clients: dict[str, list[Span]],
        servers: dict[str, list[Span]],
    ) -> dict[str, str]:
        """Greedy max matching on alignment quality.

        Score = fraction of a client session's spans the walk matches
        against the server session, with temporal proximity of the two
        sessions' midpoints as the tiebreak (identical workloads on N
        sessions walk identically; time tells them apart)."""
        candidates: list[tuple[float, float, str, str]] = []
        for c_session, c_spans in clients.items():
            for s_session, s_spans in servers.items():
                matches, _ = self._walk(c_spans, s_spans)
                hit = sum(1 for _, s_list in matches if s_list)
                if not hit:
                    continue
                score = hit / max(1, len(c_spans))
                distance = abs(
                    self._midpoint(c_spans) - self._midpoint(s_spans)
                )
                candidates.append((score, -distance, c_session, s_session))
        candidates.sort(
            key=lambda c: (-c[0], -c[1], c[2], c[3])
        )
        pairing: dict[str, str] = {}
        taken: set[str] = set()
        for _, _, c_session, s_session in candidates:
            if c_session in pairing or s_session in taken:
                continue
            pairing[c_session] = s_session
            taken.add(s_session)
        return pairing

    @staticmethod
    def _midpoint(spans: list[Span]) -> float:
        if not spans:
            return 0.0
        last = spans[-1]
        hi = last.end if last.end is not None else last.start
        return 0.5 * (spans[0].start + hi)

    # -- stream-aware alignment walk -----------------------------------------

    def _walk(
        self, c_spans: list[Span], s_spans: list[Span]
    ) -> tuple[list[tuple[Span, list[Span]]], list[Span]]:
        """Align one client session against one server session.

        Client seqs count logical calls; server seqs count wire messages,
        so the two drift apart at the first streamed H2D (one client span
        vs Begin + k chunks + End).  The walk therefore matches on names
        in order, absorbing a streamed copy's whole server frame sequence
        into its one client span, with bounded lookahead so one dropped
        span does not desynchronize the rest."""
        matches: list[tuple[Span, list[Span]]] = []
        unmatched: list[Span] = []
        j = 0
        n = len(s_spans)
        for c in c_spans:
            found = -1
            for d in range(self.lookahead + 1):
                if j + d >= n:
                    break
                if s_spans[j + d].name == c.name:
                    found = j + d
                    break
            if found < 0:
                matches.append((c, []))
                unmatched.append(c)
                continue
            j = found
            taken = [s_spans[j]]
            j += 1
            if (
                c.attrs.get("streamed")
                and c.attrs.get("phase") != "d2h"
            ):
                # Absorb the chunk frames and the terminal End frame.
                while j < n and s_spans[j].name == _STREAM_TAIL[0]:
                    taken.append(s_spans[j])
                    j += 1
                if j < n and s_spans[j].name == _STREAM_TAIL[1]:
                    taken.append(s_spans[j])
                    j += 1
            matches.append((c, taken))
        return matches, unmatched

    # -- clock alignment -----------------------------------------------------

    @staticmethod
    def estimate_clock_offset(
        matches: list[tuple[Span, list[Span]]]
    ) -> float:
        """Estimate the server->client clock offset from causality.

        For a synchronous (non-deferred) match the server span must lie
        inside the client span, so the feasible offset sits in
        ``[c.start - s.start, c.end - s.end]``.  The medians of the two
        bounds across matches give a robust interval; 0 is preferred
        when feasible (shared-clock runs are the common case), else the
        interval midpoint."""
        los: list[float] = []
        his: list[float] = []
        for c, s_list in matches:
            if not s_list or c.end is None or c.attrs.get("deferred"):
                continue
            s_lo = s_list[0].start
            last = s_list[-1]
            s_hi = last.end if last.end is not None else last.start
            insort(los, c.start - s_lo)
            insort(his, c.end - s_hi)
        if not los:
            return 0.0
        lo_m = los[len(los) // 2]
        hi_m = his[len(his) // 2]
        if lo_m <= 0.0 <= hi_m:
            return 0.0
        return 0.5 * (lo_m + hi_m)

    def _infer_wall_offset(
        self, servers: dict[str, list[Span]]
    ) -> float | None:
        """Offset from span time to flight time, from the span events
        both records share: a flight span event's ``t`` is the span's
        end instant shifted by the recorder's wall offset."""
        by_key = {
            (s.session, s.seq): s
            for s_spans in servers.values()
            for s in s_spans
            if s.end is not None
        }
        deltas: list[float] = []
        for e in self.flight_events:
            if e.get("kind") != "span":
                continue
            span = by_key.get((e.get("session"), e.get("seq")))
            if span is not None:
                insort(deltas, e.get("t", 0.0) - span.end)
        if not deltas:
            return None
        return deltas[len(deltas) // 2]

    # -- phase attribution ---------------------------------------------------

    def _build_node(
        self, c: Span, s_list: list[Span], offset: float
    ) -> RequestNode:
        attrs = c.attrs
        start = c.start
        end = c.end if c.end is not None else c.start
        acked = attrs.get("acked")
        if acked is not None and acked > end:
            end = acked
        tenant = ""
        for s in s_list:
            t = s.attrs.get("tenant")
            if t:
                tenant = t
                break
        node = RequestNode(
            session=c.session,
            seq=c.seq,
            name=c.name,
            client=c,
            server=s_list,
            clock_offset=offset,
            start=start,
            end=end,
            tenant=tenant,
        )
        if end <= start:
            return node
        candidates = self._candidate_intervals(node)
        node.timeline = _carve(start, end, candidates)
        segments: dict[str, float] = {}
        for lo, hi, phase in node.timeline:
            segments[phase] = segments.get(phase, 0.0) + (hi - lo)
        node.segments = segments
        return node

    def _candidate_intervals(
        self, node: RequestNode
    ) -> list[tuple[int, str, float, float]]:
        c = node.client
        attrs = c.attrs
        out: list[tuple[int, str, float, float]] = []
        sent = attrs.get("sent")
        if sent is None and attrs.get("deferred") and c.end is not None:
            # A deferred call's whole local duration is the serialize +
            # enqueue cost; the wire write completes at the span close.
            sent = c.end
        if sent is not None:
            out.append(
                (_PRIORITY[PHASE_CLIENT_SERIALIZE],
                 PHASE_CLIENT_SERIALIZE, node.start, sent)
            )
        if node.server:
            offset = node.clock_offset
            last_end = None
            for s in node.server:
                s_lo = s.start + offset
                s_hi = (s.end if s.end is not None else s.start) + offset
                drain = float(s.attrs.get("sched_drain") or 0.0)
                if drain > 0.0:
                    mid = min(s_lo + drain, s_hi)
                    out.append(
                        (_PRIORITY[PHASE_SCHED_WAIT],
                         PHASE_SCHED_WAIT, s_lo, mid)
                    )
                    out.append(
                        (_PRIORITY[PHASE_DEVICE], PHASE_DEVICE, mid, s_hi)
                    )
                else:
                    out.append(
                        (_PRIORITY[PHASE_DEVICE], PHASE_DEVICE, s_lo, s_hi)
                    )
                queued = float(s.attrs.get("queued_for") or 0.0)
                if queued > 0.0:
                    out.append(
                        (_PRIORITY[PHASE_SERVER_QUEUE],
                         PHASE_SERVER_QUEUE, s_lo - queued, s_lo)
                    )
                last_end = s_hi
            if last_end is not None and last_end < node.end:
                out.append(
                    (_PRIORITY[PHASE_RESPONSE],
                     PHASE_RESPONSE, last_end, node.end)
                )
        elif "network_seconds" in attrs or "device_seconds" in attrs:
            # Simulated-testbed spans are client-only but carry the
            # model's own split; lay it out sequentially (serialize ->
            # network -> device), with the fixed per-call overheads in
            # the serialize segment.
            net = float(attrs.get("network_seconds") or 0.0)
            dev = float(attrs.get("device_seconds") or 0.0)
            wall = node.end - node.start
            overhead = max(0.0, wall - net - dev)
            if net + dev > wall and net + dev > 0.0:
                scale = wall / (net + dev)
                net *= scale
                dev *= scale
            a = node.start + overhead
            b = a + net
            out.append(
                (_PRIORITY[PHASE_CLIENT_SERIALIZE],
                 PHASE_CLIENT_SERIALIZE, node.start, a)
            )
            out.append((1, PHASE_NETWORK, a, b))
            out.append((_PRIORITY[PHASE_DEVICE], PHASE_DEVICE, b, b + dev))
        return out


def _carve(
    start: float,
    end: float,
    candidates: list[tuple[int, str, float, float]],
) -> list[tuple[float, float, str]]:
    """Exact partition of ``[start, end]``: every elementary interval is
    labeled by the highest-priority candidate covering it, or the
    network phase when nothing claims it.  Adjacent same-phase pieces
    are merged."""
    clipped = []
    cuts = {start, end}
    for priority, phase, lo, hi in candidates:
        lo = max(lo, start)
        hi = min(hi, end)
        if hi > lo:
            clipped.append((priority, phase, lo, hi))
            cuts.add(lo)
            cuts.add(hi)
    points = sorted(cuts)
    timeline: list[tuple[float, float, str]] = []
    for lo, hi in zip(points, points[1:]):
        best_priority = 0
        phase = PHASE_NETWORK
        for priority, p, c_lo, c_hi in clipped:
            if c_lo <= lo and c_hi >= hi and priority > best_priority:
                best_priority = priority
                phase = p
        if timeline and timeline[-1][2] == phase and timeline[-1][1] == lo:
            timeline[-1] = (timeline[-1][0], hi, phase)
        else:
            timeline.append((lo, hi, phase))
    return timeline


# -- streamed-copy overlap stages ----------------------------------------------


def stream_stage_totals(
    size: int,
    chunk_bytes: int,
    network,
    timing=None,
) -> dict:
    """Per-stage totals of a chunked H2D copy under the overlap model --
    the same math the CI acceptance gate (``acceptance_16mib``) commits.

    The network stage carries the whole streamed flow (payload plus the
    per-chunk frame headers, undistorted -- frames sit below the
    distortion onset); the device stage pays one PCIe charge per frame.
    The classic two-stage pipeline bound follows, and the **bound
    stage** is whichever stage's total dominates: that is the stage the
    pipeline cannot hide, the one a critical-path reading of a streamed
    copy should blame."""
    from repro.model.overlap import pipelined_seconds
    from repro.net.spec import NetworkSpec, get_network
    from repro.protocol.accounting import memcpy_chunk_cost
    from repro.simcuda.timing import DeviceTimingModel

    spec = network if isinstance(network, NetworkSpec) else get_network(network)
    timing = timing if timing is not None else DeviceTimingModel()
    chunks = max(1, -(-size // max(1, chunk_bytes)))
    chunk_header = memcpy_chunk_cost().send_fixed
    network_seconds = spec.actual_one_way_seconds(
        size + chunks * chunk_header, include_distortion=False
    )
    device_seconds = chunks * timing.pcie.transfer_seconds(size / chunks)
    bound = pipelined_seconds([network_seconds, device_seconds], chunks)
    return {
        "network": spec.name,
        "size_bytes": size,
        "chunk_bytes": chunk_bytes,
        "chunks": chunks,
        "network_seconds": network_seconds,
        "device_seconds": device_seconds,
        "bound_seconds": bound,
        "bound_stage": (
            PHASE_NETWORK
            if network_seconds >= device_seconds
            else PHASE_DEVICE
        ),
    }


def stream_bound_stage(node: RequestNode, network, timing=None) -> dict:
    """Identify a streamed node's pipeline-bound stage against the
    overlap model, using the node's own chunk geometry."""
    attrs = node.client.attrs
    chunks = max(1, int(attrs.get("chunks", 1) or 1))
    chunk_bytes = int(attrs.get("chunk_bytes", 0) or 0)
    payload = chunks * chunk_bytes if chunk_bytes else 0
    if not payload:
        payload = int(attrs.get("bytes_sent", 0) or 0)
        chunk_bytes = max(1, payload // chunks)
    return stream_stage_totals(payload, chunk_bytes, network, timing=timing)
