"""A minimal /metrics + /healthz + /sessions endpoint for operations.

`repro serve --metrics-port N` starts one of these next to the daemon.
Standard-library only: a threading HTTP server answering ``GET /metrics``
with the text exposition of a :class:`~repro.obs.metrics.MetricsRegistry`,
``GET /healthz`` with a JSON health document -- session count, uptime,
seconds since the last scrape, model-drift and SLO status when wired in
-- and ``GET /sessions`` with the per-session accounting ledgers
(`repro top` reads all three).  While the daemon is stopping the probe
answers ``503``, so load balancers drain before the socket dies.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.errors import TransportError
from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry

#: Content type the v0.0.4 text exposition is served under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves a registry on ``GET /metrics`` until :meth:`stop`.

    ``health`` is an optional zero-argument callable returning a dict
    merged into the ``/healthz`` document; the keys the probe reacts to:

    * ``"stopping": True`` -- answer 503 (status ``"stopping"``);
    * ``"drift"`` -- surfaced verbatim as the model-conformance status
      (a :attr:`~repro.obs.conformance.ConformanceMonitor.status` value).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Callable[[], dict] | None = None,
        sessions: Callable[[], list] | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._health = health
        self._sessions = sessions
        self._started_at: float | None = None
        self._last_scrape: float | None = None
        self._stopping = False

    # -- health document ----------------------------------------------------

    def mark_stopping(self) -> None:
        """Flip the probe to 503 without tearing the endpoint down yet."""
        self._stopping = True

    def health_document(self) -> tuple[int, dict]:
        """(HTTP status, body) of the ``/healthz`` probe."""
        now = time.monotonic()
        doc: dict = {
            "status": "ok",
            "uptime_seconds": (
                round(now - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
            "last_scrape_age_seconds": (
                round(now - self._last_scrape, 3)
                if self._last_scrape is not None
                else None
            ),
            "drift": "disabled",
        }
        if self._health is not None:
            try:
                doc.update(self._health())
            except Exception as exc:  # probe must never take the server down
                doc["status"] = "error"
                doc["error"] = str(exc)
                return 500, doc
        if self._stopping or doc.pop("stopping", False):
            doc["status"] = "stopping"
            return 503, doc
        return 200, doc

    def sessions_document(self) -> tuple[int, dict]:
        """(HTTP status, body) of the ``GET /sessions`` ledger listing."""
        if self._sessions is None:
            return 200, {"sessions": [], "count": 0, "enabled": False}
        try:
            ledgers = [dict(entry) for entry in self._sessions()]
        except Exception as exc:  # the listing must never kill the server
            return 500, {"error": str(exc), "sessions": [], "count": 0}
        return 200, {
            "sessions": ledgers,
            "count": len(ledgers),
            "enabled": True,
        }

    # -- service ------------------------------------------------------------

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] == "/metrics":
                    body = render_prometheus(server.registry).encode()
                    server._last_scrape = time.monotonic()
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path.split("?", 1)[0] == "/healthz":
                    status, doc = server.health_document()
                    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                elif self.path.split("?", 1)[0] == "/sessions":
                    status, doc = server.sessions_document()
                    body = (
                        json.dumps(doc, sort_keys=True, default=str) + "\n"
                    ).encode()
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes should not spam the daemon's stdout

        try:
            self._httpd = ThreadingHTTPServer(
                (self.host, self._requested_port), Handler
            )
        except OSError as exc:
            raise TransportError(
                f"could not bind metrics endpoint "
                f"{self.host}:{self._requested_port}: {exc}"
            ) from exc
        self.port = self._httpd.server_address[1]
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        self._stopping = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
