"""A minimal /metrics endpoint for Prometheus scrapes.

`repro serve --metrics-port N` starts one of these next to the daemon.
Standard-library only: a threading HTTP server answering ``GET /metrics``
with the text exposition of a :class:`~repro.obs.metrics.MetricsRegistry`
and ``GET /healthz`` with a liveness probe.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import TransportError
from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry

#: Content type the v0.0.4 text exposition is served under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves a registry on ``GET /metrics`` until :meth:`stop`."""

    def __init__(
        self, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] == "/metrics":
                    body = render_prometheus(registry).encode()
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes should not spam the daemon's stdout

        try:
            self._httpd = ThreadingHTTPServer(
                (self.host, self._requested_port), Handler
            )
        except OSError as exc:
            raise TransportError(
                f"could not bind metrics endpoint "
                f"{self.host}:{self._requested_port}: {exc}"
            ) from exc
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
