"""One-way end-to-end latency models.

The paper characterizes each network with up to three views, all of which
exist here as :class:`LatencyModel` implementations:

* :class:`BandwidthLatencyModel` -- ``t = payload / effective_bandwidth``.
  This is the arithmetic of Tables III and V and the estimation model's
  notion of a memory-copy transfer time.
* :class:`LinearLatencyModel` -- ``t(n) = slope * n + intercept`` for ``n``
  MiB, the regressions of Figs. 3-4 (``f(n) = 8.9 n - 0.3`` for GigaE,
  ``g(n) = 0.7 n + 2.8`` for 40GI).  Only meaningful for large payloads:
  the GigaE intercept is negative, so the model is clamped below.
* :class:`AnchoredSmallMessageModel` -- piecewise-linear interpolation
  through the measured small-message latencies of the left-hand plots
  (the anchors behind Table II's constants), including non-monotonic
  artifacts such as the GigaE delayed-ACK bump at 12 bytes.
* :class:`CompositeLatencyModel` -- the anchored small-message curve glued
  to a large-payload law at a crossover size, which is what a simulated
  link actually exhibits.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.units import MIB, bytes_to_mib, ms_to_seconds, transfer_seconds, us_to_seconds


class LatencyModel(ABC):
    """A one-way end-to-end latency as a function of payload size."""

    @abstractmethod
    def one_way_seconds(self, nbytes: float) -> float:
        """Time in seconds to deliver ``nbytes`` of payload one way."""

    def one_way_us(self, nbytes: float) -> float:
        """Convenience: one-way latency in microseconds."""
        return self.one_way_seconds(nbytes) * 1e6

    def one_way_ms(self, nbytes: float) -> float:
        """Convenience: one-way latency in milliseconds."""
        return self.one_way_seconds(nbytes) * 1e3

    def round_trip_seconds(self, nbytes: float) -> float:
        """Ping-pong round trip with equal payloads both ways."""
        return 2.0 * self.one_way_seconds(nbytes)


class BandwidthLatencyModel(LatencyModel):
    """``t = payload / bandwidth``: the Tables III/V transfer-time law."""

    def __init__(self, bandwidth_mibps: float) -> None:
        if bandwidth_mibps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth_mibps}"
            )
        self.bandwidth_mibps = float(bandwidth_mibps)

    def one_way_seconds(self, nbytes: float) -> float:
        return transfer_seconds(nbytes, self.bandwidth_mibps)

    def __repr__(self) -> str:
        return f"BandwidthLatencyModel({self.bandwidth_mibps} MiB/s)"


class LinearLatencyModel(LatencyModel):
    """``t(n) = slope * n_mib + intercept`` (milliseconds), clamped at 0.

    ``slope`` is in ms per MiB of payload and ``intercept`` in ms, exactly
    the published regression parameters.  The clamp matters for GigaE,
    whose fitted intercept is -0.3 ms: the regression is a large-payload
    law and must never yield a negative time when a caller evaluates it
    out of its domain.
    """

    def __init__(self, slope_ms_per_mib: float, intercept_ms: float) -> None:
        if slope_ms_per_mib <= 0:
            raise ConfigurationError(
                f"slope must be positive, got {slope_ms_per_mib}"
            )
        self.slope_ms_per_mib = float(slope_ms_per_mib)
        self.intercept_ms = float(intercept_ms)

    def one_way_seconds(self, nbytes: float) -> float:
        ms = self.slope_ms_per_mib * bytes_to_mib(nbytes) + self.intercept_ms
        return max(ms_to_seconds(ms), 0.0)

    def asymptotic_bandwidth_mibps(self) -> float:
        """Effective bandwidth implied by the slope (payload >> intercept)."""
        return 1000.0 / self.slope_ms_per_mib

    def __repr__(self) -> str:
        return (
            f"LinearLatencyModel({self.slope_ms_per_mib}*n "
            f"{self.intercept_ms:+} ms)"
        )


class AnchoredSmallMessageModel(LatencyModel):
    """Piecewise-linear interpolation through measured (bytes -> us) anchors.

    Below the smallest anchor the latency is held constant (the wire is
    dominated by the fixed per-message cost); above the largest anchor the
    last segment's slope is extrapolated.  Anchors may be non-monotonic --
    the GigaE 12-byte delayed-ACK artifact is part of the published data
    and is preserved verbatim.
    """

    def __init__(self, anchors_us: Mapping[int, float]) -> None:
        if not anchors_us:
            raise ConfigurationError("at least one anchor is required")
        items = sorted(anchors_us.items())
        for size, us in items:
            if size <= 0 or us <= 0:
                raise ConfigurationError(
                    f"anchors must be positive, got ({size}, {us})"
                )
        self._sizes: Sequence[int] = [s for s, _ in items]
        self._lat_us: Sequence[float] = [u for _, u in items]

    @property
    def max_anchor_bytes(self) -> int:
        """Largest payload covered by a measured anchor."""
        return self._sizes[-1]

    def one_way_seconds(self, nbytes: float) -> float:
        sizes, lats = self._sizes, self._lat_us
        if nbytes <= sizes[0]:
            return us_to_seconds(lats[0])
        if nbytes >= sizes[-1]:
            if len(sizes) == 1:
                return us_to_seconds(lats[-1])
            # Extrapolate with the final segment's slope, never below the
            # last measured point.
            slope = (lats[-1] - lats[-2]) / (sizes[-1] - sizes[-2])
            us = lats[-1] + max(slope, 0.0) * (nbytes - sizes[-1])
            return us_to_seconds(us)
        hi = bisect.bisect_right(sizes, nbytes)
        lo = hi - 1
        frac = (nbytes - sizes[lo]) / (sizes[hi] - sizes[lo])
        us = lats[lo] + frac * (lats[hi] - lats[lo])
        return us_to_seconds(us)

    def __repr__(self) -> str:
        return f"AnchoredSmallMessageModel({len(self._sizes)} anchors)"


class CompositeLatencyModel(LatencyModel):
    """Small-message anchors below a crossover, a large-payload law above.

    At and above ``crossover_bytes`` (default 1 MiB) the large model rules,
    but never below what the small model's extrapolation gives -- this
    keeps the composite continuous-ish and monotone through the handover
    even for the clamped negative-intercept GigaE regression.
    """

    DEFAULT_CROSSOVER = MIB

    def __init__(
        self,
        small: AnchoredSmallMessageModel,
        large: LatencyModel,
        crossover_bytes: int | None = None,
    ) -> None:
        self.small = small
        self.large = large
        self.crossover_bytes = (
            self.DEFAULT_CROSSOVER if crossover_bytes is None else crossover_bytes
        )
        if self.crossover_bytes <= small.max_anchor_bytes:
            raise ConfigurationError(
                "crossover must lie above the last small-message anchor "
                f"({small.max_anchor_bytes} B), got {self.crossover_bytes} B"
            )

    def one_way_seconds(self, nbytes: float) -> float:
        if nbytes < self.crossover_bytes:
            return self.small.one_way_seconds(nbytes)
        return max(
            self.large.one_way_seconds(nbytes),
            self.small.one_way_seconds(self.crossover_bytes),
        )

    def __repr__(self) -> str:
        return (
            f"CompositeLatencyModel(small={self.small!r}, large={self.large!r}, "
            f"crossover={self.crossover_bytes} B)"
        )
