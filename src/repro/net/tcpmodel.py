"""TCP behaviour models for the GigaE link.

Two distinct models live here, serving two different purposes:

* :class:`TcpSegmentModel` is *mechanistic*: it plays out segments, the
  congestion-window ramp, delayed ACKs and (optionally) Nagle's algorithm,
  which the paper explicitly disables ("we disabled the TCP-layer
  congestion control algorithm ... to avoid unnecessary delays introduced
  by ... Nagle's algorithm").  It produces the characteristic non-linear
  small-payload response of Fig. 3 (left) and powers the Nagle on/off
  ablation benchmark.

* :class:`WindowDistortionModel` is *empirical*: the per-copy extra time,
  relative to the linear transfer law, that the paper's GigaE measurements
  exhibit because of "unexpected network transfer times related to the TCP
  window status" (Section V).  Its anchors are derived from Table IV: the
  difference between the GigaE-extracted and 40GI-extracted fixed times,
  divided by the copies per run, is exactly the distortion accumulated per
  memory copy.  The simulated GigaE link adds this term so that the
  regenerated cross-validation shows the same FFT error pattern
  (+34% -> +5.8% under the GigaE model, -16% -> -2.3% under the 40GI one).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.units import MIB, ms_to_seconds


@dataclass(frozen=True)
class TcpSegmentModel:
    """Segment-level TCP timing with a congestion-window ramp.

    The model ships ``nbytes`` in MSS-sized segments.  The window starts at
    ``initial_window_segments`` and doubles every round trip (slow start)
    until ``max_window_segments``; each round costs one ``rtt_seconds``
    stall on top of the serialization time at ``wire_bw_bytes_per_s``.
    With ``nagle=True``, a final sub-MSS residue is additionally held back
    for a delayed-ACK timeout, the exact pathology the paper avoids by
    disabling the algorithm.
    """

    wire_bw_bytes_per_s: float
    rtt_seconds: float = 50e-6
    mss_bytes: int = 1448
    initial_window_segments: int = 2
    max_window_segments: int = 44
    nagle: bool = False
    delayed_ack_seconds: float = 40e-3

    def __post_init__(self) -> None:
        if self.wire_bw_bytes_per_s <= 0:
            raise ConfigurationError("wire bandwidth must be positive")
        if self.mss_bytes <= 0:
            raise ConfigurationError("MSS must be positive")
        if self.initial_window_segments <= 0:
            raise ConfigurationError("initial window must be positive")
        if self.max_window_segments < self.initial_window_segments:
            raise ConfigurationError(
                "max window must be >= initial window"
            )

    def slow_start_rounds(self, nbytes: int) -> int:
        """Window-limited round trips while the congestion window ramps.

        Once the window saturates, ACK clocking overlaps transmission and
        the flow is purely bandwidth-limited -- no further stalls.
        """
        segments = max(1, math.ceil(nbytes / self.mss_bytes))
        window = self.initial_window_segments
        rounds = 0
        sent = 0
        while sent < segments:
            rounds += 1
            sent += window
            if window >= self.max_window_segments:
                break
            window = min(window * 2, self.max_window_segments)
        return rounds

    def one_way_seconds(self, nbytes: int) -> float:
        """Delivery time for one message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError("payload must be non-negative")
        if nbytes == 0:
            return self.rtt_seconds / 2.0
        serialization = nbytes / self.wire_bw_bytes_per_s
        stalls = self.slow_start_rounds(nbytes) * self.rtt_seconds
        total = serialization + stalls
        if self.nagle:
            residue = nbytes % self.mss_bytes
            if 0 < residue:
                # A trailing small segment waits for the delayed ACK of the
                # previous one before Nagle lets it out.
                total += self.delayed_ack_seconds
        return total

    def with_nagle(self, enabled: bool) -> "TcpSegmentModel":
        """A copy of this model with Nagle's algorithm toggled."""
        return TcpSegmentModel(
            wire_bw_bytes_per_s=self.wire_bw_bytes_per_s,
            rtt_seconds=self.rtt_seconds,
            mss_bytes=self.mss_bytes,
            initial_window_segments=self.initial_window_segments,
            max_window_segments=self.max_window_segments,
            nagle=enabled,
            delayed_ack_seconds=self.delayed_ack_seconds,
        )


class WindowDistortionModel:
    """Empirical extra per-copy time of a bursty TCP link vs the linear law.

    ``extra_seconds(nbytes)`` interpolates piecewise-linearly through
    (payload MiB -> extra ms) anchors and returns 0 beyond the last anchor.
    The default anchors (:func:`gigae_distortion_from_table4`) are derived
    from the published Table IV fixed times; the distortion peaks around
    16 MiB and decays to noise level by a few hundred MiB, matching the
    paper's observation that the TCP-related error is "considerably large"
    for small datasets and ~1% above 40 MB.
    """

    def __init__(self, anchors_mib_ms: Sequence[tuple[float, float]]) -> None:
        if not anchors_mib_ms:
            raise ConfigurationError("at least one anchor is required")
        pts = sorted(anchors_mib_ms)
        if pts[0][0] > 0.0:
            pts.insert(0, (0.0, 0.0))
        for mib, _ms in pts:
            if mib < 0:
                raise ConfigurationError("anchor sizes must be non-negative")
        self._mib = [p[0] for p in pts]
        self._ms = [p[1] for p in pts]

    def extra_seconds(self, nbytes: float) -> float:
        """Extra one-way time (s) beyond the linear model for this payload."""
        mib = nbytes / MIB
        if mib <= self._mib[0]:
            return ms_to_seconds(self._ms[0])
        if mib >= self._mib[-1]:
            # Hold the final anchor's value; the default GigaE anchors end
            # at (256 MiB, 0 ms), so large copies see no distortion.
            return ms_to_seconds(self._ms[-1])
        hi = bisect.bisect_right(self._mib, mib)
        lo = hi - 1
        frac = (mib - self._mib[lo]) / (self._mib[hi] - self._mib[lo])
        ms = self._ms[lo] + frac * (self._ms[hi] - self._ms[lo])
        return ms_to_seconds(ms)

    @staticmethod
    def none() -> "WindowDistortionModel":
        """A distortion-free model (used for the InfiniBand link)."""
        return WindowDistortionModel([(0.0, 0.0)])


def gigae_distortion_from_table4() -> WindowDistortionModel:
    """Distortion anchors derived from the published Table IV fixed times.

    Per copy: ``(fixed_GigaE - fixed_40GI) / copies``.  The FFT rows
    (k = 2, payloads 8-64 MiB) carry the signal; the MM rows (k = 3,
    payloads >= 64 MiB) show it already drowned in measurement noise, so
    the model decays linearly to zero at 256 MiB.
    """
    from repro.paperdata.table4 import TABLE4_FFT

    # No distortion below half the smallest FFT transfer: sub-MiB protocol
    # messages and the small-packet plots are unaffected by window state.
    anchors: list[tuple[float, float]] = [(4.0, 0.0)]
    for row in TABLE4_FFT:
        payload_mib = row.size * 4096 / MIB
        extra_ms = (row.fixed_gigae - row.fixed_ib40) / 2.0
        anchors.append((payload_mib, extra_ms))
    anchors.append((256.0, 0.0))
    return WindowDistortionModel(anchors)
