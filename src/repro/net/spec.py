"""Runtime network specifications for the seven interconnects.

A :class:`NetworkSpec` bundles the three views the study needs of a
network:

* ``estimate_model`` -- what the *estimation model* assumes: payload over
  the published effective bandwidth (Tables III/V arithmetic).
* ``regression_model`` -- the published linear large-payload law, where one
  exists (GigaE's ``f``, 40GI's ``g``); derived from the bandwidth with a
  zero intercept otherwise.
* ``actual behaviour`` -- what a simulated link really does: the anchored
  small-message curve glued to the large-payload law, plus (for GigaE) the
  empirical TCP window distortion.  The gap between "actual" and
  "estimate" is precisely what produces the cross-validation errors of
  Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.latency import (
    AnchoredSmallMessageModel,
    BandwidthLatencyModel,
    CompositeLatencyModel,
    LatencyModel,
    LinearLatencyModel,
)
from repro.net.tcpmodel import (
    TcpSegmentModel,
    WindowDistortionModel,
    gigae_distortion_from_table4,
)
from repro.paperdata.figures import (
    SMALL_MESSAGE_ANCHORS_40GI,
    SMALL_MESSAGE_ANCHORS_GIGAE,
)
from repro.paperdata.networks import (
    HPC_NETWORK_NAMES,
    MEASURED_NETWORK_NAMES,
    NETWORKS,
)
from repro.units import MIB


@dataclass(frozen=True)
class NetworkSpec:
    """Everything the study needs to know about one interconnect."""

    name: str
    description: str
    effective_bw_mibps: float
    estimate_model: BandwidthLatencyModel
    regression_model: LinearLatencyModel
    small_message_model: AnchoredSmallMessageModel
    distortion: WindowDistortionModel
    measured: bool = False
    tcp_model: TcpSegmentModel | None = None
    _composite: CompositeLatencyModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        composite = CompositeLatencyModel(
            small=self.small_message_model,
            large=self.regression_model,
        )
        object.__setattr__(self, "_composite", composite)

    # -- the three views -------------------------------------------------

    def estimated_transfer_seconds(self, nbytes: float) -> float:
        """Model-side transfer time (payload / effective bandwidth)."""
        return self.estimate_model.one_way_seconds(nbytes)

    def actual_one_way_seconds(
        self, nbytes: float, include_distortion: bool = True
    ) -> float:
        """Behaviour-side one-way latency a simulated link exhibits.

        ``include_distortion=False`` gives the best-case latency with the
        transient TCP window effects absent -- what a minimum-of-many
        ping-pong (the paper's large-payload procedure) converges to.
        """
        base = self._composite.one_way_seconds(nbytes)
        if not include_distortion:
            return base
        return base + self.distortion.extra_seconds(nbytes)

    def small_message_us(self, nbytes: float) -> float:
        """Small-message latency (us), the left plots of Figs. 3-4."""
        return self.small_message_model.one_way_us(nbytes)

    def behaviour_model(self) -> LatencyModel:
        """The composite model without the distortion term."""
        return self._composite


#: Plausible base latencies (us) for the five networks the paper only
#: models by bandwidth.  Not paper data: used only to give the simulated
#: links sane small-message behaviour (the headline tables never consult
#: them because the estimation model is bandwidth-only).
_SYNTHETIC_BASE_LATENCY_US = {
    "10GE": 10.0,
    "10GI": 5.0,
    "Myr": 3.0,
    "F-HT": 1.0,
    "A-HT": 0.5,
}

#: The mechanistic TCP model matching the GigaE link of Section IV.A:
#: 1 Gbps wire, standard 1448-byte MSS, Nagle disabled like the paper.
GIGAE_TCP_MODEL = TcpSegmentModel(
    wire_bw_bytes_per_s=125e6,
    rtt_seconds=50e-6,
    mss_bytes=1448,
    initial_window_segments=2,
    max_window_segments=44,
    nagle=False,
)


def _synthetic_anchors(name: str, bw_mibps: float) -> dict[int, float]:
    base_us = _SYNTHETIC_BASE_LATENCY_US[name]
    per_byte_us = 1e6 / (bw_mibps * MIB)
    return {
        4: base_us,
        64: base_us + 64 * per_byte_us,
        21490: base_us + 21490 * per_byte_us,
    }


def _build_registry() -> dict[str, NetworkSpec]:
    registry: dict[str, NetworkSpec] = {}
    for name, paper in NETWORKS.items():
        if paper.regression_ms_per_mib is not None:
            slope, intercept = paper.regression_ms_per_mib
            regression = LinearLatencyModel(slope, intercept)
        else:
            regression = LinearLatencyModel(
                1000.0 / paper.effective_bw_mibps, 0.0
            )
        if name == "GigaE":
            anchors = SMALL_MESSAGE_ANCHORS_GIGAE
            distortion = gigae_distortion_from_table4()
            tcp = GIGAE_TCP_MODEL
        elif name == "40GI":
            anchors = SMALL_MESSAGE_ANCHORS_40GI
            distortion = WindowDistortionModel.none()
            tcp = None
        else:
            anchors = _synthetic_anchors(name, paper.effective_bw_mibps)
            distortion = WindowDistortionModel.none()
            tcp = None
        registry[name] = NetworkSpec(
            name=name,
            description=paper.description,
            effective_bw_mibps=paper.effective_bw_mibps,
            estimate_model=BandwidthLatencyModel(paper.effective_bw_mibps),
            regression_model=regression,
            small_message_model=AnchoredSmallMessageModel(anchors),
            distortion=distortion,
            measured=paper.measured,
            tcp_model=tcp,
        )
    return registry


_REGISTRY = _build_registry()


def get_network(name: str) -> NetworkSpec:
    """Look up a network by its paper name (``GigaE``, ``40GI``, ``10GE``,
    ``10GI``, ``Myr``, ``F-HT``, ``A-HT``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown network {name!r}; known networks: {known}"
        ) from None


def list_networks() -> tuple[NetworkSpec, ...]:
    """All seven networks, measured first, in paper order."""
    order = (*MEASURED_NETWORK_NAMES, *HPC_NETWORK_NAMES)
    return tuple(_REGISTRY[name] for name in order)


def measured_networks() -> tuple[NetworkSpec, ...]:
    """The two networks physically present in the paper's testbed."""
    return tuple(_REGISTRY[name] for name in MEASURED_NETWORK_NAMES)


def hpc_networks() -> tuple[NetworkSpec, ...]:
    """The five projected HPC networks of Section VI."""
    return tuple(_REGISTRY[name] for name in HPC_NETWORK_NAMES)
