"""Network substrate: interconnect models for the rCUDA study.

This package provides everything the paper needs from its networks:

* :mod:`repro.net.latency` -- one-way end-to-end latency models: the
  bandwidth law of Tables III/V, the linear regressions of Figs. 3-4, the
  anchored small-message curves behind Table II's constants, and the
  composite model gluing the regimes together.
* :mod:`repro.net.tcpmodel` -- TCP behaviour: a mechanistic segment/window
  model (slow start, delayed ACKs, Nagle's algorithm, which the paper
  disables) and the empirical GigaE window-distortion model that explains
  the FFT fixed-time variability in Table IV.
* :mod:`repro.net.spec` -- the runtime :class:`~repro.net.spec.NetworkSpec`
  registry assembling latency + behaviour models for the seven networks.
* :mod:`repro.net.simlink` -- virtual-clock links used by the simulated
  testbed and the timed transports.
* :mod:`repro.net.pingpong` -- the paper's ping-pong characterization test.
* :mod:`repro.net.regression` -- least-squares latency fits (slope,
  intercept, correlation coefficient), as in Section IV.A.
* :mod:`repro.net.bandwidth` -- effective-bandwidth derivations, including
  the HyperTransport link arithmetic of Section VI.A.
"""

from repro.net.bandwidth import (
    effective_bandwidth_mibps,
    hypertransport_effective_bw_mibps,
    hypertransport_raw_gbps,
)
from repro.net.latency import (
    AnchoredSmallMessageModel,
    BandwidthLatencyModel,
    CompositeLatencyModel,
    LatencyModel,
    LinearLatencyModel,
)
from repro.net.pingpong import PingPongResult, PingPongSample, run_pingpong
from repro.net.realping import EchoPeer, RealLink, characterize_transport
from repro.net.regression import LinearFit, fit_latency_regression
from repro.net.simlink import SimulatedLink
from repro.net.spec import (
    NetworkSpec,
    get_network,
    hpc_networks,
    list_networks,
    measured_networks,
)
from repro.net.tcpmodel import TcpSegmentModel, WindowDistortionModel

__all__ = [
    "AnchoredSmallMessageModel",
    "BandwidthLatencyModel",
    "CompositeLatencyModel",
    "EchoPeer",
    "RealLink",
    "characterize_transport",
    "LatencyModel",
    "LinearLatencyModel",
    "LinearFit",
    "NetworkSpec",
    "PingPongResult",
    "PingPongSample",
    "SimulatedLink",
    "TcpSegmentModel",
    "WindowDistortionModel",
    "effective_bandwidth_mibps",
    "fit_latency_regression",
    "get_network",
    "hpc_networks",
    "hypertransport_effective_bw_mibps",
    "hypertransport_raw_gbps",
    "list_networks",
    "measured_networks",
    "run_pingpong",
]
