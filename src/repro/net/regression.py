"""Least-squares latency regression, as in Section IV.A.

The paper fits the large-payload end-to-end latencies to a line in the
payload size and reports slope, intercept and a correlation coefficient of
1.0 for both measured networks.  :func:`fit_latency_regression` reproduces
that fit from (payload, time) samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.units import MIB


@dataclass(frozen=True)
class LinearFit:
    """Result of a linear latency fit: ``t_ms = slope * n_mib + intercept``."""

    slope_ms_per_mib: float
    intercept_ms: float
    corrcoef: float

    def predict_ms(self, payload_mib: float) -> float:
        """Predicted one-way latency (ms) for a payload in MiB."""
        return self.slope_ms_per_mib * payload_mib + self.intercept_ms

    def asymptotic_bandwidth_mibps(self) -> float:
        """Bandwidth implied by the slope."""
        return 1000.0 / self.slope_ms_per_mib


def fit_latency_regression(
    payload_bytes: Sequence[float], one_way_seconds: Sequence[float]
) -> LinearFit:
    """Fit ``time = slope * payload + intercept`` by least squares.

    Inputs are payloads in bytes and one-way times in seconds; the fit is
    reported in the paper's units (ms per MiB).  At least two distinct
    payload sizes are required.
    """
    if len(payload_bytes) != len(one_way_seconds):
        raise ModelError(
            "payloads and times must have the same length, got "
            f"{len(payload_bytes)} and {len(one_way_seconds)}"
        )
    if len(payload_bytes) < 2:
        raise ModelError("at least two samples are required for a fit")
    x = np.asarray(payload_bytes, dtype=np.float64) / MIB
    y = np.asarray(one_way_seconds, dtype=np.float64) * 1e3
    if np.ptp(x) == 0.0:
        raise ModelError("samples must span more than one payload size")
    slope, intercept = np.polyfit(x, y, deg=1)
    if np.ptp(y) == 0.0:
        corr = 0.0
    else:
        corr = float(np.corrcoef(x, y)[0, 1])
    return LinearFit(
        slope_ms_per_mib=float(slope),
        intercept_ms=float(intercept),
        corrcoef=corr,
    )
