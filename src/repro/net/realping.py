"""Ping-pong characterization over *real* transports.

:mod:`repro.net.pingpong` measures simulated links; this module points the
same procedure at actual hardware: an echo peer bounces length-prefixed
messages over any :class:`~repro.transport.base.Transport` (TCP across a
real network, loopback, in-process), and :class:`RealLink` adapts the
measured wall-clock round trips to the ``transfer()`` interface the
ping-pong harness consumes.  With two machines and
``python -m repro serve``-style plumbing this reproduces Section IV.A on
whatever network you actually own -- the measured regression and
effective bandwidth then feed :func:`repro.model.whatif.custom_network`
to model rCUDA on it.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigurationError, TransportClosedError, TransportError
from repro.protocol.wire import pack_u4
from repro.transport.base import Transport

#: Sentinel length telling the echo peer to stop.
_STOP = 0xFFFFFFFF

#: Payloads are streamed in bounded chunks so huge probes do not
#: materialize twice in memory on the echo side.
_CHUNK = 1 << 20


class EchoPeer:
    """Echoes length-prefixed messages until told to stop.

    Run it over the far end of a transport pair (a thread here; a process
    or a remote host in real deployments -- the wire format is just
    ``u4 length + payload`` both ways).
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.messages_echoed = 0
        self._thread: threading.Thread | None = None

    def run(self) -> None:
        try:
            while True:
                header = self.transport.recv_exact(4)
                length = int.from_bytes(header, "little")
                if length == _STOP:
                    break
                self.transport.send(header)
                remaining = length
                while remaining > 0:
                    chunk = self.transport.recv_exact(min(remaining, _CHUNK))
                    self.transport.send(chunk)
                    remaining -= len(chunk)
                self.messages_echoed += 1
        except (TransportClosedError, TransportError):
            pass  # peer went away: a normal way to end the measurement

    def start(self) -> "EchoPeer":
        self._thread = threading.Thread(
            target=self.run, name="echo-peer", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout: float = 5.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)


class RealLink:
    """Wall-clock one-way latency probe over a transport + echo peer.

    ``transfer(nbytes)`` performs one full ping-pong and returns half the
    measured round trip -- the paper's "round-trip time divided by two".
    Satisfies the interface :func:`repro.net.pingpong.run_pingpong`
    expects, so the whole characterization pipeline (mean-of-small,
    min-of-large, regression, effective bandwidth) runs unchanged on real
    hardware.
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.probes_sent = 0

    def transfer(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"cannot probe with {nbytes} bytes")
        if nbytes == _STOP:
            raise ConfigurationError("probe size collides with the stop code")
        payload = bytes(nbytes)
        t0 = time.perf_counter()
        self.transport.send(pack_u4(nbytes) + payload)
        self.transport.recv_exact(4)
        remaining = nbytes
        while remaining > 0:
            remaining -= len(
                self.transport.recv_exact(min(remaining, _CHUNK))
            )
        elapsed = time.perf_counter() - t0
        self.probes_sent += 1
        return elapsed / 2.0

    def close(self) -> None:
        """Tell the echo peer to stop, then drop the connection."""
        try:
            self.transport.send(pack_u4(_STOP))
        except (TransportClosedError, TransportError):
            pass
        self.transport.close()


def characterize_transport(
    client_transport: Transport,
    small_sizes=(4, 64, 1024, 8192),
    large_sizes=(1 << 20, 4 << 20, 8 << 20),
    small_replicates: int = 20,
    large_replicates: int = 5,
    network: str = "real",
):
    """Run the Section IV.A procedure over an already-connected transport
    whose far end is served by an :class:`EchoPeer`.

    Returns the usual :class:`~repro.net.pingpong.PingPongResult`; close
    the returned link yourself if you want the peer released eagerly.
    """
    from repro.net.pingpong import run_pingpong

    link = RealLink(client_transport)
    try:
        return run_pingpong(
            link,
            small_sizes=small_sizes,
            large_sizes=large_sizes,
            small_replicates=small_replicates,
            large_replicates=large_replicates,
            network=network,
        )
    finally:
        link.close()
