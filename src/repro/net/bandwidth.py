"""Effective-bandwidth arithmetic (Sections IV.A and VI.A).

The paper derives each network's effective one-way bandwidth either from
ping-pong measurements (GigaE, 40GI), from published user-level round-trip
numbers (10GE, 10GI, Myr -- Rashti & Afsahi), or from link arithmetic
(the HyperTransport networks).  The helpers here perform those derivations.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.paperdata.networks import (
    AHT_SPEEDUP_OVER_FHT,
    FHT_HEADER_BYTES,
    FHT_LINK_BITS,
    FHT_LINK_MHZ,
    FHT_PACKET_BYTES,
)
from repro.units import MIB


def effective_bandwidth_mibps(payload_bytes: float, one_way_seconds: float) -> float:
    """Effective one-way bandwidth (MiB/s) from a timed transfer.

    This is the ping-pong reduction of Section IV.A: "the bandwidth is
    extracted from the measured round-trip time divided by two" -- callers
    pass the already-halved one-way time.
    """
    if one_way_seconds <= 0:
        raise ConfigurationError(
            f"one-way time must be positive, got {one_way_seconds}"
        )
    if payload_bytes <= 0:
        raise ConfigurationError(
            f"payload must be positive, got {payload_bytes}"
        )
    return payload_bytes / one_way_seconds / MIB


def hypertransport_raw_gbps(
    link_bits: int = FHT_LINK_BITS, link_mhz: float = FHT_LINK_MHZ
) -> float:
    """Raw HyperTransport link rate: a 16-bit 400 MHz DDR link is 12.8 Gb/s."""
    return link_bits * link_mhz * 2 / 1000.0


def hypertransport_efficiency(
    packet_bytes: int = FHT_PACKET_BYTES, header_bytes: int = FHT_HEADER_BYTES
) -> float:
    """Payload efficiency at the maximum packet size (64 B with 8 B header).

    The paper quotes 88%; the exact ratio is 56/64 = 0.875.
    """
    if not 0 < header_bytes < packet_bytes:
        raise ConfigurationError("header must be smaller than the packet")
    return (packet_bytes - header_bytes) / packet_bytes


def hypertransport_effective_bw_mibps(asic: bool = False) -> float:
    """Effective F-HT / A-HT bandwidth from the link arithmetic.

    Note: the derivation gives ~1,335 MiB/s for the FPGA link; the paper
    rounds its intermediate steps and publishes 1,442 MB/s (and 2,884 for
    the ASIC, assumed 2x).  The estimation pipeline always uses the
    *published* figures from :mod:`repro.paperdata.networks`; this function
    documents where they come from.
    """
    raw_bytes_per_s = hypertransport_raw_gbps() * 1e9 / 8.0
    bw = raw_bytes_per_s * hypertransport_efficiency() / MIB
    if asic:
        bw *= AHT_SPEEDUP_OVER_FHT
    return bw
