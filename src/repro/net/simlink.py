"""A simulated point-to-point link driven by a clock.

:class:`SimulatedLink` turns a :class:`~repro.net.spec.NetworkSpec`'s
actual-behaviour latency into elapsed (virtual or wall) time, with optional
seeded jitter reproducing the measurement dispersion the paper reports
(e.g. a 22.7 us max standard deviation for small GigaE packets).  It is the
timing engine under both the timed transports and the simulated testbed.
"""

from __future__ import annotations

import numpy as np

from repro.clock import Clock, VirtualClock
from repro.errors import ConfigurationError
from repro.net.spec import NetworkSpec


#: How the link realizes the empirical TCP window distortion:
#: ``mean`` adds the expected distortion deterministically (what a 30-run
#: average of the case studies sees); ``stochastic`` makes the distortion
#: bursty -- with probability :data:`STALL_PROBABILITY` a transfer hits a
#: window stall costing ``mean / p`` (so the expectation stays ``mean``),
#: otherwise it is clean.  A minimum-of-many ping-pong therefore filters
#: the distortion out entirely, which is exactly how the paper's
#: large-payload fits recover the clean linear law f(n) = 8.9n - 0.3
#: while its 30-run case-study averages keep the overhead.  ``none``
#: gives the best case.
DISTORTION_MODES = ("mean", "stochastic", "none")

#: Probability that a stochastic-mode transfer hits a TCP window stall.
STALL_PROBABILITY = 0.4


class SimulatedLink:
    """One direction-agnostic link between two simulated nodes.

    ``jitter_fraction`` scales a zero-mean Gaussian perturbation applied to
    every transfer time (sigma = fraction * nominal); 0 (the default) keeps
    the link perfectly deterministic, which is what the headline table
    regenerations use.
    """

    def __init__(
        self,
        spec: NetworkSpec,
        clock: Clock | None = None,
        jitter_fraction: float = 0.0,
        seed: int = 0,
        distortion_mode: str = "mean",
    ) -> None:
        if jitter_fraction < 0:
            raise ConfigurationError(
                f"jitter fraction must be non-negative, got {jitter_fraction}"
            )
        if distortion_mode not in DISTORTION_MODES:
            raise ConfigurationError(
                f"distortion_mode must be one of {DISTORTION_MODES}, "
                f"got {distortion_mode!r}"
            )
        self.spec = spec
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.jitter_fraction = float(jitter_fraction)
        self.distortion_mode = distortion_mode
        self._rng = np.random.default_rng(seed)
        self.bytes_sent = 0
        self.messages_sent = 0

    def transfer_time_seconds(self, nbytes: int) -> float:
        """Nominal one-way delivery time for ``nbytes`` (mean distortion)."""
        return self.spec.actual_one_way_seconds(
            nbytes, include_distortion=self.distortion_mode != "none"
        )

    def _draw_time(self, nbytes: int) -> float:
        base = self.spec.actual_one_way_seconds(nbytes, include_distortion=False)
        if self.distortion_mode == "mean":
            base += self.spec.distortion.extra_seconds(nbytes)
        elif self.distortion_mode == "stochastic":
            mean_extra = self.spec.distortion.extra_seconds(nbytes)
            if mean_extra > 0.0 and self._rng.random() < STALL_PROBABILITY:
                base += mean_extra / STALL_PROBABILITY
        return base

    def transfer(self, nbytes: int) -> float:
        """Deliver ``nbytes`` one way: advances the clock, returns the time
        spent (seconds)."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot transfer {nbytes} bytes")
        nominal = self._draw_time(nbytes)
        elapsed = nominal
        if self.jitter_fraction > 0.0 and nominal > 0.0:
            sigma = self.jitter_fraction * nominal
            elapsed = max(0.0, nominal + float(self._rng.normal(0.0, sigma)))
        self.clock.advance(elapsed)
        self.bytes_sent += nbytes
        self.messages_sent += 1
        return elapsed

    def stream_transfer(self, nbytes: int, messages: int = 1) -> float:
        """Network time for one pipelined stream of ``messages``
        back-to-back frames totalling ``nbytes``.

        Unlike per-frame :meth:`transfer` calls, a stream is one flow: the
        per-message latency term is paid once (the frames ride the same
        established connection with the pipe kept full), while the
        bandwidth term covers the whole payload.  TCP window distortion is
        evaluated at the per-frame size -- chunked frames below the
        distortion knee cross cleanly, which is part of why streaming
        beats a monolithic send on distorted links.  Does **not** advance
        the clock (callers overlap this time against a device stage);
        counts traffic and returns the seconds.
        """
        if nbytes < 0:
            raise ConfigurationError(f"cannot transfer {nbytes} bytes")
        if messages < 1:
            raise ConfigurationError(f"a stream needs >= 1 message, got {messages}")
        nominal = self.spec.actual_one_way_seconds(nbytes, include_distortion=False)
        frame_bytes = nbytes / messages
        if self.distortion_mode == "mean":
            nominal += messages * self.spec.distortion.extra_seconds(frame_bytes)
        elif self.distortion_mode == "stochastic":
            mean_extra = self.spec.distortion.extra_seconds(frame_bytes)
            if mean_extra > 0.0:
                stalls = int(self._rng.binomial(messages, STALL_PROBABILITY))
                nominal += stalls * (mean_extra / STALL_PROBABILITY)
        elapsed = nominal
        if self.jitter_fraction > 0.0 and nominal > 0.0:
            sigma = self.jitter_fraction * nominal
            elapsed = max(0.0, nominal + float(self._rng.normal(0.0, sigma)))
        self.bytes_sent += nbytes
        self.messages_sent += messages
        return elapsed

    def round_trip(self, nbytes_out: int, nbytes_back: int) -> float:
        """A request/response exchange; returns total elapsed seconds."""
        return self.transfer(nbytes_out) + self.transfer(nbytes_back)

    def reset_counters(self) -> None:
        """Zero the traffic accounting."""
        self.bytes_sent = 0
        self.messages_sent = 0

    def __repr__(self) -> str:
        return (
            f"SimulatedLink({self.spec.name}, jitter={self.jitter_fraction}, "
            f"sent={self.bytes_sent}B/{self.messages_sent}msg)"
        )
