"""The ping-pong characterization test of Section IV.A.

The paper measures each network with "a customized ping-pong test via
standard TCP sockets": a payload is bounced between the two nodes, the
round-trip time is halved into a one-way latency, small-packet runs are
averaged over 250 executions and large-payload runs take the minimum of
100.  :func:`run_pingpong` reproduces that procedure over a
:class:`~repro.net.simlink.SimulatedLink` (or anything exposing
``transfer(nbytes) -> seconds``), and feeds Figures 3-4 and the effective
bandwidth extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.regression import LinearFit, fit_latency_regression
from repro.units import MIB


class _Transferable(Protocol):
    def transfer(self, nbytes: int) -> float: ...


@dataclass(frozen=True)
class PingPongSample:
    """Statistics of the repeated exchanges at one payload size."""

    payload_bytes: int
    mean_one_way_seconds: float
    min_one_way_seconds: float
    std_one_way_seconds: float
    replicates: int

    @property
    def mean_one_way_us(self) -> float:
        return self.mean_one_way_seconds * 1e6

    @property
    def min_one_way_ms(self) -> float:
        return self.min_one_way_seconds * 1e3


@dataclass(frozen=True)
class PingPongResult:
    """A full sweep: samples plus the derived regression and bandwidth."""

    network: str
    samples: tuple[PingPongSample, ...]
    #: Linear fit over the large-payload samples (None with < 2 of them).
    large_fit: LinearFit | None
    #: Effective one-way bandwidth at the largest payload (MiB/s).
    effective_bw_mibps: float

    def sample_for(self, payload_bytes: int) -> PingPongSample:
        for sample in self.samples:
            if sample.payload_bytes == payload_bytes:
                return sample
        raise ConfigurationError(
            f"no ping-pong sample at {payload_bytes} bytes"
        )


#: Payload grids mirroring the paper's plots: small packets up to the MM
#: module size; large payloads 8-88 MiB.  Both published effective
#: bandwidths land exactly on an 88 MiB maximum payload (88 MiB / f(88) =
#: 112.4 MiB/s and 88 MiB / g(88) = 1366.5 ~ 1,367.1 MiB/s), which pins
#: down the sweep the paper used.
DEFAULT_SMALL_SIZES: tuple[int, ...] = (
    4, 8, 12, 16, 20, 32, 52, 58, 64, 128, 256, 512,
    1024, 2048, 4096, 7856, 8192, 16384, 21490,
)
DEFAULT_LARGE_SIZES: tuple[int, ...] = tuple(
    int(mib * MIB) for mib in (8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88)
)

#: Replication counts from the paper (250 averaged / 100 minimum).
SMALL_REPLICATES = 250
LARGE_REPLICATES = 100


def _measure(
    link: _Transferable, payload: int, replicates: int
) -> PingPongSample:
    times = np.empty(replicates, dtype=np.float64)
    for i in range(replicates):
        # One ping-pong: payload out, payload back; one-way = RTT / 2.
        rtt = link.transfer(payload) + link.transfer(payload)
        times[i] = rtt / 2.0
    return PingPongSample(
        payload_bytes=payload,
        mean_one_way_seconds=float(times.mean()),
        min_one_way_seconds=float(times.min()),
        std_one_way_seconds=float(times.std()),
        replicates=replicates,
    )


def run_pingpong(
    link: _Transferable,
    small_sizes: Sequence[int] = DEFAULT_SMALL_SIZES,
    large_sizes: Sequence[int] = DEFAULT_LARGE_SIZES,
    small_replicates: int = SMALL_REPLICATES,
    large_replicates: int = LARGE_REPLICATES,
    network: str = "?",
) -> PingPongResult:
    """Characterize a link the way Section IV.A characterizes a network.

    Small payloads are replicated ``small_replicates`` times and averaged;
    large payloads ``large_replicates`` times taking the minimum (matching
    the paper's treatment of network variability).  The linear regression
    is fitted over the large samples and the effective bandwidth is read at
    the largest payload.
    """
    if not large_sizes:
        raise ConfigurationError("at least one large payload size is required")
    samples: list[PingPongSample] = []
    for size in small_sizes:
        samples.append(_measure(link, size, small_replicates))
    large_samples: list[PingPongSample] = []
    for size in large_sizes:
        sample = _measure(link, size, large_replicates)
        samples.append(sample)
        large_samples.append(sample)

    fit: LinearFit | None = None
    if len(large_samples) >= 2:
        fit = fit_latency_regression(
            [s.payload_bytes for s in large_samples],
            [s.min_one_way_seconds for s in large_samples],
        )
    biggest = large_samples[-1]
    bw = biggest.payload_bytes / biggest.min_one_way_seconds / MIB
    return PingPongResult(
        network=network,
        samples=tuple(samples),
        large_fit=fit,
        effective_bw_mibps=bw,
    )


def one_way_series(
    samples: Iterable[PingPongSample], use_min: bool = False
) -> tuple[list[int], list[float]]:
    """Extract (payload bytes, one-way seconds) series for plotting."""
    sizes: list[int] = []
    times: list[float] = []
    for s in samples:
        sizes.append(s.payload_bytes)
        times.append(s.min_one_way_seconds if use_min else s.mean_one_way_seconds)
    return sizes, times
