"""The simulated GPU: memory + kernels + timing behind one device object.

:class:`SimulatedGpu` ties the allocator, the kernel registry, the timing
model and a clock together.  CUDA semantics it preserves:

* kernel launches are asynchronous -- they enqueue work on a stream and
  return immediately; the clock only advances when something synchronizes
  (``cudaMemcpy`` is synchronous and drains the device first, as in CUDA);
* each client session runs in its own :class:`CudaContext`, and
  destroying the context frees its allocations (rCUDA's finalization);
* all failures surface as :class:`~repro.simcuda.errors.CudaRuntimeError`
  carrying the ``cudaError_t`` the real runtime would return -- the server
  ships that code back in the 4-byte error field of Table I.

The device is *functional* by default (kernels execute, buffers are
real).  ``functional=False`` keeps the full control path -- allocation
arithmetic, error behaviour, timing -- with no backing storage, for
paper-scale virtual-clock runs.
"""

from __future__ import annotations

import numpy as np

from repro.clock import Clock, VirtualClock
from repro.errors import DeviceError, DeviceMemoryError, KernelError
from repro.simcuda.context import CudaContext
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.kernels import KernelRegistry, default_registry
from repro.simcuda.memory import DeviceMemory
from repro.simcuda.properties import TESLA_C1060, DeviceProperties
from repro.simcuda.timing import DeviceTimingModel
from repro.simcuda.types import Dim3, DevicePtr, MemcpyKind
from repro.units import MIB

#: Device memory the real CUDA runtime reserves for itself; allocations
#: come out of what remains (also keeps every device pointer < 2**32,
#: matching the 4-byte pointer fields of Table I).
RUNTIME_RESERVED_BYTES = 16 * MIB


class SimulatedGpu:
    """One software CUDA device."""

    def __init__(
        self,
        properties: DeviceProperties = TESLA_C1060,
        timing: DeviceTimingModel | None = None,
        registry: KernelRegistry | None = None,
        clock: Clock | None = None,
        functional: bool = True,
        memory_policy: str = "first-fit",
    ) -> None:
        self.properties = properties
        self.timing = timing if timing is not None else DeviceTimingModel()
        self.registry = registry if registry is not None else default_registry()
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.functional = functional
        capacity = max(properties.total_global_mem - RUNTIME_RESERVED_BYTES, MIB)
        self.memory = DeviceMemory(
            capacity=capacity, functional=functional, policy=memory_policy
        )
        self._contexts: dict[int, CudaContext] = {}
        self.kernel_launches = 0
        self.memcpy_count = 0

    # -- context lifecycle ----------------------------------------------------

    def create_context(self, pay_init_cost: bool = False) -> CudaContext:
        """Create a session context.

        ``pay_init_cost=True`` charges the CUDA initialization delay --
        what a *local* application pays on first use and what the rCUDA
        daemon avoids by pre-initializing its context before clients
        arrive (the paper's explanation for the remote 40GI run beating
        the local GPU at m = 4096).
        """
        if pay_init_cost:
            self.clock.advance(self.timing.cuda_init_seconds)
        ctx = CudaContext()
        self._contexts[ctx.context_id] = ctx
        return ctx

    def destroy_context(self, ctx: CudaContext) -> None:
        """Release every resource the session holds (finalization stage)."""
        if ctx.context_id not in self._contexts:
            raise DeviceError(f"context {ctx.context_id} is not on this device")
        for ptr in list(ctx.allocations):
            self.memory.free(ptr)
            ctx.untrack_allocation(ptr)
        ctx.destroyed = True
        del self._contexts[ctx.context_id]

    @property
    def active_contexts(self) -> int:
        return len(self._contexts)

    # -- memory ---------------------------------------------------------------

    def malloc(self, ctx: CudaContext, size: int) -> DevicePtr:
        try:
            ptr = self.memory.malloc(size)
        except DeviceMemoryError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorMemoryAllocation, f"cudaMalloc({size})"
            ) from exc
        ctx.track_allocation(ptr)
        return ptr

    def free(self, ctx: CudaContext, ptr: DevicePtr) -> None:
        if not ctx.owns(ptr):
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer, f"cudaFree(0x{ptr:x})"
            )
        self.memory.free(ptr)
        ctx.untrack_allocation(ptr)

    def _sync_all_streams(self, ctx: CudaContext) -> None:
        # Synchronous operations drain outstanding device work first.  A
        # plain loop: contexts almost always hold just the default
        # stream, where a generator-driven max() costs several times the
        # comparison it wraps.
        horizon = 0.0
        for s in ctx.streams.values():
            if s.busy_until > horizon:
                horizon = s.busy_until
        now = self.clock.now()
        if horizon > now:
            self.clock.advance(horizon - now)

    def memcpy(
        self,
        ctx: CudaContext,
        dst: DevicePtr,
        src: DevicePtr,
        nbytes: int,
        kind: MemcpyKind,
        host_data: bytes | np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Synchronous ``cudaMemcpy``.

        For host-to-device, ``host_data`` carries the payload (may be None
        on a non-functional device); for device-to-host the copied bytes
        are returned.  ``dst``/``src`` are device addresses for the device
        sides and ignored for the host sides.
        """
        if nbytes < 0:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, "cudaMemcpy")
        kind = MemcpyKind(kind)
        self._sync_all_streams(ctx)
        self.memcpy_count += 1
        try:
            if kind is MemcpyKind.cudaMemcpyHostToDevice:
                self._validate_range(ctx, dst, nbytes)
                self.clock.advance(self.timing.pcie.transfer_seconds(nbytes))
                if self.functional:
                    if host_data is None:
                        raise CudaRuntimeError(
                            CudaError.cudaErrorInvalidValue,
                            "cudaMemcpy(H2D) without host data",
                        )
                    self.memory.write(dst, self._as_bytes(host_data, nbytes))
                return None
            if kind is MemcpyKind.cudaMemcpyDeviceToHost:
                self._validate_range(ctx, src, nbytes)
                self.clock.advance(self.timing.pcie.transfer_seconds(nbytes))
                return self.memory.read(src, nbytes)
            if kind is MemcpyKind.cudaMemcpyDeviceToDevice:
                self._validate_range(ctx, src, nbytes)
                self._validate_range(ctx, dst, nbytes)
                # On-device copies run at memory bandwidth, not PCIe.
                self.clock.advance(self.timing.membound_seconds(2 * nbytes))
                if self.functional:
                    self.memory.write(dst, self.memory.read(src, nbytes))
                return None
        except DeviceMemoryError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer, "cudaMemcpy"
            ) from exc
        raise CudaRuntimeError(
            CudaError.cudaErrorInvalidMemcpyDirection, f"cudaMemcpy kind={kind}"
        )

    def memcpy_view(
        self, ctx: CudaContext, src: DevicePtr, nbytes: int
    ) -> np.ndarray:
        """A synchronous D2H read returning a zero-copy uint8 view.

        Same semantics as ``memcpy(kind=D2H)`` -- stream drain, range
        validation, per-transfer PCIe charge -- but the bytes come back as
        a live view of device memory (valid until the next write to the
        range), so a streaming server can put them on the wire without
        materializing a copy.  Requires a functional device.
        """
        if nbytes < 0:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, "cudaMemcpy")
        self._sync_all_streams(ctx)
        self.memcpy_count += 1
        try:
            self._validate_range(ctx, src, nbytes)
            self.clock.advance(self.timing.pcie.transfer_seconds(nbytes))
            return self.memory.read(src, nbytes, copy=False)
        except DeviceMemoryError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer, "cudaMemcpy"
            ) from exc

    def memset(
        self, ctx: CudaContext, ptr: DevicePtr, value: int, nbytes: int
    ) -> None:
        """Synchronous ``cudaMemset``: fill device memory with a byte.

        Runs at device memory bandwidth (it is a device-side operation,
        not a PCIe transfer).
        """
        if nbytes < 0 or not 0 <= value <= 0xFF:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, "cudaMemset")
        self._sync_all_streams(ctx)
        # Validate and resolve the destination in one allocation lookup
        # (the old validate-then-view shape paid the bisect twice).
        dest = None
        if nbytes:
            try:
                block, offset = self.memory._locate(ptr, nbytes)
            except DeviceMemoryError as exc:
                raise CudaRuntimeError(
                    CudaError.cudaErrorInvalidDevicePointer,
                    f"device range [0x{ptr:x}, +{nbytes})",
                ) from exc
            if block.ptr not in ctx.allocations:
                raise CudaRuntimeError(
                    CudaError.cudaErrorInvalidDevicePointer,
                    f"device range [0x{ptr:x}, +{nbytes})",
                )
            if self.functional:
                dest = block.data[offset : offset + nbytes]
        self.clock.advance(self.timing.membound_seconds(nbytes))
        if dest is not None:
            dest[:] = value

    def memcpy_async(
        self,
        ctx: CudaContext,
        dst: DevicePtr,
        src: DevicePtr,
        nbytes: int,
        kind: MemcpyKind,
        stream_handle: int = 0,
        host_data: bytes | np.ndarray | None = None,
    ) -> np.ndarray | None:
        """``cudaMemcpyAsync``: enqueue the PCIe transfer on a stream and
        return immediately (the host clock does not advance).

        The paper's estimation model covers synchronous transfers only
        ("leaving asynchronous transfers for future work"); this is that
        future work's device-side half.  Functionally the bytes move right
        away -- what is deferred is *time*: the transfer occupies the
        stream, so a later synchronize/synchronous operation pays for it.
        """
        if nbytes < 0:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue, "cudaMemcpyAsync"
            )
        kind = MemcpyKind(kind)
        stream = ctx.get_stream(stream_handle)
        duration = self.timing.pcie.transfer_seconds(nbytes)
        self.memcpy_count += 1
        try:
            if kind is MemcpyKind.cudaMemcpyHostToDevice:
                self._validate_range(ctx, dst, nbytes)
                stream.enqueue(self.clock.now(), duration)
                if self.functional:
                    if host_data is None:
                        raise CudaRuntimeError(
                            CudaError.cudaErrorInvalidValue,
                            "cudaMemcpyAsync(H2D) without host data",
                        )
                    self.memory.write(dst, self._as_bytes(host_data, nbytes))
                return None
            if kind is MemcpyKind.cudaMemcpyDeviceToHost:
                self._validate_range(ctx, src, nbytes)
                stream.enqueue(self.clock.now(), duration)
                return self.memory.read(src, nbytes)
            if kind is MemcpyKind.cudaMemcpyDeviceToDevice:
                self._validate_range(ctx, src, nbytes)
                self._validate_range(ctx, dst, nbytes)
                stream.enqueue(
                    self.clock.now(), self.timing.membound_seconds(2 * nbytes)
                )
                if self.functional:
                    self.memory.write(dst, self.memory.read(src, nbytes))
                return None
        except DeviceMemoryError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer, "cudaMemcpyAsync"
            ) from exc
        raise CudaRuntimeError(
            CudaError.cudaErrorInvalidMemcpyDirection,
            f"cudaMemcpyAsync kind={kind}",
        )

    def _validate_range(self, ctx: CudaContext, addr: DevicePtr, nbytes: int) -> None:
        """Range must lie inside one live allocation *owned by this
        context*: on a pooled device other tenants' buffers are live too,
        and a forged pointer into one must fail exactly like a wild
        pointer -- ``cudaErrorInvalidDevicePointer``."""
        if nbytes == 0:
            return
        try:
            base = self.memory.owning_base(addr, nbytes)
        except DeviceMemoryError:
            base = None
        if base is None or base not in ctx.allocations:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer,
                f"device range [0x{addr:x}, +{nbytes})",
            )

    @staticmethod
    def _as_bytes(data: bytes | np.ndarray, nbytes: int) -> np.ndarray:
        if isinstance(data, np.ndarray):
            flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        else:
            flat = np.frombuffer(data, dtype=np.uint8)
        if flat.nbytes < nbytes:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue,
                f"host buffer ({flat.nbytes} B) smaller than copy ({nbytes} B)",
            )
        return flat[:nbytes]

    # -- kernels ----------------------------------------------------------------

    def launch(
        self,
        ctx: CudaContext,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args: tuple,
        stream_handle: int = 0,
        shared_bytes: int = 0,
    ) -> None:
        """Asynchronous kernel launch: enqueue and return."""
        if block.count > self.properties.max_threads_per_block:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue,
                f"block of {block.count} threads exceeds the device limit "
                f"of {self.properties.max_threads_per_block}",
            )
        if ctx.modules and not ctx.kernel_visible(kernel_name):
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure,
                f"kernel {kernel_name!r} is not exported by any loaded module",
            )
        try:
            kernel = self.registry.get(kernel_name)
        except KernelError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure, str(exc)
            ) from exc
        stream = ctx.get_stream(stream_handle)
        # Malformed argument tuples must surface as launch failures, not
        # crash the server: a remote client controls these bytes.
        try:
            duration = kernel.cost_seconds(self.timing, grid, block, args)
        except (KernelError, IndexError, TypeError, ValueError) as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure, f"{kernel_name}: {exc}"
            ) from exc
        stream.enqueue(self.clock.now(), duration)
        self.kernel_launches += 1
        if self.functional:
            try:
                kernel.execute(self.memory, grid, block, args)
            except (
                DeviceMemoryError, KernelError, IndexError, TypeError, ValueError,
            ) as exc:
                raise CudaRuntimeError(
                    CudaError.cudaErrorLaunchFailure, f"{kernel_name}: {exc}"
                ) from exc

    def synchronize(self, ctx: CudaContext) -> None:
        """``cudaThreadSynchronize``: wait for all streams to drain."""
        self._sync_all_streams(ctx)

    def __repr__(self) -> str:
        return (
            f"SimulatedGpu({self.properties.name}, functional="
            f"{self.functional}, contexts={self.active_contexts})"
        )
