"""simcuda: a software CUDA device and runtime for the rCUDA study.

The paper's testbed GPU is an NVIDIA Tesla C1060 driven through the CUDA
2.3 Runtime API.  This package substitutes a *software* device that
preserves everything the middleware and the performance model care about:

* the Runtime API surface (:mod:`repro.simcuda.runtime`): ``cudaMalloc``,
  ``cudaFree``, ``cudaMemcpy``, ``cudaLaunch``, module loading, device
  properties, streams and events, with CUDA-style status codes
  (:mod:`repro.simcuda.errors`);
* a real device-memory allocator (:mod:`repro.simcuda.memory`) with
  pointer arithmetic, alignment and out-of-memory behaviour;
* executable kernels (:mod:`repro.simcuda.kernels`): a Volkov-style SGEMM
  and a batched 512-point radix-2 FFT (the paper's two case studies), plus
  elementwise and reduction kernels, all computing real results via numpy
  so end-to-end correctness is testable;
* a timing model (:mod:`repro.simcuda.timing`) for kernel execution, PCIe
  transfers (5,743 MB/s effective, as measured in the paper) and the CUDA
  context initialization the rCUDA daemon hides by pre-initializing.

A device can run *functional* (buffers are real, kernels execute) or
*metadata-only* (for paper-scale timed simulations where a 1.3 GiB matrix
transfer should not allocate 1.3 GiB of host RAM).
"""

from repro.simcuda.context import CudaContext
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.errors import CudaError, CudaRuntimeError, check
from repro.simcuda.kernels import KernelRegistry, default_registry
from repro.simcuda.memory import DeviceMemory, MemoryBlock
from repro.simcuda.module import GpuModule, fabricate_module
from repro.simcuda.properties import TESLA_C1060, DeviceProperties
from repro.simcuda.runtime import CudaRuntime
from repro.simcuda.stream import CudaStream
from repro.simcuda.event import CudaEvent
from repro.simcuda.timing import DeviceTimingModel, PcieModel
from repro.simcuda.types import Dim3, MemcpyKind

__all__ = [
    "CudaContext",
    "CudaError",
    "CudaEvent",
    "CudaRuntime",
    "CudaRuntimeError",
    "CudaStream",
    "DeviceMemory",
    "DeviceProperties",
    "DeviceTimingModel",
    "Dim3",
    "GpuModule",
    "KernelRegistry",
    "MemcpyKind",
    "MemoryBlock",
    "PcieModel",
    "SimulatedGpu",
    "TESLA_C1060",
    "check",
    "default_registry",
    "fabricate_module",
]
