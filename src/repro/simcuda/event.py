"""CUDA events: timestamps on streams, for elapsed-time measurement."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import DeviceError

_handles = itertools.count(1)


@dataclass
class CudaEvent:
    """A recordable timestamp (``cudaEventRecord`` / ``ElapsedTime``)."""

    handle: int = field(default_factory=lambda: next(_handles))
    #: Simulated timestamp of the last record; None before any record.
    recorded_at: float | None = None

    def record(self, timestamp: float) -> None:
        self.recorded_at = timestamp

    def elapsed_since(self, earlier: "CudaEvent") -> float:
        """Seconds between two recorded events (``cudaEventElapsedTime``
        returns milliseconds; we keep seconds like the rest of the
        package)."""
        if self.recorded_at is None or earlier.recorded_at is None:
            raise DeviceError(
                "both events must be recorded before measuring elapsed time"
            )
        return self.recorded_at - earlier.recorded_at
