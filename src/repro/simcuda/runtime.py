"""The CUDA Runtime API facade.

:class:`CudaRuntime` is the call surface both sides of the study share:

* a *local* application uses it directly (the paper's "local GPU" column),
  paying the CUDA context initialization on first use;
* the rCUDA **server** drives one instance per client session, with the
  context pre-initialized at daemon startup -- the asymmetry the paper
  points out when the remote 40GI run beats the local GPU at m = 4096.

Like the real API, calls return ``cudaError_t`` status codes (paired with
a value where the C API uses an out-parameter) instead of raising; the
middleware forwards the code to the client verbatim as Table I's 4-byte
"CUDA error" field.  ``check`` from :mod:`repro.simcuda.errors` converts a
code to an exception for callers who prefer that style.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.module import GpuModule
from repro.simcuda.properties import DeviceProperties
from repro.simcuda.types import Dim3, DevicePtr, MemcpyKind


class CudaRuntime:
    """One application's (or one rCUDA session's) view of the device."""

    def __init__(self, device: SimulatedGpu, preinitialized: bool = False) -> None:
        """``preinitialized=True`` models the rCUDA daemon's warm context:
        no CUDA initialization delay is charged (the local path charges it
        lazily on the first API call, like the real runtime)."""
        self.device = device
        self._preinitialized = preinitialized
        self._ctx = None
        self._launch_config: tuple[Dim3, Dim3, int, int] | None = None
        self._staged_args: list = []
        self.last_error = CudaError.cudaSuccess

    # -- context ----------------------------------------------------------

    @property
    def context(self):
        if self._ctx is None:
            self._ctx = self.device.create_context(
                pay_init_cost=not self._preinitialized
            )
        return self._ctx

    def close(self) -> None:
        """Tear down the context, releasing all session resources."""
        if self._ctx is not None and not self._ctx.destroyed:
            self.device.destroy_context(self._ctx)
        self._ctx = None

    def __enter__(self) -> "CudaRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _wrap(self, fn, *args, **kwargs):
        try:
            value = fn(*args, **kwargs)
        except CudaRuntimeError as exc:
            self.last_error = exc.status
            return exc.status, None
        except DeviceError:
            self.last_error = CudaError.cudaErrorInvalidValue
            return CudaError.cudaErrorInvalidValue, None
        self.last_error = CudaError.cudaSuccess
        return CudaError.cudaSuccess, value

    # -- device queries ------------------------------------------------------

    def cudaGetDeviceProperties(self) -> tuple[CudaError, DeviceProperties]:
        return CudaError.cudaSuccess, self.device.properties

    def cudaGetLastError(self) -> CudaError:
        err, self.last_error = self.last_error, CudaError.cudaSuccess
        return err

    # -- memory ------------------------------------------------------------

    def cudaMalloc(self, size: int) -> tuple[CudaError, DevicePtr | None]:
        return self._wrap(self.device.malloc, self.context, size)

    def cudaFree(self, ptr: DevicePtr) -> CudaError:
        status, _ = self._wrap(self.device.free, self.context, ptr)
        return status

    def cudaMemcpy(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        return self._wrap(
            self.device.memcpy, self.context, dst, src, count, kind, host_data
        )

    def memcpy_view(
        self, src: DevicePtr, count: int
    ) -> tuple[CudaError, np.ndarray | None]:
        """Zero-copy D2H read (server-side streaming): same validation,
        synchronization and PCIe timing as ``cudaMemcpy(D2H)``, but the
        result is a live view of device memory rather than a copy."""
        return self._wrap(self.device.memcpy_view, self.context, src, count)

    def cudaMemset(self, ptr: DevicePtr, value: int, count: int) -> CudaError:
        # Open-coded _wrap: memset is the hot small-message call and the
        # wrapper's extra frame plus (status, value) unpacking is
        # measurable at event-loop message rates.
        try:
            self.device.memset(self.context, ptr, value, count)
        except CudaRuntimeError as exc:
            self.last_error = exc.status
            return exc.status
        except DeviceError:
            self.last_error = CudaError.cudaErrorInvalidValue
            return CudaError.cudaErrorInvalidValue
        self.last_error = CudaError.cudaSuccess
        return CudaError.cudaSuccess

    def cudaMemcpyAsync(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        stream: int = 0,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        """Asynchronous copy on a stream (the paper's future work)."""
        return self._wrap(
            self.device.memcpy_async,
            self.context,
            dst,
            src,
            count,
            kind,
            stream,
            host_data,
        )

    # -- module loading (rCUDA initialization stage) -----------------------------

    def load_module(self, module: GpuModule) -> CudaError:
        status, _ = self._wrap(self.context.load_module, module)
        return status

    # -- kernel launch (CUDA 2.3 staged style) ------------------------------------

    def cudaConfigureCall(
        self,
        grid: Dim3,
        block: Dim3,
        shared_bytes: int = 0,
        stream: int = 0,
    ) -> CudaError:
        self._launch_config = (grid, block, shared_bytes, stream)
        self._staged_args = []
        return CudaError.cudaSuccess

    def cudaSetupArgument(self, value) -> CudaError:
        """Stage one kernel argument (offset bookkeeping elided: arguments
        are consumed positionally, which is what the kernels expect)."""
        if self._launch_config is None:
            return CudaError.cudaErrorMissingConfiguration
        self._staged_args.append(value)
        return CudaError.cudaSuccess

    def cudaLaunch(self, kernel_name: str) -> CudaError:
        if self._launch_config is None:
            self.last_error = CudaError.cudaErrorMissingConfiguration
            return CudaError.cudaErrorMissingConfiguration
        grid, block, shared, stream = self._launch_config
        self._launch_config = None
        args = tuple(self._staged_args)
        self._staged_args = []
        status, _ = self._wrap(
            self.device.launch,
            self.context,
            kernel_name,
            grid,
            block,
            args,
            stream,
            shared,
        )
        return status

    def launch_kernel(
        self,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args: tuple,
        stream: int = 0,
        shared_bytes: int = 0,
    ) -> CudaError:
        """Convenience: configure + setup + launch in one call."""
        self.cudaConfigureCall(grid, block, shared_bytes, stream)
        for arg in args:
            self.cudaSetupArgument(arg)
        return self.cudaLaunch(kernel_name)

    # -- synchronization / streams / events ------------------------------------

    def cudaThreadSynchronize(self) -> CudaError:
        status, _ = self._wrap(self.device.synchronize, self.context)
        return status

    def cudaStreamCreate(self) -> tuple[CudaError, int | None]:
        status, stream = self._wrap(self.context.create_stream)
        return status, stream.handle if stream is not None else None

    def cudaStreamSynchronize(self, handle: int) -> CudaError:
        def _sync():
            stream = self.context.get_stream(handle)
            wait = stream.synchronize_time(self.device.clock.now())
            self.device.clock.advance(wait)

        status, _ = self._wrap(_sync)
        return status

    def cudaEventCreate(self) -> tuple[CudaError, int | None]:
        status, event = self._wrap(self.context.create_event)
        return status, event.handle if event is not None else None

    def cudaEventRecord(self, handle: int) -> CudaError:
        def _record():
            self.context.get_event(handle).record(self.device.clock.now())

        status, _ = self._wrap(_record)
        return status

    def cudaEventElapsedTime(
        self, start_handle: int, end_handle: int
    ) -> tuple[CudaError, float | None]:
        """Elapsed milliseconds between two recorded events (CUDA returns
        ms; this one API mirrors that to stay familiar)."""

        def _elapsed():
            start = self.context.get_event(start_handle)
            end = self.context.get_event(end_handle)
            return end.elapsed_since(start) * 1e3

        return self._wrap(_elapsed)
