"""Device-side cost models for the virtual-clock simulation.

The timing model answers "how long would the Tesla C1060 take" for kernel
executions and PCIe transfers.  Defaults are literature values for the
paper's hardware; the calibrated testbed
(:mod:`repro.model.calibration`) refines the rates so the regenerated
"measured" columns land on the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.paperdata.constants import PCIE_EFFECTIVE_MIBPS
from repro.units import MIB


@dataclass(frozen=True)
class PcieModel:
    """Host <-> device transfers across the PCIe 2.0 x16 link.

    The paper measured 5,743 MB/s effective (the theoretical link peak is
    8 GB/s); each ``cudaMemcpy`` additionally pays a fixed submission
    overhead.
    """

    bandwidth_mibps: float = PCIE_EFFECTIVE_MIBPS
    per_transfer_overhead_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth_mibps <= 0:
            raise ConfigurationError("PCIe bandwidth must be positive")
        if self.per_transfer_overhead_s < 0:
            raise ConfigurationError("PCIe overhead must be non-negative")

    def transfer_seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"cannot transfer {nbytes} bytes")
        return self.per_transfer_overhead_s + nbytes / (
            self.bandwidth_mibps * MIB
        )


@dataclass(frozen=True)
class DeviceTimingModel:
    """Sustained rates of the simulated GPU.

    * ``gemm_gflops`` -- sustained SGEMM rate (Volkov reaches roughly 60%
      of the GT200's 624 GFLOP/s MAD peak);
    * ``fft_gflops`` -- sustained batched-FFT rate (5 N log2 N flop
      convention);
    * ``membw_gbps`` -- sustained global-memory bandwidth for the
      memory-bound elementwise/reduction kernels;
    * ``kernel_launch_overhead_s`` -- fixed per-launch cost;
    * ``cuda_init_seconds`` -- CUDA context creation.  The rCUDA daemon
      pre-initializes the context, which is why the paper's remote 40GI
      run beats the local GPU at m = 4096; the local runtime pays this,
      the remote server does not.
    """

    gemm_gflops: float = 375.0
    fft_gflops: float = 160.0
    membw_gbps: float = 80.0
    kernel_launch_overhead_s: float = 8e-6
    cuda_init_seconds: float = 0.45
    pcie: PcieModel = PcieModel()

    def __post_init__(self) -> None:
        for name in ("gemm_gflops", "fft_gflops", "membw_gbps"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.kernel_launch_overhead_s < 0 or self.cuda_init_seconds < 0:
            raise ConfigurationError("overheads must be non-negative")

    def gemm_seconds(self, flops: float) -> float:
        return self.kernel_launch_overhead_s + flops / (self.gemm_gflops * 1e9)

    def fft_seconds(self, flops: float) -> float:
        return self.kernel_launch_overhead_s + flops / (self.fft_gflops * 1e9)

    def membound_seconds(self, nbytes: float) -> float:
        return self.kernel_launch_overhead_s + nbytes / (self.membw_gbps * 1e9)

    def with_rates(self, **kwargs) -> "DeviceTimingModel":
        """A copy with some rates replaced (used by calibration)."""
        return replace(self, **kwargs)
