"""CUDA streams.

The paper's estimation model only covers synchronous transfers
("asynchronous transfers [are left] for future work"), but the Runtime API
surface includes streams -- the cudaLaunch message of Table I carries a
4-byte stream field -- so the simulated device implements the in-order
queue semantics: work items on one stream execute in submission order; the
device clock tracks a per-stream "busy until" horizon.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Stream handle 0 is the default (NULL) stream, as in CUDA.
DEFAULT_STREAM = 0

_handles = itertools.count(1)


@dataclass
class CudaStream:
    """One in-order execution queue on the device."""

    handle: int = field(default_factory=lambda: next(_handles))
    #: Simulated timestamp at which previously queued work completes.
    busy_until: float = 0.0
    submitted: int = 0

    def enqueue(self, now: float, duration: float) -> float:
        """Queue ``duration`` seconds of work at time ``now``; returns the
        completion timestamp (work starts after prior work finishes)."""
        start = max(now, self.busy_until)
        self.busy_until = start + duration
        self.submitted += 1
        return self.busy_until

    def is_idle(self, now: float) -> bool:
        return now >= self.busy_until

    def synchronize_time(self, now: float) -> float:
        """Seconds the host must wait at ``now`` for the stream to drain."""
        return max(0.0, self.busy_until - now)
