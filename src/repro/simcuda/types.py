"""Value types of the CUDA Runtime API surface."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class MemcpyKind(enum.IntEnum):
    """``cudaMemcpyKind``: the 4-byte "Kind" field of Table I's cudaMemcpy."""

    cudaMemcpyHostToHost = 0
    cudaMemcpyHostToDevice = 1
    cudaMemcpyDeviceToHost = 2
    cudaMemcpyDeviceToDevice = 3


@dataclass(frozen=True)
class Dim3:
    """CUDA's ``dim3``.

    Table I encodes a block dimension in 12 bytes (x, y, z as 32-bit
    integers) and a grid dimension in 8 (x, y only: 2.x-era grids were
    two-dimensional).
    """

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if self.x < 1 or self.y < 1 or self.z < 1:
            raise ConfigurationError(f"dim3 components must be >= 1: {self}")

    @property
    def count(self) -> int:
        """Total number of threads/blocks this dimension describes."""
        return self.x * self.y * self.z

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.x, self.y, self.z)


#: Device pointers are plain integers (byte addresses in the simulated
#: device address space); 0 is the null pointer.
DevicePtr = int
NULL_PTR: DevicePtr = 0
