"""Device properties (``cudaDeviceProp``) for the simulated GPU.

The rCUDA initialization handshake returns the device's compute capability
(the 8-byte "Compute capability" field of Table I), so the simulated device
needs real properties.  :data:`TESLA_C1060` matches the paper's GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GIB


@dataclass(frozen=True)
class DeviceProperties:
    """The subset of ``cudaDeviceProp`` the middleware and kernels use."""

    name: str
    compute_capability: tuple[int, int]
    total_global_mem: int
    multiprocessor_count: int
    cores_per_multiprocessor: int
    clock_mhz: float
    memory_bw_gbps: float
    max_threads_per_block: int = 512
    max_grid_dim: tuple[int, int] = (65535, 65535)
    warp_size: int = 32

    @property
    def core_count(self) -> int:
        return self.multiprocessor_count * self.cores_per_multiprocessor

    @property
    def peak_sp_gflops(self) -> float:
        """Single-precision peak: cores x clock x 3 flops (MAD + MUL) for
        the GT200 generation."""
        return self.core_count * self.clock_mhz / 1000.0 * 3.0


#: The paper's accelerator: NVIDIA Tesla C1060 (GT200, compute 1.3,
#: 30 SMs x 8 cores at 1.296 GHz, 4 GB GDDR3).
TESLA_C1060 = DeviceProperties(
    name="Tesla C1060",
    compute_capability=(1, 3),
    total_global_mem=4 * GIB,
    multiprocessor_count=30,
    cores_per_multiprocessor=8,
    clock_mhz=1296.0,
    memory_bw_gbps=102.0,
)

#: A deliberately tiny device for unit tests exercising out-of-memory and
#: fragmentation paths without allocating real gigabytes.
TINY_TEST_DEVICE = DeviceProperties(
    name="Tiny Test Device",
    compute_capability=(1, 3),
    total_global_mem=1 * 1024 * 1024,
    multiprocessor_count=1,
    cores_per_multiprocessor=8,
    clock_mhz=1000.0,
    memory_bw_gbps=10.0,
)
