"""Executable device kernels.

Each kernel is a numpy function operating directly on device memory views,
registered under the name that travels in the cudaLaunch message.  The two
case-study kernels carry the exact names implied by Table I's launch
payload sizes (``x + 44`` with x the NUL-terminated kernel name):

* ``sgemmNN`` (8 bytes with NUL) -- Volkov's single-precision matrix
  product, MM's 52-byte launch;
* ``FFT512_device`` (14 bytes with NUL) -- the batched 512-point FFT,
  FFT's 58-byte launch.

Every kernel pairs its functional implementation with a cost model used by
the virtual-clock device; see :mod:`repro.simcuda.timing`.
"""

from repro.simcuda.kernels.registry import KernelImpl, KernelRegistry, default_registry

__all__ = ["KernelImpl", "KernelRegistry", "default_registry"]
