"""Kernel registry: name -> (implementation, cost model).

The server resolves the kernel name from a cudaLaunch message against the
registry of the module(s) the client shipped at initialization.  A kernel
implementation receives the device memory, the launch geometry and the
unpacked argument tuple; its cost function receives the same arguments
plus the device timing model and returns the simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import KernelError
from repro.simcuda.types import Dim3

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.simcuda.memory import DeviceMemory
    from repro.simcuda.timing import DeviceTimingModel

KernelFn = Callable[["DeviceMemory", Dim3, Dim3, tuple], None]
CostFn = Callable[["DeviceTimingModel", Dim3, Dim3, tuple], float]


@dataclass(frozen=True)
class KernelImpl:
    """One registered kernel."""

    name: str
    fn: KernelFn
    cost: CostFn
    description: str = ""

    def execute(
        self, memory: "DeviceMemory", grid: Dim3, block: Dim3, args: tuple
    ) -> None:
        self.fn(memory, grid, block, args)

    def cost_seconds(
        self,
        timing: "DeviceTimingModel",
        grid: Dim3,
        block: Dim3,
        args: tuple,
    ) -> float:
        return self.cost(timing, grid, block, args)


class KernelRegistry:
    """A mutable name -> :class:`KernelImpl` map."""

    def __init__(self, kernels: Iterable[KernelImpl] = ()) -> None:
        self._kernels: dict[str, KernelImpl] = {}
        for kernel in kernels:
            self.register(kernel)

    def register(self, kernel: KernelImpl, replace: bool = False) -> None:
        if not replace and kernel.name in self._kernels:
            raise KernelError(f"kernel {kernel.name!r} is already registered")
        self._kernels[kernel.name] = kernel

    def get(self, name: str) -> KernelImpl:
        try:
            return self._kernels[name]
        except KeyError:
            known = ", ".join(sorted(self._kernels)) or "<none>"
            raise KernelError(
                f"unknown kernel {name!r}; registered kernels: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._kernels))

    def copy(self) -> "KernelRegistry":
        return KernelRegistry(self._kernels.values())


_DEFAULT: KernelRegistry | None = None


def default_registry() -> KernelRegistry:
    """The registry with every built-in kernel, built lazily once."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.simcuda.kernels import elementwise, fft, reduce as reduce_k, sgemm

        registry = KernelRegistry()
        for module in (sgemm, fft, elementwise, reduce_k):
            for kernel in module.KERNELS:
                registry.register(kernel)
        _DEFAULT = registry
    return _DEFAULT
