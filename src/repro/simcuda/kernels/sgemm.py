"""Volkov-style single-precision matrix product (the MM case study).

The paper runs "Volkov's implementation of the matrix-matrix product
routine" [Volkov & Demmel, SC'08] on the GPU.  Our functional stand-in
computes the same contraction ``C = alpha * A @ B + beta * C`` on float32
device buffers via numpy; the cost model charges ``2*m*n*k`` flops at the
device timing model's sustained SGEMM rate (Volkov reports ~60% of peak on
the GT200 generation).

Argument tuple (all matrices row-major float32):
``(ptr_a, ptr_b, ptr_c, m, n, k, alpha, beta)`` for
A (m x k), B (k x n), C (m x n).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.simcuda.kernels.registry import KernelImpl
from repro.simcuda.types import Dim3

#: The launch name; 7 characters + NUL = the 8-byte ``x`` of Table I's
#: 52-byte MM cudaLaunch message.
KERNEL_NAME = "sgemmNN"


def _unpack(args: tuple) -> tuple[int, int, int, int, int, int, float, float]:
    if len(args) != 8:
        raise KernelError(
            f"{KERNEL_NAME} expects 8 arguments "
            "(ptr_a, ptr_b, ptr_c, m, n, k, alpha, beta), got "
            f"{len(args)}"
        )
    ptr_a, ptr_b, ptr_c, m, n, k, alpha, beta = args
    if min(m, n, k) <= 0:
        raise KernelError(f"{KERNEL_NAME}: dimensions must be positive")
    return ptr_a, ptr_b, ptr_c, int(m), int(n), int(k), float(alpha), float(beta)


def sgemm_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    ptr_a, ptr_b, ptr_c, m, n, k, alpha, beta = _unpack(args)
    a = memory.as_array(ptr_a, np.float32, m * k).reshape(m, k)
    b = memory.as_array(ptr_b, np.float32, k * n).reshape(k, n)
    c = memory.as_array(ptr_c, np.float32, m * n).reshape(m, n)
    if beta == 0.0:
        # CUBLAS semantics: beta == 0 must not read C (it may be garbage).
        result = alpha * (a @ b)
    else:
        result = alpha * (a @ b) + beta * c
    c[...] = result.astype(np.float32, copy=False)


def sgemm_flops(args: tuple) -> float:
    _, _, _, m, n, k, _, _ = _unpack(args)
    return 2.0 * m * n * k


def sgemm_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    return timing.gemm_seconds(sgemm_flops(args))


SGEMM = KernelImpl(
    name=KERNEL_NAME,
    fn=sgemm_fn,
    cost=sgemm_cost,
    description="single-precision C = alpha*A@B + beta*C (Volkov SGEMM)",
)

KERNELS = (SGEMM,)
