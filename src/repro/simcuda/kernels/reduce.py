"""Reduction kernels (sum, dot, max) writing a single float32 result.

Result convention: the kernel stores its scalar output at ``ptr_out`` as
one float32, like a device-side final-reduction stage would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.simcuda.kernels.registry import KernelImpl
from repro.simcuda.types import Dim3


def _count(n) -> int:
    n = int(n)
    if n <= 0:
        raise KernelError(f"element count must be positive, got {n}")
    return n


def ssum_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 3:
        raise KernelError(f"ssum expects (ptr_in, ptr_out, n), got {args!r}")
    ptr_in, ptr_out, n = args
    n = _count(n)
    x = memory.as_array(ptr_in, np.float32, n)
    out = memory.as_array(ptr_out, np.float32, 1)
    # Accumulate in float64, matching a tree reduction's better-than-naive
    # rounding, then store as float32.
    out[0] = np.float32(x.astype(np.float64).sum())


def ssum_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    return timing.membound_seconds(4 * _count(args[2]))


SSUM = KernelImpl("ssum", ssum_fn, ssum_cost, "out = sum(x)")


def sdot_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 4:
        raise KernelError(
            f"sdot expects (ptr_x, ptr_y, ptr_out, n), got {args!r}"
        )
    ptr_x, ptr_y, ptr_out, n = args
    n = _count(n)
    x = memory.as_array(ptr_x, np.float32, n).astype(np.float64)
    y = memory.as_array(ptr_y, np.float32, n).astype(np.float64)
    out = memory.as_array(ptr_out, np.float32, 1)
    out[0] = np.float32(x @ y)


def sdot_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    return timing.membound_seconds(8 * _count(args[3]))


SDOT = KernelImpl("sdot", sdot_fn, sdot_cost, "out = dot(x, y)")


def smax_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 3:
        raise KernelError(f"smax expects (ptr_in, ptr_out, n), got {args!r}")
    ptr_in, ptr_out, n = args
    n = _count(n)
    x = memory.as_array(ptr_in, np.float32, n)
    out = memory.as_array(ptr_out, np.float32, 1)
    out[0] = x.max()


def smax_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    return timing.membound_seconds(4 * _count(args[2]))


SMAX = KernelImpl("smax", smax_fn, smax_cost, "out = max(x)")

KERNELS = (SSUM, SDOT, SMAX)
