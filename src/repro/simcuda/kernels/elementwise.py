"""Elementwise kernels: the small utility launches used by examples and
tests beyond the two case studies.

All operate on float32 device buffers and are memory-bound: the cost model
charges the touched bytes at the device's sustained memory bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.simcuda.kernels.registry import KernelImpl
from repro.simcuda.types import Dim3


def _positive_count(n) -> int:
    n = int(n)
    if n <= 0:
        raise KernelError(f"element count must be positive, got {n}")
    return n


# -- saxpy: y = alpha * x + y ---------------------------------------------

def saxpy_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 4:
        raise KernelError(f"saxpy expects (ptr_x, ptr_y, n, alpha), got {args!r}")
    ptr_x, ptr_y, n, alpha = args
    n = _positive_count(n)
    x = memory.as_array(ptr_x, np.float32, n)
    y = memory.as_array(ptr_y, np.float32, n)
    y += np.float32(alpha) * x


def saxpy_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    n = _positive_count(args[2])
    return timing.membound_seconds(3 * 4 * n)  # read x, read+write y


SAXPY = KernelImpl("saxpy", saxpy_fn, saxpy_cost, "y = alpha*x + y")


# -- sscal: x = alpha * x ---------------------------------------------------

def sscal_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 3:
        raise KernelError(f"sscal expects (ptr_x, n, alpha), got {args!r}")
    ptr_x, n, alpha = args
    n = _positive_count(n)
    x = memory.as_array(ptr_x, np.float32, n)
    x *= np.float32(alpha)


def sscal_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    n = _positive_count(args[1])
    return timing.membound_seconds(2 * 4 * n)


SSCAL = KernelImpl("sscal", sscal_fn, sscal_cost, "x = alpha*x")


# -- sfill: x[:] = value -----------------------------------------------------

def sfill_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    if len(args) != 3:
        raise KernelError(f"sfill expects (ptr_x, n, value), got {args!r}")
    ptr_x, n, value = args
    n = _positive_count(n)
    x = memory.as_array(ptr_x, np.float32, n)
    x[...] = np.float32(value)


def sfill_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    n = _positive_count(args[1])
    return timing.membound_seconds(4 * n)


SFILL = KernelImpl("sfill", sfill_fn, sfill_cost, "x[:] = value")

KERNELS = (SAXPY, SSCAL, SFILL)
