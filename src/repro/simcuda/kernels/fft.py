"""Batched 512-point complex FFT (the FFT case study).

The paper computes "different numbers of parallel FFT operations" of 512
single-precision complex points each (4,096 bytes per batch element) with
Volkov's FFT kernel.  The functional implementation here is a real
iterative radix-2 Cooley-Tukey transform, vectorized across the batch with
numpy butterflies (bit-reversal permutation followed by log2(N) butterfly
stages) -- not a call into ``np.fft`` -- and is validated against
``np.fft.fft`` in the test suite.

Argument tuple: ``(ptr_in, ptr_out, batch, direction)`` with direction
+1 for forward, -1 for inverse (inverse applies the 1/N scale).  In-place
operation (ptr_in == ptr_out) is allowed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.simcuda.kernels.registry import KernelImpl
from repro.simcuda.types import Dim3

#: 13 characters + NUL = the 14-byte ``x`` of Table I's 58-byte FFT launch.
KERNEL_NAME = "FFT512_device"

FFT_POINTS = 512
_LOG2_POINTS = 9
assert 1 << _LOG2_POINTS == FFT_POINTS

#: Bit-reversal permutation for N = 512, computed once.
_BITREV = np.array(
    [int(format(i, f"0{_LOG2_POINTS}b")[::-1], 2) for i in range(FFT_POINTS)],
    dtype=np.int64,
)


def radix2_fft_batch(data: np.ndarray, direction: int = 1) -> np.ndarray:
    """Radix-2 DIT FFT over the last axis of a (batch, 512) complex array.

    Returns a new complex64 array.  ``direction=+1`` matches
    ``np.fft.fft``; ``-1`` matches ``np.fft.ifft`` (including the 1/N
    normalization).
    """
    if data.ndim != 2 or data.shape[1] != FFT_POINTS:
        raise KernelError(
            f"expected a (batch, {FFT_POINTS}) array, got {data.shape}"
        )
    if direction not in (1, -1):
        raise KernelError(f"direction must be +1 or -1, got {direction}")
    # Work in complex128 through the butterflies for accuracy, cast at the
    # end -- the same trade a float kernel makes with its registers.
    work = data[:, _BITREV].astype(np.complex128)
    sign = -1.0 if direction == 1 else 1.0
    half = 1
    while half < FFT_POINTS:
        span = half * 2
        # Twiddles for this stage: w_k = exp(sign * 2i*pi*k / span).
        k = np.arange(half)
        twiddle = np.exp(sign * 2j * np.pi * k / span)
        blocks = work.reshape(-1, FFT_POINTS // span, span)
        # Copy the even half: the in-place butterfly below would otherwise
        # alias it away before the odd half reads it.
        even = blocks[:, :, :half].copy()
        odd = blocks[:, :, half:] * twiddle
        blocks[:, :, :half] = even + odd
        blocks[:, :, half:] = even - odd
        half = span
    if direction == -1:
        work /= FFT_POINTS
    return work.astype(np.complex64)


def _unpack(args: tuple) -> tuple[int, int, int, int]:
    if len(args) != 4:
        raise KernelError(
            f"{KERNEL_NAME} expects 4 arguments "
            f"(ptr_in, ptr_out, batch, direction), got {len(args)}"
        )
    ptr_in, ptr_out, batch, direction = args
    if batch <= 0:
        raise KernelError(f"{KERNEL_NAME}: batch must be positive")
    return ptr_in, ptr_out, int(batch), int(direction)


def fft_fn(memory, grid: Dim3, block: Dim3, args: tuple) -> None:
    ptr_in, ptr_out, batch, direction = _unpack(args)
    signal = memory.as_array(ptr_in, np.complex64, batch * FFT_POINTS)
    spectra = radix2_fft_batch(signal.reshape(batch, FFT_POINTS), direction)
    out = memory.as_array(ptr_out, np.complex64, batch * FFT_POINTS)
    out[...] = spectra.reshape(-1)


def fft_flops(args: tuple) -> float:
    """The standard 5*N*log2(N) flop count per transform."""
    _, _, batch, _ = _unpack(args)
    return batch * 5.0 * FFT_POINTS * _LOG2_POINTS


def fft_cost(timing, grid: Dim3, block: Dim3, args: tuple) -> float:
    return timing.fft_seconds(fft_flops(args))


FFT512 = KernelImpl(
    name=KERNEL_NAME,
    fn=fft_fn,
    cost=fft_cost,
    description="batched 512-point radix-2 complex FFT",
)

KERNELS = (FFT512,)
