"""CUDA-style status codes.

The CUDA Runtime API reports failures by value; rCUDA ships that value back
to the client as the 4-byte "CUDA error" field of every response in
Table I.  The enum values below match the CUDA 2.3 toolkit the paper's
server daemon was built against.
"""

from __future__ import annotations

import enum

from repro.errors import DeviceError


class CudaError(enum.IntEnum):
    """Subset of ``cudaError_t`` relevant to the remoted operations."""

    cudaSuccess = 0
    cudaErrorMissingConfiguration = 1
    cudaErrorMemoryAllocation = 2
    cudaErrorInitializationError = 3
    cudaErrorLaunchFailure = 4
    cudaErrorInvalidValue = 11
    cudaErrorInvalidDevicePointer = 17
    cudaErrorInvalidMemcpyDirection = 21
    cudaErrorUnknown = 30
    cudaErrorInvalidResourceHandle = 33
    cudaErrorNotReady = 34
    cudaErrorNoDevice = 38
    cudaErrorDevicesUnavailable = 46


class CudaRuntimeError(DeviceError):
    """Raised by :func:`check` when a status code is not ``cudaSuccess``."""

    def __init__(self, status: CudaError, operation: str = "") -> None:
        self.status = CudaError(status)
        self.operation = operation
        prefix = f"{operation}: " if operation else ""
        super().__init__(f"{prefix}{self.status.name} ({int(self.status)})")


def check(status: int | CudaError, operation: str = "") -> None:
    """Raise :class:`CudaRuntimeError` unless ``status`` is success.

    Mirrors the ubiquitous ``CUDA_SAFE_CALL`` macro: library code that does
    not want to thread status codes around can convert them to exceptions
    at the boundary.
    """
    status = CudaError(status)
    if status is not CudaError.cudaSuccess:
        raise CudaRuntimeError(status, operation)
