"""GPU modules: the code blob shipped at rCUDA initialization.

The paper's initialization stage "locates and sends the GPU module of the
application ... which comprises the code to be executed on the GPU
(kernels) and other related information such as statically allocated
variables".  The module payload is the ``x`` of Table I's Initialization
row: 21,486 bytes for the matrix product, 7,852 for the FFT.

Our modules are self-describing blobs: a small header naming the kernels
they export, padded deterministically to the exact published size, so the
wire traffic is byte-for-byte the size the paper measured while the server
can still discover which kernels the module provides.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolError

_MAGIC = b"RPRGPUM1"


@dataclass(frozen=True)
class GpuModule:
    """A named module exporting kernels, serialized to an exact size."""

    name: str
    kernel_names: tuple[str, ...]
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)

    def exports(self, kernel_name: str) -> bool:
        return kernel_name in self.kernel_names


def fabricate_module(
    name: str, kernel_names: tuple[str, ...] | list[str], total_bytes: int
) -> GpuModule:
    """Build a module blob of exactly ``total_bytes`` bytes.

    Layout: magic, name, kernel-name table, then deterministic padding
    derived from the name (so two builds of the same module are
    bit-identical -- important for reproducible wire traces).
    """
    kernel_names = tuple(kernel_names)
    header = bytearray(_MAGIC)
    name_b = name.encode()
    header += struct.pack("<I", len(name_b)) + name_b
    header += struct.pack("<I", len(kernel_names))
    for kn in kernel_names:
        knb = kn.encode()
        header += struct.pack("<I", len(knb)) + knb
    if total_bytes < len(header):
        raise ConfigurationError(
            f"module {name!r} needs at least {len(header)} bytes of header, "
            f"asked for {total_bytes}"
        )
    pad_len = total_bytes - len(header)
    pad = bytearray()
    counter = 0
    seed = name.encode()
    while len(pad) < pad_len:
        pad += hashlib.sha256(seed + struct.pack("<I", counter)).digest()
        counter += 1
    payload = bytes(header) + bytes(pad[:pad_len])
    assert len(payload) == total_bytes
    return GpuModule(name=name, kernel_names=kernel_names, payload=payload)


def parse_module(payload: bytes) -> GpuModule:
    """Recover name and kernel table from a module blob (server side)."""
    if not payload.startswith(_MAGIC):
        raise ProtocolError("not a GPU module blob (bad magic)")
    off = len(_MAGIC)

    def _read_str(off: int) -> tuple[str, int]:
        if off + 4 > len(payload):
            raise ProtocolError("truncated GPU module header")
        (n,) = struct.unpack_from("<I", payload, off)
        off += 4
        if off + n > len(payload):
            raise ProtocolError("truncated GPU module header")
        return payload[off : off + n].decode(), off + n

    name, off = _read_str(off)
    if off + 4 > len(payload):
        raise ProtocolError("truncated GPU module header")
    (count,) = struct.unpack_from("<I", payload, off)
    off += 4
    kernels: list[str] = []
    for _ in range(count):
        kn, off = _read_str(off)
        kernels.append(kn)
    return GpuModule(name=name, kernel_names=tuple(kernels), payload=payload)
