"""Device global-memory allocator.

``cudaMalloc``/``cudaFree`` on the simulated device are served by a
classic free-list allocator over a flat byte-addressed space:

* allocations are aligned to :data:`ALIGNMENT` bytes like real
  ``cudaMalloc`` (256 B on the Tesla generation);
* placement policy is first-fit by default (best-fit available -- the
  allocator-policy ablation benchmark compares the two; ``binned`` adds a
  size-binned free-list index so lookup is O(1) expected on alloc/free
  churn instead of a linear scan);
* adjacent free blocks coalesce on free, and double frees or frees of
  non-allocation-start pointers fail the way CUDA fails them
  (``cudaErrorInvalidDevicePointer``).

When the owning device is *functional* each allocation carries a real
``numpy`` byte buffer, and reads/writes may target any in-bounds offset
inside an allocation (device pointer arithmetic works).  Metadata-only
mode keeps the same address-space behaviour without backing storage, so a
timed simulation can "allocate" 1.3 GiB matrices for free.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DeviceMemoryError
from repro.simcuda.types import DevicePtr

#: cudaMalloc alignment guarantee on the paper-era hardware.
ALIGNMENT = 256

#: First device address handed out; nonzero so 0 stays the null pointer.
BASE_ADDRESS = 0x1000

PLACEMENT_POLICIES = ("first-fit", "best-fit", "binned")


def _align_up(n: int, alignment: int = ALIGNMENT) -> int:
    return (n + alignment - 1) // alignment * alignment


@dataclass
class MemoryBlock:
    """One allocation: [ptr, ptr + size) with ``reserved`` aligned bytes."""

    ptr: DevicePtr
    size: int
    reserved: int
    data: np.ndarray | None = field(default=None, repr=False)

    @property
    def end(self) -> DevicePtr:
        return self.ptr + self.reserved

    def contains(self, addr: DevicePtr, nbytes: int = 1) -> bool:
        """True if [addr, addr + nbytes) lies inside the *requested* size."""
        return self.ptr <= addr and addr + nbytes <= self.ptr + self.size


class DeviceMemory:
    """The allocator; one instance per simulated device."""

    def __init__(
        self,
        capacity: int,
        functional: bool = True,
        policy: str = "first-fit",
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        if policy not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {PLACEMENT_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.functional = functional
        self.policy = policy
        #: Free regions as (start, size), kept sorted by start.
        self._free: list[tuple[int, int]] = [(BASE_ADDRESS, capacity)]
        #: Size-binned index over ``_free`` (``binned`` policy only):
        #: bin key ``size.bit_length()`` -> set of region start addresses.
        #: Every ``_free`` mutation touches at most two neighbours, so
        #: keeping the bins current is O(1) set work per mutation.
        self._bins: dict[int, set[int]] | None = (
            {} if policy == "binned" else None
        )
        if self._bins is not None:
            self._bins_add(BASE_ADDRESS, capacity)
        #: Live allocations keyed by their start address.
        self._blocks: dict[DevicePtr, MemoryBlock] = {}
        #: Sorted block start addresses: ``_locate`` resolves an interior
        #: address by bisecting to the nearest start at or below it, so
        #: address checks stay O(log n) with a thousand concurrent
        #: sessions' allocations live (the consolidation scenario), not
        #: a per-access linear scan.
        self._starts: list[int] = []
        #: Running reserved-byte total (``used`` must not re-sum every
        #: block on each malloc).
        self._used = 0
        self.peak_used = 0
        self.total_allocs = 0
        #: Bytes materialized by copying reads (``read(copy=True)``); the
        #: zero-copy view path leaves this untouched, which the streaming
        #: D2H accounting asserts on.
        self.bytes_copied = 0

    # -- accounting -------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes currently reserved by live allocations."""
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    @property
    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    @property
    def allocation_count(self) -> int:
        return len(self._blocks)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    # -- malloc / free ----------------------------------------------------

    def _bins_add(self, start: int, size: int) -> None:
        if self._bins is not None:
            self._bins.setdefault(size.bit_length(), set()).add(start)

    def _bins_discard(self, start: int, size: int) -> None:
        if self._bins is not None:
            starts = self._bins.get(size.bit_length())
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del self._bins[size.bit_length()]

    def _free_index_of(self, start: int) -> int:
        """Index of the free region starting at ``start`` (which must
        exist); ``(start,)`` sorts just before ``(start, size)``."""
        return bisect.bisect_left(self._free, (start,))

    def _pick_region(self, reserved: int) -> int | None:
        if self.policy == "binned":
            return self._pick_region_binned(reserved)
        candidates = (
            i for i, (_, size) in enumerate(self._free) if size >= reserved
        )
        if self.policy == "first-fit":
            return next(candidates, None)
        best_i, best_size = None, None
        for i in candidates:
            size = self._free[i][1]
            if best_size is None or size < best_size:
                best_i, best_size = i, size
        return best_i

    def _pick_region_binned(self, reserved: int) -> int | None:
        """Best-fit-ish O(1) expected lookup: scan bins upward from the
        request's own size class (at most ~40 bins for any capacity).
        Only the first bin can hold regions smaller than the request, so
        only there do candidates need a size check; ties break to the
        lowest start address for determinism."""
        assert self._bins is not None
        first_bin = reserved.bit_length()
        for b in range(first_bin, self.capacity.bit_length() + 1):
            starts = self._bins.get(b)
            if not starts:
                continue
            if b == first_bin:
                fitting = [
                    s for s in starts
                    if self._free[self._free_index_of(s)][1] >= reserved
                ]
                if not fitting:
                    continue
                start = min(fitting)
            else:
                start = min(starts)
            return self._free_index_of(start)
        return None

    def malloc(self, size: int) -> DevicePtr:
        """Allocate ``size`` bytes; raises :class:`DeviceMemoryError` when
        no free region fits (CUDA's ``cudaErrorMemoryAllocation``)."""
        if size <= 0:
            raise DeviceMemoryError(f"allocation size must be positive: {size}")
        reserved = _align_up(size)
        index = self._pick_region(reserved)
        if index is None:
            raise DeviceMemoryError(
                f"out of device memory: requested {size} B "
                f"(reserved {reserved} B), largest free region "
                f"{self.largest_free_block} B of {self.free_bytes} B free"
            )
        start, region_size = self._free[index]
        self._bins_discard(start, region_size)
        if region_size == reserved:
            del self._free[index]
        else:
            self._free[index] = (start + reserved, region_size - reserved)
            self._bins_add(start + reserved, region_size - reserved)
        data = None
        if self.functional:
            data = np.zeros(size, dtype=np.uint8)
        self._blocks[start] = MemoryBlock(
            ptr=start, size=size, reserved=reserved, data=data
        )
        bisect.insort(self._starts, start)
        self._used += reserved
        self.total_allocs += 1
        if self._used > self.peak_used:
            self.peak_used = self._used
        return start

    def free(self, ptr: DevicePtr) -> None:
        """Release an allocation; the pointer must be an allocation start."""
        block = self._blocks.pop(ptr, None)
        if block is None:
            raise DeviceMemoryError(
                f"invalid device pointer in free: 0x{ptr:x} is not a live "
                "allocation start"
            )
        del self._starts[bisect.bisect_left(self._starts, ptr)]
        self._used -= block.reserved
        self._insert_free(block.ptr, block.reserved)

    def _insert_free(self, start: int, size: int) -> None:
        # Insert keeping sort order, then coalesce with neighbours.
        lo = 0
        hi = len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, size))
        self._bins_add(start, size)
        # Coalesce right then left.
        if lo + 1 < len(self._free):
            s, z = self._free[lo]
            s2, z2 = self._free[lo + 1]
            if s + z == s2:
                self._bins_discard(s, z)
                self._bins_discard(s2, z2)
                self._free[lo : lo + 2] = [(s, z + z2)]
                self._bins_add(s, z + z2)
        if lo > 0:
            s0, z0 = self._free[lo - 1]
            s, z = self._free[lo]
            if s0 + z0 == s:
                self._bins_discard(s0, z0)
                self._bins_discard(s, z)
                self._free[lo - 1 : lo + 1] = [(s0, z0 + z)]
                self._bins_add(s0, z0 + z)

    def reset(self) -> None:
        """Free everything (context teardown)."""
        self._blocks.clear()
        self._starts.clear()
        self._used = 0
        self._free = [(BASE_ADDRESS, self.capacity)]
        if self._bins is not None:
            self._bins = {}
            self._bins_add(BASE_ADDRESS, self.capacity)

    # -- data access --------------------------------------------------------

    def _locate(self, addr: DevicePtr, nbytes: int) -> tuple[MemoryBlock, int]:
        """Find the allocation containing [addr, addr + nbytes)."""
        # Only the block starting at or below ``addr`` can contain it:
        # one bisect plus one containment check, so a server
        # consolidating a thousand sessions (a thousand live
        # allocations) does not pay a linear scan per memory access.
        i = bisect.bisect_right(self._starts, addr)
        if i:
            block = self._blocks[self._starts[i - 1]]
            if block.contains(addr, nbytes):
                return block, addr - block.ptr
        raise DeviceMemoryError(
            f"invalid device address range [0x{addr:x}, 0x{addr + nbytes:x})"
        )

    def is_valid(self, addr: DevicePtr, nbytes: int = 1) -> bool:
        """True when the whole range lies inside one live allocation."""
        try:
            self._locate(addr, nbytes)
        except DeviceMemoryError:
            return False
        return True

    def owning_base(self, addr: DevicePtr, nbytes: int = 1) -> DevicePtr:
        """Base pointer of the live allocation containing the range
        (raises :class:`DeviceMemoryError` when no allocation does).
        Callers use it to check *ownership*, not just validity: on a
        shared device a range can be live yet belong to another
        context's allocation."""
        block, _ = self._locate(addr, nbytes)
        return block.ptr

    def write(self, addr: DevicePtr, data: bytes | bytearray | np.ndarray) -> None:
        """Copy host bytes into device memory at ``addr``."""
        buf = np.frombuffer(data, dtype=np.uint8) if not isinstance(
            data, np.ndarray
        ) else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        block, offset = self._locate(addr, buf.nbytes)
        if not self.functional:
            return
        assert block.data is not None
        block.data[offset : offset + buf.nbytes] = buf

    def read(
        self, addr: DevicePtr, nbytes: int, copy: bool = True
    ) -> np.ndarray:
        """Device memory back out as a uint8 array.

        ``copy=True`` (the default) materializes a fresh caller-owned
        array and charges ``bytes_copied``; ``copy=False`` returns a live
        zero-copy view -- the streaming D2H send path uses it, valid only
        until the next write to the range.
        """
        block, offset = self._locate(addr, nbytes)
        if not self.functional:
            return np.zeros(nbytes, dtype=np.uint8)
        assert block.data is not None
        if not copy:
            return block.data[offset : offset + nbytes]
        self.bytes_copied += nbytes
        return block.data[offset : offset + nbytes].copy()

    def view(self, addr: DevicePtr, nbytes: int) -> np.ndarray:
        """A zero-copy uint8 view (kernels mutate device memory through
        these; only valid on a functional device)."""
        if not self.functional:
            raise DeviceMemoryError(
                "views are only available on a functional device"
            )
        block, offset = self._locate(addr, nbytes)
        assert block.data is not None
        return block.data[offset : offset + nbytes]

    def as_array(
        self, addr: DevicePtr, dtype: np.dtype | str, count: int
    ) -> np.ndarray:
        """A typed zero-copy view of ``count`` items at ``addr``."""
        dt = np.dtype(dtype)
        return self.view(addr, count * dt.itemsize).view(dt)

    def __repr__(self) -> str:
        return (
            f"DeviceMemory(used={self.used}/{self.capacity} B, "
            f"allocs={self.allocation_count}, policy={self.policy}, "
            f"functional={self.functional})"
        )
