"""CUDA contexts.

A context owns everything a client session allocates: device memory,
loaded modules, streams and events.  rCUDA time-multiplexes the GPU "by
spawning a different server process for each remote execution over a new
GPU context" -- in our server each connection gets one
:class:`CudaContext`, and destroying it releases the session's resources,
which is exactly the paper's finalization stage.
"""

from __future__ import annotations

import itertools

from repro.errors import DeviceError
from repro.simcuda.event import CudaEvent
from repro.simcuda.module import GpuModule
from repro.simcuda.stream import DEFAULT_STREAM, CudaStream
from repro.simcuda.types import DevicePtr

_context_ids = itertools.count(1)


class CudaContext:
    """One client session's resources on the device."""

    def __init__(self) -> None:
        self.context_id = next(_context_ids)
        self.allocations: set[DevicePtr] = set()
        self.modules: dict[str, GpuModule] = {}
        self.streams: dict[int, CudaStream] = {
            DEFAULT_STREAM: CudaStream(handle=DEFAULT_STREAM)
        }
        self.events: dict[int, CudaEvent] = {}
        self.destroyed = False

    def _check_live(self) -> None:
        if self.destroyed:
            raise DeviceError(f"context {self.context_id} was destroyed")

    # -- resource tracking --------------------------------------------------

    def track_allocation(self, ptr: DevicePtr) -> None:
        self._check_live()
        self.allocations.add(ptr)

    def untrack_allocation(self, ptr: DevicePtr) -> None:
        self._check_live()
        self.allocations.discard(ptr)

    def owns(self, ptr: DevicePtr) -> bool:
        return ptr in self.allocations

    def load_module(self, module: GpuModule) -> None:
        self._check_live()
        self.modules[module.name] = module

    def kernel_visible(self, kernel_name: str) -> bool:
        """True if any loaded module exports the kernel."""
        return any(m.exports(kernel_name) for m in self.modules.values())

    # -- streams / events -----------------------------------------------------

    def create_stream(self) -> CudaStream:
        self._check_live()
        stream = CudaStream()
        self.streams[stream.handle] = stream
        return stream

    def get_stream(self, handle: int) -> CudaStream:
        self._check_live()
        try:
            return self.streams[handle]
        except KeyError:
            raise DeviceError(f"invalid stream handle {handle}") from None

    def create_event(self) -> CudaEvent:
        self._check_live()
        event = CudaEvent()
        self.events[event.handle] = event
        return event

    def get_event(self, handle: int) -> CudaEvent:
        self._check_live()
        try:
            return self.events[handle]
        except KeyError:
            raise DeviceError(f"invalid event handle {handle}") from None

    def resource_summary(self) -> dict[str, int]:
        return {
            "allocations": len(self.allocations),
            "modules": len(self.modules),
            "streams": len(self.streams),
            "events": len(self.events),
        }
