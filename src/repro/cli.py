"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``experiment <id>...`` -- regenerate tables/figures (``all`` for every
  one), printing the paper-layout report and optionally writing text +
  CSV artifacts;
* ``pingpong <network>`` -- characterize a simulated link the way
  Section IV.A characterizes a real one;
* ``serve`` -- run an rCUDA daemon on a TCP port over a simulated GPU,
  optionally with a Prometheus ``--metrics-port`` (which also serves
  ``/healthz`` and ``/sessions``), a ``--log-json`` span stream, SLO
  objectives (``--slo``) and a ``--postmortem-dir`` for crash dumps;
* ``top`` -- live ASCII dashboard over a serving daemon's endpoints;
* ``postmortem <dump.json>`` -- render a flight-recorder crash dump;
* ``run <case>`` -- one functional remote execution with verification
  (``--trace-out``/``--chrome-out`` record the RPC timeline, the latter
  with runtime counter tracks sampled by the profiler);
* ``drift <case>...`` -- model conformance: run the case and compare
  every measured client span against the paper model's prediction;
* ``stats <file>`` -- replay a JSONL span log into a summary table;
* ``cluster`` -- the provisioning sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_IDS, run_experiment, write_result

    ids = args.ids
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.text)
        print()
        if args.outdir:
            paths = write_result(result, args.outdir)
            print(f"[wrote {', '.join(str(p) for p in paths)}]")
    return 0


def _cmd_pingpong(args: argparse.Namespace) -> int:
    from repro.net import SimulatedLink, get_network, run_pingpong

    if args.real:
        return _real_pingpong()
    spec = get_network(args.network)
    link = SimulatedLink(spec, distortion_mode="stochastic", seed=args.seed)
    result = run_pingpong(link, network=spec.name)
    print(f"network: {spec.name} ({spec.description})")
    for sample in result.samples:
        print(
            f"  {sample.payload_bytes:>12d} B  "
            f"mean {sample.mean_one_way_us:10.1f} us  "
            f"min {sample.min_one_way_seconds * 1e6:10.1f} us"
        )
    if result.large_fit is not None:
        fit = result.large_fit
        print(
            f"large-payload fit: t(ms) = {fit.slope_ms_per_mib:.2f} * n_MiB "
            f"{fit.intercept_ms:+.2f}, corr {fit.corrcoef:.6f}"
        )
    print(f"effective one-way bandwidth: {result.effective_bw_mibps:.1f} MiB/s")
    return 0


def _real_pingpong() -> int:
    """Characterize this machine's loopback TCP with the Section IV.A
    procedure -- a template for measuring a real two-node network."""
    import socket

    from repro.net import EchoPeer, characterize_transport
    from repro.transport.tcp import TcpTransport

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client_sock = socket.create_connection(("127.0.0.1", port))
    server_sock, _ = listener.accept()
    listener.close()
    peer = EchoPeer(TcpTransport(server_sock)).start()
    result = characterize_transport(
        TcpTransport(client_sock), network="loopback-tcp"
    )
    peer.join()
    print("network: loopback TCP (real sockets, real wall clock)")
    for sample in result.samples:
        print(
            f"  {sample.payload_bytes:>12d} B  "
            f"mean {sample.mean_one_way_us:10.1f} us  "
            f"min {sample.min_one_way_seconds * 1e6:10.1f} us"
        )
    if result.large_fit is not None:
        fit = result.large_fit
        print(
            f"large-payload fit: t(ms) = {fit.slope_ms_per_mib:.4f} * n_MiB "
            f"{fit.intercept_ms:+.4f}, corr {fit.corrcoef:.6f}"
        )
    print(f"effective one-way bandwidth: {result.effective_bw_mibps:.1f} MiB/s")
    print(
        "\n(point the same harness at a socket to another machine to "
        "characterize a real network, then feed the numbers to "
        "`repro whatif --bandwidth ...`)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs import (
        JsonlSink,
        MetricsRegistry,
        MetricsServer,
        SloEngine,
        Tracer,
        parse_objective,
    )
    from repro.rcuda import AsyncRCudaDaemon, RCudaDaemon
    from repro.simcuda import SimulatedGpu

    sink = JsonlSink(args.log_json) if args.log_json else None
    tracer = Tracer(sink=sink) if sink is not None else None
    registry = MetricsRegistry() if args.metrics_port is not None else None
    slo = SloEngine(
        objectives=(
            [parse_objective(spec) for spec in args.slo]
            if args.slo else None
        ),
        network=args.network_label,
    )

    tuned = None
    if args.profile is not None:
        from repro.tune.table import resolve_profile

        tuned = resolve_profile(args.profile)

    common = dict(
        host=args.host, port=args.port,
        tracer=tracer, metrics=registry, slo=slo,
        postmortem_dir=args.postmortem_dir,
        max_sessions=args.max_sessions,
        profile=args.profile,
        socket_buffer_bytes=args.socket_buffer_bytes,
    )

    def make_device() -> SimulatedGpu:
        if tuned is None:
            return SimulatedGpu()
        return SimulatedGpu(memory_policy=tuned.malloc_policy)

    pool = None
    if args.share_device is not None:
        from repro.rcuda import DevicePool

        pool_kwargs = dict(
            devices=args.share_device,
            quota_bytes=args.quota_bytes,
            policy=args.sched,
            device_factory=make_device,
        )
        if tuned is not None:
            pool_kwargs["quantum"] = tuned.launch_coalesce_width
        pool = DevicePool(**pool_kwargs)
        common["pool"] = pool
    elif args.quota_bytes is not None:
        print(
            "error: --quota-bytes requires --share-device "
            "(quotas only apply to pooled tenants)",
            file=sys.stderr,
        )
        return 2
    device = pool.devices[0] if pool is not None else make_device()
    if args.use_async:
        daemon = AsyncRCudaDaemon(
            device, idle_timeout=args.idle_timeout, **common
        )
    else:
        if args.idle_timeout is not None:
            print(
                "error: --idle-timeout requires --async "
                "(the thread daemon blocks per connection)",
                file=sys.stderr,
            )
            return 2
        daemon = RCudaDaemon(device, **common)
    port = daemon.start()
    metrics_server = None

    def health() -> dict:
        doc = {
            "sessions": daemon.active_sessions,
            "sessions_total": daemon.total_sessions,
            "unclean_sessions": daemon.unclean_sessions,
            "rejected_sessions": daemon.rejected_sessions,
            "stopping": daemon.stopping,
        }
        if args.use_async:
            # Event-loop lag is the multiplexed server's saturation
            # signal; surface it where the probes already look.
            doc["loop_lag_seconds"] = round(daemon.loop_lag_seconds, 6)
            doc["loop_lag_max_seconds"] = round(daemon.loop_lag_max, 6)
            doc["loop_connections"] = daemon.loop_connections
            doc["backpressure_stalls"] = daemon.backpressure_stalls
            doc["queued_requests"] = daemon.queued_requests
        tune = daemon.tune_block()
        if tune is not None:
            doc["tune"] = tune
        doc.update(slo.health_block())
        return doc

    try:
        mode = "event-loop" if args.use_async else "thread-per-connection"
        print(
            f"rCUDA daemon ({mode}) listening on {args.host}:{port} "
            f"(Ctrl-C to stop)"
        )
        if args.max_sessions is not None:
            print(f"admission control: at most {args.max_sessions} sessions")
        if tuned is not None:
            print(
                f"tuned profile {args.profile!r}: socket buffers "
                f"{daemon.socket_buffer_bytes} B, malloc "
                f"{tuned.malloc_policy}, coalesce width "
                f"{tuned.launch_coalesce_width}"
            )
        if pool is not None:
            quota = (
                f", quota {args.quota_bytes} B/tenant"
                if args.quota_bytes is not None else ""
            )
            print(
                f"device pool: {len(pool.devices)} shared device(s), "
                f"{args.sched} launch scheduling{quota}"
            )
        if args.use_async and args.idle_timeout is not None:
            print(f"idle sessions reaped after {args.idle_timeout:g}s")
        for objective in slo.objectives:
            print(f"SLO {objective.describe()}")
        if daemon.postmortem_dir is not None:
            print(f"postmortem dumps land in {daemon.postmortem_dir}")
        if registry is not None:
            metrics_server = MetricsServer(
                registry, host=args.host, port=args.metrics_port,
                health=health,
                sessions=daemon.session_ledgers,
            )
            mport = metrics_server.start()
            print(f"metrics on http://{args.host}:{mport}/metrics "
                  f"(health on /healthz, ledgers on /sessions; "
                  f"`repro top --url http://{args.host}:{mport}` to watch)")
        if sink is not None:
            print(f"span log streaming to {args.log_json}")
        sys.stdout.flush()
        deadline = (
            time.monotonic() + args.run_seconds
            if args.run_seconds is not None
            else None
        )
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.05 if deadline is not None else 1.0)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        # Flip the probe to 503 first so load balancers drain before the
        # daemon socket actually dies.
        if metrics_server is not None:
            metrics_server.mark_stopping()
        daemon.stop()
        if metrics_server is not None:
            metrics_server.stop()
        if sink is not None:
            sink.close()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs import (
        RuntimeProfiler,
        Tracer,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.testbed import FunctionalRunner
    from repro.testbed.simulated import case_by_name

    case = case_by_name(args.case.upper())
    tracer = Tracer() if (args.trace_out or args.chrome_out) else None
    # Counter tracks (queue depth, in-flight window, memory occupancy)
    # only make sense next to the span timeline, so the profiler rides
    # on --chrome-out.
    profiler = RuntimeProfiler() if args.chrome_out else None
    runner = FunctionalRunner(
        use_tcp=args.tcp, tracer=tracer, profiler=profiler
    )
    with runner:
        if profiler is not None:
            profiler.start()
        try:
            report = runner.run(
                case,
                args.size,
                seed=args.seed,
                pipeline=args.pipeline,
                chunk_bytes=args.chunk_bytes,
                chunking=not args.no_chunking,
                profile=args.profile,
            )
        finally:
            if profiler is not None:
                profiler.stop()
    result = report.result
    print(
        f"{case.name} size {args.size}: verified={result.verified} "
        f"(max |err| {result.max_abs_error:.3g}), "
        f"wall {result.wall_seconds * 1e3:.1f} ms, "
        f"{report.bytes_sent + report.bytes_received} wire bytes in "
        f"{report.messages_sent} messages"
    )
    for network, seconds in report.virtual_network_seconds.items():
        print(f"  virtual network time on {network}: {seconds * 1e3:.2f} ms")
    if tracer is not None:
        if args.trace_out:
            write_jsonl(tracer.spans, args.trace_out)
            print(f"  span log: {args.trace_out} ({len(tracer.spans)} spans)")
        if args.chrome_out:
            counters = profiler.samples if profiler is not None else ()
            write_chrome_trace(tracer.spans, args.chrome_out, counters=counters)
            print(
                f"  chrome trace: {args.chrome_out} "
                f"({len(counters)} counter samples; load in Perfetto)"
            )
    return 0 if result.verified else 1


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.model.calibration import default_calibration
    from repro.net.spec import get_network
    from repro.obs import ConformanceMonitor, Tracer
    from repro.reporting import render_table
    from repro.testbed.simulated import case_by_name

    spec = get_network(args.network)
    calibration = default_calibration()
    any_drift = False
    for case_name in args.cases:
        case = case_by_name(case_name.upper())
        monitor = ConformanceMonitor(spec)
        monitor.set_workload(case, args.size, calibration=calibration)
        tracer = Tracer()
        if args.simulated:
            from repro.testbed import SimulatedTestbed

            SimulatedTestbed(calibration).measure_remote(
                case, args.size, spec, tracer=tracer
            )
        else:
            from repro.testbed import FunctionalRunner

            with FunctionalRunner(tracer=tracer) as runner:
                runner.run(
                    case,
                    args.size,
                    pipeline=args.pipeline,
                    chunk_bytes=args.chunk_bytes,
                    chunking=not args.no_chunking,
                    profile=args.profile,
                )
        monitor.observe_spans(tracer.spans)
        rows = []
        for phase, (measured, predicted) in monitor.phase_table().items():
            rel = (
                100.0 * (measured - predicted) / predicted
                if predicted > 0
                else float("inf")
            )
            rows.append([phase, measured * 1e3, predicted * 1e3, rel])
        mode = "simulated" if args.simulated else (
            "functional, pipelined" if args.pipeline else "functional"
        )
        print(
            render_table(
                ["Phase", "Measured (ms)", "Predicted (ms)", "Rel err (%)"],
                rows,
                title=(
                    f"{case.name} size {args.size} ({mode}) "
                    f"vs the {spec.name} model"
                ),
                digits=3,
            )
        )
        print()
        print(monitor.drift_report().render())
        print()
        if monitor.status == "drift":
            any_drift = True
    return 1 if (any_drift and args.fail_on_drift) else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.reporting import render_table

    if args.retune_demo:
        return _retune_demo(args)

    if args.quick:
        from repro.tune.search import reevaluate_shipped

        rows = reevaluate_shipped(
            tolerance=args.tolerance,
            networks=tuple(args.networks) if args.networks else None,
        )
        if not rows:
            print("error: no shipped profiles matched", file=sys.stderr)
            return 2
        print(
            render_table(
                ["Network", "Recorded (ms)", "Observed (ms)",
                 "Regression (%)", "OK"],
                [
                    [r["network"], r["recorded_seconds"] * 1e3,
                     r["observed_seconds"] * 1e3,
                     100.0 * r["regression"], str(r["ok"])]
                    for r in rows
                ],
                title=(
                    "Shipped tuned table vs live re-evaluation "
                    f"(quick subset, tolerance {args.tolerance:.0%})"
                ),
                digits=3,
            )
        )
        bad = [r["network"] for r in rows if not r["ok"]]
        if bad:
            print(
                f"FAIL: committed config regressed past "
                f"{args.tolerance:.0%} on: {', '.join(bad)}",
                file=sys.stderr,
            )
            return 1
        print("all shipped configs hold their recorded scores")
        return 0

    from repro.tune.search import run_tuning
    from repro.tune.workloads import NETWORK_NAMES

    networks = tuple(args.networks) if args.networks else NETWORK_NAMES
    doc = run_tuning(
        networks=networks,
        seed=args.seed,
        out_path=args.out,
        progress=print if args.verbose else None,
    )
    rows = []
    for name in networks:
        nd = doc["networks"][name]
        best = nd["best"]["config"]
        default = nd["default"]["config"]
        deltas = ", ".join(
            f"{k}={best[k]!r}" for k in sorted(best) if best[k] != default[k]
        ) or "(defaults)"
        rows.append(
            [name, nd["default"]["aggregate_seconds"] * 1e3,
             nd["best"]["aggregate_seconds"] * 1e3, nd["ratio"], deltas]
        )
    print(
        render_table(
            ["Network", "Default (ms)", "Tuned (ms)", "Ratio", "Knobs moved"],
            rows,
            title=f"Tuning campaign (seed {args.seed}, virtual-clock seconds)",
            digits=3,
        )
    )
    summary = doc["summary"]
    print(
        f"tuned beat the static defaults on {summary['tuned_wins']} of "
        f"{summary['networks']} networks; full trial log in {args.out}"
    )
    return 0


def _retune_demo(args: argparse.Namespace) -> int:
    """Launch a session with the *wrong* profile on a link, watch the
    conformance monitor flag streamed drift, and let the online tuner
    walk the live knobs to the actual link's tuned config."""
    import numpy as np

    from repro.net.simlink import SimulatedLink
    from repro.net.spec import get_network
    from repro.obs import ConformanceMonitor, Tracer
    from repro.rcuda import RCudaClient, RCudaDaemon
    from repro.simcuda import SimulatedGpu
    from repro.simcuda.types import MemcpyKind
    from repro.transport.inproc import inproc_pair
    from repro.transport.timed import TimedTransport
    from repro.tune.autotune import AutoTuner
    from repro.tune.table import get_entry
    from repro.workloads.matmul import MatrixProductCase

    actual, assumed = args.link, args.assume
    link = SimulatedLink(get_network(actual))
    # Spans carry the link's virtual clock, so streamed durations are
    # the modeled wire times, not wall noise.
    tracer = Tracer(clock=link.clock)
    daemon = RCudaDaemon(SimulatedGpu(functional=False))
    client_end, server_end = inproc_pair()
    daemon.serve_transport(server_end)
    client = RCudaClient.connect(
        TimedTransport(client_end, link),
        MatrixProductCase().module(),
        tracer=tracer,
        profile=assumed,
    )
    rt = client.runtime
    monitor = ConformanceMonitor(get_network(assumed))
    tuner = AutoTuner(rt, monitor)
    print(
        f"session on a {actual} link launched with the {assumed} profile: "
        f"chunk={rt.chunk_bytes} window={rt.pipeline_window}"
    )
    nbytes = args.copy_bytes
    host = np.zeros(nbytes, dtype=np.uint8)
    err, ptr = rt.cudaMalloc(nbytes)
    try:
        for i in range(args.copies):
            rt.cudaMemcpy(
                ptr, 0, nbytes, MemcpyKind.cudaMemcpyHostToDevice,
                host_data=host,
            )
            before = len(tuner.steps)
            for span in tracer.spans:
                tuner.observe(span)
            tracer.spans.clear()
            for step in tuner.steps[before:]:
                print(
                    f"  copy {i + 1}: drift -> step toward "
                    f"{step['target_profile']} (chunk={step['chunk_bytes']} "
                    f"window={step['pipeline_window']}, observed "
                    f"{step['observed_bw_mibps']:.0f} MiB/s)"
                )
    finally:
        rt.cudaFree(ptr)
        client.close()
        daemon.stop()
    status = tuner.status()
    target = status["target_profile"]
    print(
        f"after {status['streamed_observations']} streamed copies: "
        f"drift={status['drift_status']} steps={status['steps']} "
        f"target={target} chunk={status['chunk_bytes']} "
        f"window={status['pipeline_window']}"
    )
    if target is not None:
        cfg = get_entry(target).config
        print(
            f"{target} tuned config: chunk={cfg.chunk_bytes} "
            f"window={cfg.pipeline_window}; converged="
            f"{status['converged']}"
        )
    if not status["converged"]:
        print("FAIL: live knobs did not reach the tuned neighbourhood",
              file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, render_summary

    try:
        spans = read_jsonl(args.tracefile)
    except OSError as exc:
        print(f"error: cannot read {args.tracefile}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(
            f"error: {args.tracefile} is not a span log: {exc}",
            file=sys.stderr,
        )
        return 2
    if not spans:
        print(f"no spans in {args.tracefile}")
        return 1
    print(render_summary(spans, title=f"Span summary: {args.tracefile}"))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(
        args.url,
        interval=args.interval,
        iterations=1 if args.once else args.iterations,
        clear=not args.no_clear,
        sort=args.sort,
    )


def _cmd_postmortem(args: argparse.Namespace) -> int:
    from repro.obs import read_postmortem, render_postmortem

    try:
        dump = read_postmortem(args.dumpfile)
    except OSError as exc:
        print(f"error: cannot read {args.dumpfile}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(
            f"error: {args.dumpfile} is not a postmortem dump: {exc}",
            file=sys.stderr,
        )
        return 2
    print(render_postmortem(dump, last_events=args.events))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import TraceAssembler, read_jsonl
    from repro.obs.causal import CAUSAL_PHASES, PHASE_SCHED_WAIT
    from repro.reporting import render_table

    # -- collect spans: recorded logs or a live run ------------------------
    spans = []
    if args.trace_in:
        for path in args.trace_in:
            try:
                spans.extend(read_jsonl(path))
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            except (ValueError, KeyError, TypeError) as exc:
                print(
                    f"error: {path} is not a span log: {exc}", file=sys.stderr
                )
                return 2
        source = ", ".join(args.trace_in)
    else:
        from repro.obs import Tracer
        from repro.testbed import FunctionalRunner
        from repro.testbed.simulated import case_by_name

        case = case_by_name(args.case.upper())
        tracer = Tracer()
        with FunctionalRunner(tracer=tracer) as runner:
            runner.run(
                case,
                args.size,
                pipeline=args.pipeline,
                chunk_bytes=args.chunk_bytes,
                chunking=not args.no_chunking,
            )
        spans = list(tracer.spans)
        mode = "pipelined" if args.pipeline else "synchronous"
        source = f"live {case.name} size {args.size} ({mode})"
    if not spans:
        print("error: no spans to assemble", file=sys.stderr)
        return 2

    flight_events = []
    if args.flight_in:
        from repro.obs import read_postmortem

        try:
            flight_events = read_postmortem(args.flight_in).get("events", [])
        except OSError as exc:
            print(
                f"error: cannot read {args.flight_in}: {exc}", file=sys.stderr
            )
            return 2

    trace = TraceAssembler(flight_events=flight_events).assemble(spans)
    if not trace.nodes:
        print("error: no client spans assembled into requests", file=sys.stderr)
        return 2

    # -- optional model reconciliation -------------------------------------
    monitor = None
    if args.against_model:
        from repro.model.calibration import default_calibration
        from repro.net.spec import get_network
        from repro.obs import ConformanceMonitor
        from repro.testbed.simulated import case_by_name

        monitor = ConformanceMonitor(get_network(args.against_model))
        if args.case:
            monitor.set_workload(
                case_by_name(args.case.upper()),
                args.size,
                calibration=default_calibration(),
            )

    def describe_node(node) -> None:
        wall_ms = node.wall_seconds * 1e3
        marks = []
        if node.streamed:
            chunks = int(node.client.attrs.get("chunks", 0) or 0)
            marks.append(f"streamed, {chunks} chunks")
        if node.deferred:
            marks.append("deferred-ack")
        if node.tenant:
            marks.append(f"tenant {node.tenant}")
        suffix = f" ({'; '.join(marks)})" if marks else ""
        print(
            f"request {node.session}:{node.seq} {node.name} "
            f"wall {wall_ms:.3f} ms{suffix}"
        )
        predicted = (
            monitor.predict_stage_seconds(node.client)
            if monitor is not None else None
        )
        headers = ["Phase", "Time (ms)", "Share (%)"]
        if predicted is not None:
            headers += ["Model (ms)", "Gap (ms)"]
        rows = []
        worst = None
        for phase in CAUSAL_PHASES:
            seconds = node.segments.get(phase, 0.0)
            row = [
                phase,
                seconds * 1e3,
                100.0 * seconds / node.wall_seconds
                if node.wall_seconds > 0 else 0.0,
            ]
            if predicted is not None:
                model = predicted.get(phase, 0.0)
                gap = seconds - model
                row += [model * 1e3, gap * 1e3]
                if worst is None or abs(gap) > abs(worst[1]):
                    worst = (phase, gap)
            rows.append(row)
        print(render_table(headers, rows, digits=3))
        print(
            f"  attributed: {100.0 * node.attributed_fraction:.2f}% of "
            "wall time carries a named phase"
        )
        if predicted is not None:
            total = predicted.get("total", 0.0)
            print(
                f"  model total: {total * 1e3:.3f} ms "
                f"(measured/model "
                f"{node.wall_seconds / total:.2f}x)"
                if total > 0 else "  model total: n/a"
            )
            if worst is not None and abs(worst[1]) > 0:
                direction = "over" if worst[1] > 0 else "under"
                print(
                    f"  drift localized to: {worst[0]} "
                    f"({abs(worst[1]) * 1e3:.3f} ms {direction} the model)"
                )
            if node.streamed and args.against_model:
                from repro.obs.causal import stream_bound_stage

                bound = stream_bound_stage(node, args.against_model)
                print(
                    f"  pipeline bound stage: {bound['bound_stage']} "
                    f"(network {bound['network_seconds'] * 1e3:.3f} ms vs "
                    f"device {bound['device_seconds'] * 1e3:.3f} ms over "
                    f"{bound['chunks']} chunks; "
                    f"bound {bound['bound_seconds'] * 1e3:.3f} ms)"
                )
        if node.dominant_phase() == PHASE_SCHED_WAIT:
            blamed = trace.blame_scheduler(node)
            if blamed is not None:
                print(
                    "  scheduler wait dominated; blamed batch: tenant "
                    f"{blamed.get('tenant', '?')} ran "
                    f"{blamed.get('launches', 0)} launches "
                    f"({blamed.get('coalesced', 0)} coalesced, "
                    f"{blamed.get('contenders', 0)} contenders)"
                )
            else:
                print(
                    "  scheduler wait dominated (no flight events loaded; "
                    "pass --flight-in to name the batch)"
                )

    print(
        f"assembled {len(trace.nodes)} requests from {len(spans)} spans "
        f"({source})"
    )
    for c_session, s_session in sorted(trace.pairing.items()):
        offset = trace.offsets.get(c_session, 0.0)
        skew = f", clock skew {offset * 1e3:+.3f} ms" if offset else ""
        print(f"  {c_session} <-> {s_session}{skew}")
    if trace.orphan_client or trace.orphan_server:
        print(
            f"  orphans: {len(trace.orphan_client)} client, "
            f"{len(trace.orphan_server)} server spans unmatched"
        )
    print()

    if args.chrome_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(spans, args.chrome_out, flows=trace.flows())
        print(
            f"chrome trace with causal flow arrows: {args.chrome_out} "
            "(load in Perfetto)"
        )
        print()

    if args.request:
        session, _, seq_text = args.request.rpartition(":")
        try:
            seq = int(seq_text)
        except ValueError:
            print(
                f"error: --request wants session:seq, got {args.request!r}",
                file=sys.stderr,
            )
            return 2
        node = trace.node(session, seq)
        if node is None:
            print(
                f"error: no assembled request {session}:{seq} "
                f"(sessions: {', '.join(trace.sessions())})",
                file=sys.stderr,
            )
            return 2
        describe_node(node)
        return 0

    # -- the breakdown over the whole trace --------------------------------
    totals = trace.phase_totals()
    grand = sum(totals.values())
    rows = [
        [phase, totals.get(phase, 0.0) * 1e3,
         100.0 * totals.get(phase, 0.0) / grand if grand > 0 else 0.0]
        for phase in CAUSAL_PHASES
    ]
    print(render_table(
        ["Phase", "Time (ms)", "Share (%)"],
        rows,
        title="Phase attribution across all requests",
        digits=3,
    ))
    print()
    cp = trace.critical_path()
    if cp.total_seconds > 0:
        rows = [
            [phase, seconds * 1e3, 100.0 * seconds / cp.total_seconds]
            for phase, seconds in sorted(
                cp.phase_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        print(render_table(
            ["Phase", "Time (ms)", "Share (%)"],
            rows,
            title=(
                f"Critical path ({cp.total_seconds * 1e3:.3f} ms; "
                f"dominant: {cp.dominant_phase()})"
            ),
            digits=3,
        ))
        print()
    for node in trace.top(args.top_k):
        describe_node(node)
        print()
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.model.whatif import custom_network, minimum_viable_bandwidth, what_if
    from repro.testbed.simulated import case_by_name

    case = case_by_name(args.case.upper())
    spec = custom_network(
        "what-if", args.bandwidth, base_latency_us=args.base_latency_us
    )
    report = what_if(case, args.size, spec)
    print(
        f"{case.name} size {args.size} over a {args.bandwidth:.0f} MiB/s "
        f"network (base latency {args.base_latency_us} us):"
    )
    print(f"  predicted rCUDA execution: {report.predicted_seconds:.3f} s")
    print(f"  per-copy transfer:         {report.per_copy_transfer_seconds * 1e3:.1f} ms")
    print(f"  local GPU:                 {report.local_gpu_seconds:.3f} s "
          f"({100 * report.slowdown_vs_local_gpu:+.1f}% vs remote)")
    print(f"  8-core CPU:                {report.local_cpu_seconds:.3f} s "
          f"({report.speedup_vs_cpu:.2f}x remote speedup)")
    print(f"  worthwhile vs CPU:         {'yes' if report.worthwhile else 'no'}")
    from repro.errors import ConfigurationError

    try:
        threshold = minimum_viable_bandwidth(
            case, args.size, max_slowdown_vs_gpu=args.budget
        )
    except ConfigurationError:
        # A legitimate finding, not a failure: no interconnect can meet
        # the budget because the network is not the bottleneck (the
        # paper's verdict on the FFT).
        print(
            f"  min bandwidth for <={100 * args.budget:.0f}% slowdown vs "
            "local GPU: none -- the remoting overhead itself exceeds the "
            "budget; no interconnect can fix this workload"
        )
    else:
        print(
            f"  min bandwidth for <={100 * args.budget:.0f}% slowdown vs "
            f"local GPU: {threshold:.0f} MiB/s"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import (
        all_passed,
        render_scorecard,
        validate_all,
    )

    rows = validate_all()
    print(render_scorecard(rows))
    return 0 if all_passed(rows) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, write_chrome_trace, write_jsonl
    from repro.reporting import render_table
    from repro.testbed import SimulatedTestbed
    from repro.testbed.simulated import case_by_name

    case = case_by_name(args.case.upper())
    testbed = SimulatedTestbed()
    tracer = Tracer() if (args.trace_out or args.chrome_out) else None
    run = testbed.measure_remote(case, args.size, args.network, tracer=tracer)
    rows = [
        [phase, seconds * 1e3, 100.0 * seconds / run.total_seconds]
        for phase, seconds in run.trace.by_phase().items()
    ]
    print(
        render_table(
            ["Phase", "Time (ms)", "Share (%)"],
            rows,
            title=(
                f"{case.name} size {args.size} over {args.network}: "
                f"{run.total_seconds:.3f} s total"
            ),
            digits=1,
        )
    )
    print(
        f"\nbreakdown: network {run.trace.network_seconds * 1e3:.1f} ms, "
        f"device {run.trace.device_seconds * 1e3:.1f} ms, "
        f"host {run.trace.host_seconds * 1e3:.1f} ms"
    )
    if tracer is not None:
        if args.trace_out:
            write_jsonl(tracer.spans, args.trace_out)
            print(f"span log: {args.trace_out} ({len(tracer.spans)} spans)")
        if args.chrome_out:
            write_chrome_trace(tracer.spans, args.chrome_out)
            print(f"chrome trace: {args.chrome_out} (load in Perfetto)")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import provisioning_sweep, workload_mix
    from repro.cluster.provisioning import best_by_performance_per_cost
    from repro.reporting import render_table

    jobs = workload_mix(
        args.jobs,
        network=args.network,
        mean_interarrival_seconds=args.interarrival,
        seed=args.seed,
    )
    points = provisioning_sweep(args.nodes, jobs)
    rows = [
        [p.num_gpus, p.makespan_seconds, p.mean_response_seconds,
         p.mean_slowdown, p.mean_utilization, p.cost, p.performance_per_cost]
        for p in points
    ]
    print(
        render_table(
            ["GPUs", "Makespan (s)", "Mean resp (s)", "Slowdown",
             "Utilization", "Cost", "Perf/cost"],
            rows,
            title=f"Provisioning sweep: {args.nodes} nodes, {args.jobs} jobs "
            f"over {args.network}",
            digits=4,
        )
    )
    best = best_by_performance_per_cost(points)
    print(f"\nbest performance per cost: {best.num_gpus} GPUs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rCUDA ICPP 2011 reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="+", help="table1..table6 figure3..figure6, or 'all'")
    p.add_argument("--outdir", default=None, help="write text + CSV artifacts here")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("pingpong", help="characterize a network link")
    p.add_argument("network", nargs="?", default="GigaE",
                   help="GigaE, 40GI, 10GE, 10GI, Myr, F-HT, A-HT")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--real", action="store_true",
                   help="measure real loopback TCP instead of a model")
    p.set_defaults(func=_cmd_pingpong)

    p = sub.add_parser("serve", help="run an rCUDA daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8308)
    p.add_argument("--metrics-port", type=int, default=None,
                   help="expose Prometheus metrics on this port (0 = ephemeral)")
    p.add_argument("--log-json", default=None, metavar="FILE",
                   help="stream server spans to FILE as JSONL")
    p.add_argument("--run-seconds", type=float, default=None,
                   help="serve for this long then exit (default: forever)")
    p.add_argument("--slo", action="append", default=None, metavar="SPEC",
                   help="SLO objective as name:metric:pQQ<=threshold"
                        "[:call[:phase]] (repeatable; default: built-ins)")
    p.add_argument("--network-label", default="local",
                   help="network label on SLO quantile series")
    p.add_argument("--postmortem-dir", default=None, metavar="DIR",
                   help="write flight-recorder crash dumps here on unclean "
                        "session ends (also honours $REPRO_POSTMORTEM_DIR)")
    p.add_argument("--async", dest="use_async", action="store_true",
                   help="serve from the selector event loop (thousands of "
                        "multiplexed sessions, one I/O thread) instead of "
                        "a thread per connection")
    p.add_argument("--max-sessions", type=int, default=None, metavar="N",
                   help="admission control: refuse connections past N live "
                        "sessions with a clean protocol error")
    p.add_argument("--idle-timeout", type=float, default=None, metavar="SEC",
                   help="(--async only) close sessions idle for SEC seconds "
                        "with a clean keepalive close")
    p.add_argument("--share-device", type=int, default=None, metavar="N",
                   help="pool N shared devices and attach every session as "
                        "a tenant (fair-share launch scheduling, per-tenant "
                        "metrics); default: one private device per daemon")
    p.add_argument("--quota-bytes", type=int, default=None, metavar="B",
                   help="(--share-device only) per-tenant device memory "
                        "quota; an over-quota cudaMalloc fails with "
                        "cudaErrorMemoryAllocation")
    p.add_argument("--sched", choices=["fair", "fifo"], default="fair",
                   help="(--share-device only) launch scheduling policy: "
                        "deficit-round-robin with batching (fair, default) "
                        "or naive arrival-order dispatch (fifo)")
    p.add_argument("--profile", default=None, metavar="NETWORK",
                   help="load the shipped tuned config for this network "
                        "(socket buffers, malloc policy, coalesce width "
                        "apply daemon-side; surfaced on /healthz)")
    p.add_argument("--socket-buffer-bytes", type=int, default=None,
                   metavar="B",
                   help="SO_RCVBUF/SO_SNDBUF floor for accepted "
                        "connections (default 4 MiB; wins over "
                        "--profile's tuned value)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "top", help="live dashboard over a serving daemon's endpoints"
    )
    p.add_argument("--url", default="http://127.0.0.1:9090",
                   help="base URL of the daemon's metrics endpoint")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after this many frames (default: forever)")
    p.add_argument("--no-clear", action="store_true",
                   help="do not clear the screen between frames")
    p.add_argument("--sort", default=None,
                   choices=["session", "reqs", "held", "in", "out",
                            "launches", "quota", "wait", "coalesced"],
                   help="order session rows by this column (tenant columns "
                        "need a daemon running --share-device)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "postmortem", help="render a flight-recorder crash dump"
    )
    p.add_argument("dumpfile", help="path to a postmortem-*.json dump")
    p.add_argument("--events", type=int, default=40,
                   help="timeline events to show (default: 40)")
    p.set_defaults(func=_cmd_postmortem)

    p = sub.add_parser("run", help="one functional remote execution")
    p.add_argument("case", choices=["mm", "fft", "MM", "FFT"])
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tcp", action="store_true", help="use real TCP sockets")
    p.add_argument("--pipeline", action="store_true",
                   help="run over the deferred-ack pipelined hot path")
    p.add_argument("--chunk-bytes", type=int, default=None, metavar="N",
                   help="pin the streaming frame size for large copies "
                        "(default: adapted to the bottleneck link)")
    p.add_argument("--no-chunking", action="store_true",
                   help="keep every copy monolithic (disable streaming)")
    p.add_argument("--profile", default=None, metavar="NETWORK",
                   help="load the shipped tuned transfer config for this "
                        "network (explicit knobs above still win)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write client+server spans to FILE as JSONL")
    p.add_argument("--chrome-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON with runtime "
                        "counter tracks (Perfetto-loadable)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "drift",
        help="model conformance: predicted vs measured per call class",
    )
    p.add_argument("cases", nargs="*", default=["mm", "fft"],
                   help="case studies to run (default: mm fft)")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--network", default="40GI",
                   help="network model to predict against")
    p.add_argument("--pipeline", action="store_true",
                   help="run the functional case over the pipelined path")
    p.add_argument("--chunk-bytes", type=int, default=None, metavar="N",
                   help="pin the streaming frame size for large copies")
    p.add_argument("--no-chunking", action="store_true",
                   help="keep every copy monolithic (disable streaming)")
    p.add_argument("--profile", default=None, metavar="NETWORK",
                   help="load the shipped tuned transfer config for this "
                        "network (explicit knobs above still win)")
    p.add_argument("--simulated", action="store_true",
                   help="use the virtual-clock simulated testbed instead "
                        "of a functional run (in-band by construction)")
    p.add_argument("--fail-on-drift", action="store_true",
                   help="exit 1 when any series leaves the drift band")
    p.set_defaults(func=_cmd_drift)

    p = sub.add_parser(
        "tune",
        help="search the transfer/pipeline knob space per network "
             "(or gate/demo the shipped tuned table)",
    )
    p.add_argument("--networks", nargs="*", default=None, metavar="NAME",
                   help="networks to tune (default: all seven)")
    p.add_argument("--seed", type=int, default=0,
                   help="search seed (the shipped table uses 0)")
    p.add_argument("--out", default="BENCH_tuning.json", metavar="FILE",
                   help="write the full trial log here")
    p.add_argument("--verbose", action="store_true",
                   help="narrate every search stage")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: re-evaluate the committed table on the "
                        "quick workload subset and fail on regression")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="(--quick) allowed regression vs the recorded "
                        "score (default: 0.05)")
    p.add_argument("--retune-demo", action="store_true",
                   help="online demo: wrong profile on a link, drift "
                        "fires, live knobs step to the tuned config")
    p.add_argument("--link", default="GigaE",
                   help="(--retune-demo) the actual link")
    p.add_argument("--assume", default="40GI",
                   help="(--retune-demo) the wrong profile the session "
                        "starts with")
    p.add_argument("--copies", type=int, default=24,
                   help="(--retune-demo) streamed copies to run")
    p.add_argument("--copy-bytes", type=int, default=8 << 20,
                   help="(--retune-demo) bytes per streamed copy")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "stats", help="summarize a JSONL span log written by run/serve"
    )
    p.add_argument("tracefile", help="path to a .jsonl span log")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "explain",
        help="assemble client+server spans into causal request trees "
             "and explain where each request's wall time went",
    )
    p.add_argument("--trace-in", action="append", default=None,
                   metavar="FILE",
                   help="JSONL span log(s) to assemble (repeatable: pass "
                        "the client and server logs of one run); default: "
                        "perform a live functional run instead")
    p.add_argument("--case", default="mm",
                   help="(live run / --against-model) case study (mm, fft)")
    p.add_argument("--size", type=int, default=256,
                   help="(live run / --against-model) problem size")
    p.add_argument("--pipeline", action="store_true",
                   help="(live run) use the deferred-ack pipelined path")
    p.add_argument("--chunk-bytes", type=int, default=None, metavar="N",
                   help="(live run) pin the streaming frame size")
    p.add_argument("--no-chunking", action="store_true",
                   help="(live run) keep every copy monolithic")
    p.add_argument("--request", default=None, metavar="SESSION:SEQ",
                   help="explain this one request instead of the overview")
    p.add_argument("--top-k", type=int, default=3,
                   help="slowest requests to break down (default: 3)")
    p.add_argument("--against-model", default=None, metavar="NETWORK",
                   help="reconcile each breakdown against the paper "
                        "model's per-stage prediction for this network")
    p.add_argument("--flight-in", default=None, metavar="DUMP",
                   help="postmortem dump whose flight events name the "
                        "blamed tenant batch when scheduler wait dominates")
    p.add_argument("--chrome-out", default=None, metavar="FILE",
                   help="write the assembled trace as Chrome trace-event "
                        "JSON with causal flow arrows (Perfetto-loadable)")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "whatif",
        help="predict rCUDA performance on a network you describe",
    )
    p.add_argument("case", choices=["mm", "fft", "MM", "FFT"])
    p.add_argument("--size", type=int, default=12288)
    p.add_argument("--bandwidth", type=float, required=True,
                   help="effective one-way bandwidth in MiB/s")
    p.add_argument("--base-latency-us", type=float, default=5.0)
    p.add_argument("--budget", type=float, default=0.25,
                   help="slowdown budget vs a local GPU")
    p.set_defaults(func=_cmd_whatif)

    p = sub.add_parser(
        "validate",
        help="regenerate every artifact and check agreement budgets",
    )
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("trace", help="phase breakdown of one simulated run")
    p.add_argument("case", choices=["mm", "fft", "MM", "FFT"])
    p.add_argument("--size", type=int, default=8192)
    p.add_argument("--network", default="40GI")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write virtual-clock spans to FILE as JSONL")
    p.add_argument("--chrome-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON (Perfetto-loadable)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("cluster", help="GPU provisioning sweep")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--jobs", type=int, default=100)
    p.add_argument("--network", default="40GI")
    p.add_argument("--interarrival", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_cluster)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # ``repro postmortem dump | head`` closes stdout early; exit
        # quietly the way well-behaved Unix filters do.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
