"""GPU provisioning: how many accelerators does the cluster need?

The paper's economic argument, quantified: sweep the number of GPU
servers from 1 to the node count, run the same workload through the
cluster simulation, and report performance against an acquisition +
energy cost model (the paper notes a GPU "may well rate 25% of [the
power] of an HPC node").  The knee of the resulting curve is the
configuration the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.job import GpuJob
from repro.cluster.node import build_cluster
from repro.cluster.scheduler import LeastLoadedPolicy, PlacementPolicy
from repro.cluster.simulation import ClusterSimulation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Relative cluster cost: nodes plus their accelerators.

    Defaults: a node costs 1.0 unit; a GPU adds 0.25 (the paper's power
    observation used as the energy proxy) plus 0.35 acquisition -- the
    absolute numbers matter less than the trend, and both are
    constructor-tunable.
    """

    node_cost: float = 1.0
    gpu_energy_cost: float = 0.25
    gpu_acquisition_cost: float = 0.35

    def cluster_cost(self, num_nodes: int, num_gpus: int) -> float:
        per_gpu = self.gpu_energy_cost + self.gpu_acquisition_cost
        return num_nodes * self.node_cost + num_gpus * per_gpu


@dataclass(frozen=True)
class ProvisioningPoint:
    """One configuration of the sweep."""

    num_nodes: int
    num_gpus: int
    makespan_seconds: float
    mean_response_seconds: float
    mean_slowdown: float
    mean_utilization: float
    cost: float

    @property
    def performance_per_cost(self) -> float:
        """Throughput proxy (1/makespan) per cost unit."""
        return 1.0 / (self.makespan_seconds * self.cost)


def provisioning_sweep(
    num_nodes: int,
    jobs: Sequence[GpuJob],
    gpu_counts: Sequence[int] | None = None,
    policy_factory=LeastLoadedPolicy,
    cost_model: CostModel | None = None,
    gpus_per_server: int = 1,
) -> list[ProvisioningPoint]:
    """Evaluate the workload under different GPU-server counts.

    ``policy_factory`` builds a fresh policy per configuration (policies
    such as round-robin carry state).  ``gpus_per_server`` > 1 sweeps
    multi-GPU server configurations (the paper's future work); the cost
    model then charges ``servers * gpus_per_server`` accelerators.
    """
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    cost_model = cost_model if cost_model is not None else CostModel()
    if gpu_counts is None:
        gpu_counts = sorted(
            {1, max(1, num_nodes // 8), max(1, num_nodes // 4),
             max(1, num_nodes // 2), num_nodes}
        )
    points: list[ProvisioningPoint] = []
    for num_servers in gpu_counts:
        cluster = build_cluster(num_nodes, num_servers, gpus_per_server)
        policy: PlacementPolicy = policy_factory()
        report = ClusterSimulation(cluster, policy).run(jobs)
        mean_util = sum(report.utilization.values()) / len(report.utilization)
        total_gpus = num_servers * gpus_per_server
        points.append(
            ProvisioningPoint(
                num_nodes=num_nodes,
                num_gpus=total_gpus,
                makespan_seconds=report.makespan_seconds,
                mean_response_seconds=report.mean_response_seconds,
                mean_slowdown=report.mean_slowdown,
                mean_utilization=mean_util,
                cost=cost_model.cluster_cost(num_nodes, total_gpus),
            )
        )
    return points


def best_by_performance_per_cost(
    points: Sequence[ProvisioningPoint],
) -> ProvisioningPoint:
    """The sweep's knee under the throughput-per-cost metric."""
    if not points:
        raise ConfigurationError("empty sweep")
    return max(points, key=lambda p: p.performance_per_cost)
