"""Discrete-event cluster simulation with processor-sharing GPU servers.

Each GPU server runs its ``k`` active sessions at per-job rate
``min(1, g/k)`` for ``g`` on-board GPUs (rCUDA's time-multiplexing over
per-session contexts; ``g = 1`` is the paper's configuration); events are
job arrivals and completions.  The simulation is exact for this model:
between events, every active job on a server progresses linearly, so the
next completion time per server is a simple minimum over remaining work.

For phase-resolved simulation (network vs GPU contention separated, with
fabric topologies) see :mod:`repro.cluster.phased`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.job import GpuJob, JobOutcome
from repro.cluster.node import ClusterNode, GpuServer
from repro.cluster.scheduler import PlacementPolicy, Scheduler
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate results of one run."""

    outcomes: tuple[JobOutcome, ...]
    makespan_seconds: float
    mean_response_seconds: float
    max_response_seconds: float
    mean_slowdown: float
    #: server name -> busy fraction over the makespan.
    utilization: dict[str, float]

    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)


@dataclass
class _ActiveJob:
    job: GpuJob
    server: GpuServer
    start: float
    remaining: float


class ClusterSimulation:
    """One cluster + one scheduler policy, simulating a job list."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        policy: PlacementPolicy | None = None,
    ) -> None:
        gpu_nodes = [n for n in nodes if n.has_gpu]
        if not gpu_nodes:
            raise ConfigurationError("the cluster has no GPU nodes")
        self.nodes = list(nodes)
        self.servers = [GpuServer(node=n) for n in gpu_nodes]
        self.scheduler = Scheduler(self.servers, policy)

    def run(self, jobs: Sequence[GpuJob]) -> SimulationReport:
        if not jobs:
            raise ConfigurationError("no jobs to simulate")
        pending = sorted(jobs, key=lambda j: (j.submit_seconds, j.job_id))
        arrivals = list(reversed(pending))  # pop() from the end
        active: dict[int, _ActiveJob] = {}
        per_server: dict[str, list[_ActiveJob]] = {
            s.name: [] for s in self.servers
        }
        outcomes: list[JobOutcome] = []
        now = 0.0

        def next_completion() -> tuple[float, _ActiveJob] | None:
            best: tuple[float, _ActiveJob] | None = None
            for server in self.servers:
                jobs_here = per_server[server.name]
                if not jobs_here:
                    continue
                rate = min(1.0, server.gpu_count / len(jobs_here))
                soonest = min(jobs_here, key=lambda a: (a.remaining, a.job.job_id))
                # Clamp float drift: remaining work can underflow to a
                # tiny negative after many fractional-rate decrements.
                t = now + max(soonest.remaining, 0.0) / rate
                if best is None or t < best[0]:
                    best = (t, soonest)
            return best

        def advance_to(t: float) -> None:
            nonlocal now
            dt = t - now
            if dt < 0:
                if dt < -1e-9 * max(1.0, now):
                    raise ConfigurationError(
                        "simulation time went backwards"
                    )
                dt = 0.0
                t = now
            for server in self.servers:
                jobs_here = per_server[server.name]
                if jobs_here:
                    rate = min(1.0, server.gpu_count / len(jobs_here))
                    for a in jobs_here:
                        a.remaining -= dt * rate
                    # Busy time counts device-seconds actually consumed,
                    # normalized per GPU so utilization stays in [0, 1].
                    consumed = dt * rate * len(jobs_here)
                    server.busy_seconds += consumed / server.gpu_count
            now = t

        while arrivals or active:
            completion = next_completion()
            next_arrival = arrivals[-1].submit_seconds if arrivals else None
            if next_arrival is not None and (
                completion is None or next_arrival <= completion[0]
            ):
                advance_to(next_arrival)
                job = arrivals.pop()
                server = self.scheduler.place(job)
                entry = _ActiveJob(
                    job=job, server=server, start=now, remaining=job.service_seconds
                )
                active[job.job_id] = entry
                per_server[server.name].append(entry)
                server.active_jobs.add(job.job_id)
            else:
                assert completion is not None
                t, entry = completion
                advance_to(t)
                # Guard against float drift: clamp the finished job.
                entry.remaining = 0.0
                per_server[entry.server.name].remove(entry)
                entry.server.active_jobs.discard(entry.job.job_id)
                entry.server.served_jobs += 1
                del active[entry.job.job_id]
                outcomes.append(
                    JobOutcome(
                        job=entry.job,
                        server=entry.server.name,
                        start_seconds=entry.start,
                        finish_seconds=now,
                    )
                )

        makespan = max(o.finish_seconds for o in outcomes)
        responses = [o.response_seconds for o in outcomes]
        slowdowns = [o.slowdown for o in outcomes]
        utilization = {
            s.name: (s.busy_seconds / makespan if makespan > 0 else 0.0)
            for s in self.servers
        }
        return SimulationReport(
            outcomes=tuple(sorted(outcomes, key=lambda o: o.job.job_id)),
            makespan_seconds=makespan,
            mean_response_seconds=sum(responses) / len(responses),
            max_response_seconds=max(responses),
            mean_slowdown=sum(slowdowns) / len(slowdowns),
            utilization=utilization,
        )
