"""Cluster topology: nodes, of which a few are GPU servers (Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterNode:
    """One node; GPU-equipped nodes also run the rCUDA daemon.

    ``gpu_count`` > 1 models a multi-GPU server (the paper's future work:
    "Scheduling of multiple GPUs being simultaneously accessed by several
    applications also needs to be addressed").
    """

    name: str
    has_gpu: bool = False
    gpu_count: int = 1

    def __post_init__(self) -> None:
        if self.has_gpu and self.gpu_count < 1:
            raise ConfigurationError(
                f"{self.name}: a GPU node needs at least one GPU"
            )


@dataclass
class GpuServer:
    """Runtime state of one GPU server during a simulation.

    rCUDA time-multiplexes concurrent sessions over separate GPU
    contexts; we model that as processor sharing across the server's
    ``g`` GPUs: with ``k`` active jobs each progresses at rate
    ``min(1, g / k)`` (k <= g jobs run at full speed on their own
    device; beyond that the devices are shared).
    """

    node: ClusterNode
    active_jobs: set[int] = field(default_factory=set)
    busy_seconds: float = 0.0
    served_jobs: int = 0

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def gpu_count(self) -> int:
        return self.node.gpu_count

    @property
    def load(self) -> int:
        return len(self.active_jobs)

    def rate(self) -> float:
        """Per-job progress rate under processor sharing over g GPUs."""
        if not self.active_jobs:
            return 0.0
        return min(1.0, self.gpu_count / self.load)


def build_cluster(
    num_nodes: int, num_gpu_servers: int, gpus_per_server: int = 1
) -> list[ClusterNode]:
    """A cluster of ``num_nodes`` with the first ``num_gpu_servers``
    hosting ``gpus_per_server`` GPUs each (the paper's hybrid
    configuration; one GPU in every node is the fully-equipped
    baseline)."""
    if num_nodes <= 0:
        raise ConfigurationError("a cluster needs at least one node")
    if not 0 < num_gpu_servers <= num_nodes:
        raise ConfigurationError(
            f"GPU server count must be in [1, {num_nodes}], "
            f"got {num_gpu_servers}"
        )
    if gpus_per_server < 1:
        raise ConfigurationError(
            f"gpus_per_server must be >= 1, got {gpus_per_server}"
        )
    return [
        ClusterNode(
            name=f"node{i:03d}",
            has_gpu=i < num_gpu_servers,
            gpu_count=gpus_per_server if i < num_gpu_servers else 0,
        )
        for i in range(num_nodes)
    ]
