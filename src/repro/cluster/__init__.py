"""The distributed acceleration architecture (Figure 1) at cluster scale.

The paper's motivation: equip only a few nodes with GPUs, let every node
use them through rCUDA, and trade a small slowdown for large acquisition,
maintenance and energy savings.  Its future work: scheduling multiple
applications onto shared GPU servers, and the network contention they
cause.  This package implements both:

* :mod:`repro.cluster.job` / :mod:`repro.cluster.node` -- workloads and
  cluster topology;
* :mod:`repro.cluster.scheduler` -- the global scheduler the paper says a
  less-GPUs-than-nodes cluster needs, with pluggable placement policies;
* :mod:`repro.cluster.simulation` -- a discrete-event simulation with
  processor-sharing GPU servers (rCUDA time-multiplexes sessions, one
  context per client);
* :mod:`repro.cluster.provisioning` -- the "how many GPUs does this
  cluster actually need" sweep, with the paper's energy observation (a
  GPU may rate 25% of a node's power) as the default cost model.
"""

from repro.cluster.contention import (
    ContentionPoint,
    contention_sweep,
    max_clients_within_slowdown,
)
from repro.cluster.job import GpuJob, JobOutcome, workload_mix
from repro.cluster.node import ClusterNode, GpuServer, build_cluster
from repro.cluster.provisioning import ProvisioningPoint, provisioning_sweep
from repro.cluster.scheduler import (
    LeastLoadedPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    Scheduler,
)
from repro.cluster.phased import (
    PhasedClusterSimulation,
    PhasedJob,
    PhasedReport,
    phased_job_from_testbed,
)
from repro.cluster.simulation import ClusterSimulation, SimulationReport
from repro.cluster.topology import ClusterTopology, topology_contention_report

__all__ = [
    "ClusterNode",
    "ClusterSimulation",
    "ClusterTopology",
    "ContentionPoint",
    "GpuJob",
    "GpuServer",
    "JobOutcome",
    "LeastLoadedPolicy",
    "PhasedClusterSimulation",
    "PhasedJob",
    "PhasedReport",
    "phased_job_from_testbed",
    "PlacementPolicy",
    "ProvisioningPoint",
    "provisioning_sweep",
    "RoundRobinPolicy",
    "Scheduler",
    "SimulationReport",
    "build_cluster",
    "contention_sweep",
    "max_clients_within_slowdown",
    "topology_contention_report",
    "workload_mix",
]
