"""Phased cluster simulation: GPU sharing and link sharing, together.

:mod:`repro.cluster.simulation` treats a job as one lump of
processor-shared service; good for provisioning curves, blind to *where*
time is spent.  This simulator splits every job into the three phases the
trace model distinguishes --

* **host**: client-side work (data generation, middleware management);
  never contended, every client runs on its own node;
* **net**: the session's wire traffic, fair-shared on the fabric via
  :class:`~repro.cluster.topology.ClusterTopology` min-share rates,
  recomputed at every event as flows come and go;
* **gpu**: kernel + PCIe on the server, processor-shared across the
  server's GPUs (rate ``min(1, g/k)``);

-- and plays them in order per job.  Between events every rate is
constant, so the simulation is exact for this model.  It answers the
questions the aggregate simulator cannot: does the fabric or the GPU
saturate first, and which placement spreads the load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.topology import ClusterTopology, Flow
from repro.errors import ConfigurationError

PHASES = ("host", "net", "gpu")


@dataclass(frozen=True)
class PhasedJob:
    """One session with per-phase demands."""

    job_id: int
    client: str
    server: str
    submit_seconds: float
    host_seconds: float
    net_seconds: float
    gpu_seconds: float

    def __post_init__(self) -> None:
        if self.submit_seconds < 0:
            raise ConfigurationError(
                f"job {self.job_id}: submit time must be non-negative"
            )
        for name in ("host_seconds", "net_seconds", "gpu_seconds"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"job {self.job_id}: {name} must be non-negative"
                )
        if self.host_seconds + self.net_seconds + self.gpu_seconds <= 0:
            raise ConfigurationError(
                f"job {self.job_id}: total demand must be positive"
            )

    @property
    def total_demand_seconds(self) -> float:
        return self.host_seconds + self.net_seconds + self.gpu_seconds


@dataclass(frozen=True)
class PhasedOutcome:
    """Completion record with the per-phase wall-clock split."""

    job: PhasedJob
    finish_seconds: float
    phase_wall_seconds: dict[str, float]

    @property
    def response_seconds(self) -> float:
        return self.finish_seconds - self.job.submit_seconds

    @property
    def slowdown(self) -> float:
        return self.response_seconds / self.job.total_demand_seconds

    @property
    def net_stretch(self) -> float:
        """Wall time of the net phase over its unshared demand."""
        if self.job.net_seconds == 0:
            return 1.0
        return self.phase_wall_seconds["net"] / self.job.net_seconds


@dataclass
class _Active:
    job: PhasedJob
    phase_index: int = 0
    remaining: float = 0.0
    phase_wall: dict[str, float] = field(
        default_factory=lambda: {p: 0.0 for p in PHASES}
    )

    @property
    def phase(self) -> str:
        return PHASES[self.phase_index]


@dataclass(frozen=True)
class PhasedReport:
    """Aggregate results."""

    outcomes: tuple[PhasedOutcome, ...]
    makespan_seconds: float
    mean_response_seconds: float
    mean_slowdown: float
    mean_net_stretch: float


class PhasedClusterSimulation:
    """Topology-aware, phase-resolved cluster simulation."""

    def __init__(
        self,
        topology: ClusterTopology,
        gpu_servers: dict[str, int],
    ) -> None:
        """``gpu_servers`` maps server node name -> GPU count."""
        if not gpu_servers:
            raise ConfigurationError("at least one GPU server is required")
        for name, count in gpu_servers.items():
            if name not in topology.node_names:
                raise ConfigurationError(f"server {name!r} not in topology")
            if count < 1:
                raise ConfigurationError(f"server {name!r} needs >= 1 GPU")
        self.topology = topology
        self.gpu_servers = dict(gpu_servers)

    # -- rate computation (exact between events) -----------------------------

    def _rates(self, active: list[_Active]) -> dict[int, float]:
        net_jobs = [a for a in active if a.phase == "net"]
        flows: list[Flow] = [(a.job.client, a.job.server) for a in net_jobs]
        net_rates = self.topology.flow_rates(flows) if flows else {}
        gpu_load: dict[str, int] = {}
        for a in active:
            if a.phase == "gpu":
                gpu_load[a.job.server] = gpu_load.get(a.job.server, 0) + 1

        rates: dict[int, float] = {}
        net_index = 0
        for a in active:
            if a.phase == "host":
                rates[a.job.job_id] = 1.0
            elif a.phase == "net":
                rates[a.job.job_id] = net_rates[net_index]
                net_index += 1
            else:
                g = self.gpu_servers[a.job.server]
                rates[a.job.job_id] = min(1.0, g / gpu_load[a.job.server])
        return rates

    @staticmethod
    def _phase_demand(job: PhasedJob, phase: str) -> float:
        return {
            "host": job.host_seconds,
            "net": job.net_seconds,
            "gpu": job.gpu_seconds,
        }[phase]

    def _enter_next_nonempty_phase(self, entry: _Active) -> bool:
        """Advance ``entry`` past zero-demand phases; False when done."""
        while entry.phase_index < len(PHASES):
            demand = self._phase_demand(entry.job, entry.phase)
            if demand > 0:
                entry.remaining = demand
                return True
            entry.phase_index += 1
        return False

    # -- the event loop ---------------------------------------------------------

    def run(self, jobs: Sequence[PhasedJob]) -> PhasedReport:
        if not jobs:
            raise ConfigurationError("no jobs to simulate")
        for job in jobs:
            if job.server not in self.gpu_servers:
                raise ConfigurationError(
                    f"job {job.job_id} targets non-server {job.server!r}"
                )
        arrivals = sorted(
            jobs, key=lambda j: (j.submit_seconds, j.job_id), reverse=True
        )
        active: list[_Active] = []
        outcomes: list[PhasedOutcome] = []
        now = 0.0

        while arrivals or active:
            rates = self._rates(active)
            next_done: tuple[float, _Active] | None = None
            for a in active:
                rate = rates[a.job.job_id]
                t = now + max(a.remaining, 0.0) / rate
                if next_done is None or t < next_done[0]:
                    next_done = (t, a)
            next_arrival = arrivals[-1].submit_seconds if arrivals else None

            if next_arrival is not None and (
                next_done is None or next_arrival <= next_done[0]
            ):
                event_time = next_arrival
            else:
                assert next_done is not None
                event_time = next_done[0]

            dt = max(0.0, event_time - now)
            for a in active:
                progressed = dt * rates[a.job.job_id]
                a.remaining -= progressed
                a.phase_wall[a.phase] += dt
            now = event_time

            if next_arrival is not None and event_time == next_arrival:
                job = arrivals.pop()
                entry = _Active(job=job)
                if self._enter_next_nonempty_phase(entry):
                    active.append(entry)
                else:  # pragma: no cover - guarded by PhasedJob validation
                    raise ConfigurationError("job with no demand")
            else:
                assert next_done is not None
                entry = next_done[1]
                entry.remaining = 0.0
                entry.phase_index += 1
                if not self._enter_next_nonempty_phase(entry):
                    active.remove(entry)
                    outcomes.append(
                        PhasedOutcome(
                            job=entry.job,
                            finish_seconds=now,
                            phase_wall_seconds=dict(entry.phase_wall),
                        )
                    )

        responses = [o.response_seconds for o in outcomes]
        slowdowns = [o.slowdown for o in outcomes]
        stretches = [o.net_stretch for o in outcomes]
        return PhasedReport(
            outcomes=tuple(sorted(outcomes, key=lambda o: o.job.job_id)),
            makespan_seconds=max(o.finish_seconds for o in outcomes),
            mean_response_seconds=sum(responses) / len(responses),
            mean_slowdown=sum(slowdowns) / len(slowdowns),
            mean_net_stretch=sum(stretches) / len(stretches),
        )


def phased_job_from_testbed(
    job_id: int,
    case,
    size: int,
    network: str,
    client: str,
    server: str,
    submit_seconds: float,
    testbed=None,
) -> PhasedJob:
    """Build a phased job with demands from the simulated testbed's
    calibrated components (host / net replay / kernel + PCIe)."""
    from repro.testbed.simulated import SimulatedTestbed

    testbed = testbed if testbed is not None else SimulatedTestbed()
    run = testbed.measure_remote(case, size, network)
    return PhasedJob(
        job_id=job_id,
        client=client,
        server=server,
        submit_seconds=submit_seconds,
        host_seconds=run.trace.host_seconds,
        net_seconds=run.trace.network_seconds,
        gpu_seconds=run.trace.device_seconds,
    )
