"""The global scheduler.

"A configuration where not all the nodes in the cluster have an
accelerator ... requires a global scheduler to map tasks to nodes
according to their hardware requirements" -- unless GPUs are virtualized,
in which case the scheduler's job shrinks to picking *which* GPU server a
session should talk to.  That is the decision implemented here, with
pluggable policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.cluster.job import GpuJob
from repro.cluster.node import GpuServer
from repro.errors import SchedulerError


class PlacementPolicy(ABC):
    """Chooses a GPU server for an arriving session."""

    name: str = "abstract"

    @abstractmethod
    def pick(self, servers: Sequence[GpuServer], job: GpuJob) -> GpuServer:
        """Return the chosen server (servers is non-empty)."""


class RoundRobinPolicy(PlacementPolicy):
    """Cycle through the servers regardless of load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, servers: Sequence[GpuServer], job: GpuJob) -> GpuServer:
        server = servers[self._next % len(servers)]
        self._next += 1
        return server


class LeastLoadedPolicy(PlacementPolicy):
    """Send the session to the server with the fewest active jobs."""

    name = "least-loaded"

    def pick(self, servers: Sequence[GpuServer], job: GpuJob) -> GpuServer:
        return min(servers, key=lambda s: (s.load, s.name))


class RandomPolicy(PlacementPolicy):
    """Uniform random placement (seeded)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, servers: Sequence[GpuServer], job: GpuJob) -> GpuServer:
        return servers[int(self._rng.integers(len(servers)))]


class Scheduler:
    """Applies a policy over the cluster's GPU servers."""

    def __init__(
        self, servers: Sequence[GpuServer], policy: PlacementPolicy | None = None
    ) -> None:
        if not servers:
            raise SchedulerError(
                "the cluster has no GPU servers; nothing can host a session"
            )
        self.servers = list(servers)
        self.policy = policy if policy is not None else LeastLoadedPolicy()

    def place(self, job: GpuJob) -> GpuServer:
        server = self.policy.pick(self.servers, job)
        if server not in self.servers:
            raise SchedulerError(
                f"policy {self.policy.name!r} returned a foreign server"
            )
        return server
