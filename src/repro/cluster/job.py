"""GPU jobs: units of work the cluster scheduler places on GPU servers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.testbed.simulated import SimulatedTestbed, case_by_name


@dataclass(frozen=True)
class GpuJob:
    """One GPU-accelerated execution submitted by some cluster node.

    ``service_seconds`` is the job's demand on an *unshared* GPU server
    (remote execution time over the cluster's interconnect, straight from
    the simulated testbed); sharing dilates it.
    """

    job_id: int
    case_name: str
    size: int
    submit_seconds: float
    service_seconds: float

    def __post_init__(self) -> None:
        if self.service_seconds <= 0:
            raise ConfigurationError(
                f"job {self.job_id}: service time must be positive"
            )
        if self.submit_seconds < 0:
            raise ConfigurationError(
                f"job {self.job_id}: submit time must be non-negative"
            )


@dataclass(frozen=True)
class JobOutcome:
    """Completion record produced by the simulation."""

    job: GpuJob
    server: str
    start_seconds: float
    finish_seconds: float

    @property
    def response_seconds(self) -> float:
        return self.finish_seconds - self.job.submit_seconds

    @property
    def slowdown(self) -> float:
        """Response time over unshared service time (>= 1)."""
        return self.response_seconds / self.job.service_seconds


def workload_mix(
    num_jobs: int,
    network: str = "40GI",
    mean_interarrival_seconds: float = 10.0,
    mm_fraction: float = 0.7,
    seed: int = 0,
    testbed: SimulatedTestbed | None = None,
) -> list[GpuJob]:
    """A seeded random job mix over the paper's problem sizes.

    MM jobs dominate by default (the paper's GPU-worthy workload); FFT
    jobs model the small offloads that also show up in practice.  Service
    demands come from the simulated testbed's remote execution times over
    ``network``.
    """
    if num_jobs <= 0:
        raise ConfigurationError("num_jobs must be positive")
    if not 0.0 <= mm_fraction <= 1.0:
        raise ConfigurationError("mm_fraction must lie in [0, 1]")
    testbed = testbed if testbed is not None else SimulatedTestbed()
    rng = np.random.default_rng(seed)
    mm = case_by_name("MM")
    fft = case_by_name("FFT")

    # Cache service demands per (case, size): the testbed is deterministic.
    demand: dict[tuple[str, int], float] = {}

    jobs: list[GpuJob] = []
    t = 0.0
    for job_id in range(num_jobs):
        t += float(rng.exponential(mean_interarrival_seconds))
        case = mm if rng.random() < mm_fraction else fft
        size = int(rng.choice(case.paper_sizes))
        key = (case.name, size)
        if key not in demand:
            demand[key] = testbed.measure_remote(case, size, network).total_seconds
        jobs.append(
            GpuJob(
                job_id=job_id,
                case_name=case.name,
                size=size,
                submit_seconds=t,
                service_seconds=demand[key],
            )
        )
    return jobs
