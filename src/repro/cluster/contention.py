"""Network contention among concurrent rCUDA clients.

Second piece of the paper's future work: "potential network contention
caused by multiple applications running in a cluster featuring several
GPGPU servers will also be covered in future work."

Model: a GPU server's link is fair-shared, so ``k`` concurrent sessions
each see ``bandwidth / k`` during their transfer phases, while compute
phases (kernel, PCIe, host work) are unaffected by *network* contention
(GPU sharing is the simulation's processor-sharing model).  The functions
here predict per-client slowdown under concurrency for any network and
case study -- the planning analysis behind "how many clients can share one
GPU server before the link saturates".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.calibration import Calibration, default_calibration
from repro.model.transfer import small_message_overhead_seconds
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


def contended_bandwidth_mibps(base_mibps: float, flows: int) -> float:
    """Fair-share bandwidth for one of ``flows`` concurrent transfers."""
    if flows < 1:
        raise ModelError(f"flow count must be >= 1, got {flows}")
    if base_mibps <= 0:
        raise ModelError(f"bandwidth must be positive, got {base_mibps}")
    return base_mibps / flows


@dataclass(frozen=True)
class ContentionPoint:
    """Predicted per-client execution under k-way sharing of one server."""

    concurrency: int
    per_client_seconds: float
    solo_seconds: float

    @property
    def slowdown(self) -> float:
        return self.per_client_seconds / self.solo_seconds


def contended_execution_seconds(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    concurrency: int,
    calibration: Calibration | None = None,
) -> float:
    """One client's execution time with ``concurrency`` peers on the same
    GPU server.

    The network phases dilate by the fair-share factor; the device phases
    (kernel + PCIe) dilate by the GPU's time-multiplexing factor; the
    client-side host work does not dilate (each client has its own node).
    """
    if concurrency < 1:
        raise ModelError(f"concurrency must be >= 1, got {concurrency}")
    cal = calibration if calibration is not None else default_calibration()
    payload = case.payload_bytes(size)
    net = case.copies_per_run * spec.estimated_transfer_seconds(payload)
    net += small_message_overhead_seconds(case, size, spec)
    device = cal.pcie_seconds(case, size) + cal.kernel_seconds(case, size)
    host = cal.remote_host_seconds(case, size)
    return host + net * concurrency + device * concurrency


def contention_sweep(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    max_concurrency: int = 8,
    calibration: Calibration | None = None,
) -> list[ContentionPoint]:
    """Per-client slowdown for 1..max_concurrency sharing clients."""
    cal = calibration if calibration is not None else default_calibration()
    solo = contended_execution_seconds(case, size, spec, 1, cal)
    return [
        ContentionPoint(
            concurrency=k,
            per_client_seconds=contended_execution_seconds(
                case, size, spec, k, cal
            ),
            solo_seconds=solo,
        )
        for k in range(1, max_concurrency + 1)
    ]


def max_clients_within_slowdown(
    points: list[ContentionPoint], budget: float
) -> int:
    """Largest concurrency whose slowdown stays within ``1 + budget``."""
    if not points:
        raise ModelError("empty contention sweep")
    eligible = [p.concurrency for p in points if p.slowdown <= 1.0 + budget]
    return max(eligible, default=0)


def device_timeshare_factor(active_tenants: int) -> float:
    """Per-tenant slowdown when ``active_tenants`` time-share one GPU.

    The device term of the sharing model: a GPU is a serially-reusable
    resource, so k tenants with queued work each see their device time
    stretch by k (processor sharing, no context-switch overhead in the
    simulated device).  The serving path's launch scheduler feeds its
    live contender count through this so shared-device timing degrades
    by the same law the offline sweeps assume.
    """
    if active_tenants < 1:
        raise ModelError(
            f"active tenant count must be >= 1, got {active_tenants}"
        )
    return float(active_tenants)
