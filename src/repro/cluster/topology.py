"""Cluster network topologies and path-level contention.

The paper's future work: analyze rCUDA "over a wide range of
applications, cluster configurations, and network topologies".  This
module models the topology part: the cluster's switching fabric is a
capacitated graph (networkx), each client->GPU-server session is a flow
along its shortest path, and a flow's achievable bandwidth is its
min-share across the links it traverses:

    rate(flow) = min over links L on path of capacity(L) / flows(L)

(the standard bottleneck-share approximation of max-min fairness; exact
water-filling would only raise non-bottleneck flows, so the numbers here
are conservative).  Capacities are relative to one NIC (1.0 = the
network's full effective bandwidth), so a rate of 0.25 means the session
sees a quarter of the Table III/V bandwidth for its transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError, ModelError
from repro.model.calibration import Calibration, default_calibration
from repro.model.transfer import small_message_overhead_seconds
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy

#: A session is a (client node, server node) pair.
Flow = tuple[str, str]


class ClusterTopology:
    """A capacitated switching fabric over named cluster nodes."""

    def __init__(self, graph: nx.Graph, node_names: list[str]) -> None:
        for name in node_names:
            if name not in graph:
                raise ConfigurationError(f"node {name!r} missing from graph")
        for _u, _v, data in graph.edges(data=True):
            if data.get("capacity", 0) <= 0:
                raise ConfigurationError("every link needs a positive capacity")
        self.graph = graph
        self.node_names = list(node_names)

    # -- constructors -------------------------------------------------------

    @classmethod
    def star(cls, node_names: list[str], core_capacity: float | None = None
             ) -> "ClusterTopology":
        """All nodes on one switch.

        ``core_capacity`` bounds the switch backplane in NIC units
        (None = non-blocking).  Each node's uplink has capacity 1.0.
        """
        if not node_names:
            raise ConfigurationError("a topology needs at least one node")
        g = nx.Graph()
        g.add_node("switch0")
        for name in node_names:
            g.add_edge(name, "switch0", capacity=1.0)
        if core_capacity is not None:
            # Model the backplane bound as a link to a virtual core that
            # inter-switch traffic would cross; a single switch has none,
            # so a finite backplane is expressed by splitting the switch.
            if core_capacity <= 0:
                raise ConfigurationError("core capacity must be positive")
        return cls(g, node_names)

    @classmethod
    def two_level_tree(
        cls,
        node_names: list[str],
        nodes_per_switch: int,
        uplink_capacity: float = 4.0,
    ) -> "ClusterTopology":
        """Edge switches of ``nodes_per_switch`` nodes under one core.

        ``uplink_capacity`` is each edge switch's uplink in NIC units;
        uplink_capacity < nodes_per_switch is an oversubscribed fabric,
        the configuration where topology actually bites.
        """
        if not node_names:
            raise ConfigurationError("a topology needs at least one node")
        if nodes_per_switch <= 0:
            raise ConfigurationError("nodes_per_switch must be positive")
        if uplink_capacity <= 0:
            raise ConfigurationError("uplink capacity must be positive")
        g = nx.Graph()
        g.add_node("core")
        for i, name in enumerate(node_names):
            switch = f"edge{i // nodes_per_switch}"
            if switch not in g:
                g.add_edge(switch, "core", capacity=uplink_capacity)
            g.add_edge(name, switch, capacity=1.0)
        return cls(g, node_names)

    # -- flow analysis ---------------------------------------------------------

    def path_links(self, flow: Flow) -> list[tuple[str, str]]:
        """The links a session's traffic traverses (shortest path)."""
        client, server = flow
        if client == server:
            return []
        try:
            path = nx.shortest_path(self.graph, client, server)
        except (nx.NodeNotFound, nx.NetworkXNoPath) as exc:
            raise ModelError(f"no path for flow {flow}") from exc
        return list(zip(path, path[1:]))

    def flow_rates(self, flows: list[Flow]) -> dict[int, float]:
        """Min-share bandwidth fraction per flow (keyed by list index).

        Local flows (client == server: the application happens to run on
        the GPU node) never touch the network and get rate 1.0.
        """
        link_load: dict[frozenset, int] = {}
        paths: dict[int, list[frozenset]] = {}
        for i, flow in enumerate(flows):
            links = [frozenset(edge) for edge in self.path_links(flow)]
            paths[i] = links
            for link in links:
                link_load[link] = link_load.get(link, 0) + 1
        rates: dict[int, float] = {}
        for i, links in paths.items():
            if not links:
                rates[i] = 1.0
                continue
            rates[i] = min(
                self._capacity(link) / link_load[link] for link in links
            )
        return rates

    def _capacity(self, link: frozenset) -> float:
        u, v = tuple(link)
        return self.graph.edges[u, v]["capacity"]

    def bisection_flows(self) -> int:
        """Number of compute nodes (upper bound on concurrent NIC flows)."""
        return len(self.node_names)


@dataclass(frozen=True)
class TopologySessionEstimate:
    """Predicted execution for one session under topology contention."""

    flow: Flow
    bandwidth_fraction: float
    seconds: float


def topology_contention_report(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    topology: ClusterTopology,
    flows: list[Flow],
    calibration: Calibration | None = None,
) -> list[TopologySessionEstimate]:
    """Per-session execution estimate for concurrent sessions on a fabric.

    Network time dilates by the flow's min-share factor; device time
    dilates by the per-server GPU concurrency (as in
    :mod:`repro.cluster.contention`); host time does not dilate.
    """
    if not flows:
        raise ModelError("at least one session is required")
    cal = calibration if calibration is not None else default_calibration()
    rates = topology.flow_rates(flows)
    server_load: dict[str, int] = {}
    for _client, server in flows:
        server_load[server] = server_load.get(server, 0) + 1

    payload = case.payload_bytes(size)
    net_solo = case.copies_per_run * spec.estimated_transfer_seconds(payload)
    net_solo += small_message_overhead_seconds(case, size, spec)
    device = cal.pcie_seconds(case, size) + cal.kernel_seconds(case, size)
    host = cal.remote_host_seconds(case, size)

    estimates: list[TopologySessionEstimate] = []
    for i, flow in enumerate(flows):
        rate = rates[i]
        gpu_share = server_load[flow[1]]
        net = 0.0 if rate == 1.0 and flow[0] == flow[1] else net_solo / rate
        estimates.append(
            TopologySessionEstimate(
                flow=flow,
                bandwidth_fraction=rate,
                seconds=host + net + device * gpu_share,
            )
        )
    return estimates
