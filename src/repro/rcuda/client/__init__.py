"""Client side of the middleware: the wrapper CUDA runtime applications
link against, plus connection helpers."""

from repro.rcuda.client.connection import RCudaClient
from repro.rcuda.client.runtime import RemoteCudaRuntime

__all__ = ["RCudaClient", "RemoteCudaRuntime"]
