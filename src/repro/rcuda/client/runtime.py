"""The client wrapper runtime: the "library of wrappers to the CUDA
Runtime API" of Section III.

Applications call the same surface :class:`~repro.simcuda.runtime.CudaRuntime`
offers locally; every call becomes one request/response exchange with the
server (kernel launches become two: the batched argument message plus the
Table I cudaLaunch).  The API "provides the illusion of being a real GPU":
return values are the CUDA status codes the server produced, shipped back
in the response's 4-byte error field.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ProtocolError
from repro.obs.naming import describe_request
from repro.obs.spans import KIND_CLIENT, NULL_TRACER, Tracer
from repro.protocol.codec import MessageReader, encode_request, read_response
from repro.protocol.messages import (
    ElapsedResponse,
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyAsyncRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemsetRequest,
    PropertiesRequest,
    PropertiesResponse,
    Request,
    Response,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
    ValueResponse,
)
from repro.simcuda.errors import CudaError
from repro.simcuda.module import GpuModule
from repro.simcuda.types import Dim3, DevicePtr, MemcpyKind
from repro.transport.base import Transport


_CLIENT_SESSION_IDS = itertools.count(1)


class RemoteCudaRuntime:
    """One application's connection to a remote GPU."""

    def __init__(
        self,
        transport: Transport,
        tracer: Tracer | None = None,
        session_id: str | None = None,
    ) -> None:
        self.transport = transport
        self._reader = MessageReader(transport)
        self.compute_capability: tuple[int, int] | None = None
        self.last_error = CudaError.cudaSuccess
        self._launch_config: tuple[Dim3, Dim3, int, int] | None = None
        self._staged_args: list = []
        self.calls_made = 0
        self._closed = False
        #: Span tracer; the shared no-op by default so the hot path pays
        #: nothing when uninstrumented.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Local session key for span correlation (never hits the wire --
        #: the Table I format stays byte-identical).
        self.session_id = (
            session_id
            if session_id is not None
            else f"client-{next(_CLIENT_SESSION_IDS)}"
        )
        #: Optional observer called after every exchange with
        #: (request, response, bytes_sent).  Figure 2's sequence diagram
        #: is reconstructed from real sessions through this hook.
        self.exchange_hook = None

    # -- plumbing -----------------------------------------------------------

    def _call(self, request: Request) -> Response:
        if self._closed:
            raise ProtocolError("runtime is closed")
        wire = encode_request(request)
        tracer = self.tracer
        if tracer.enabled:
            name, fid, phase = describe_request(request)
            received_before = self.transport.bytes_received
            span = tracer.start(
                name,
                KIND_CLIENT,
                self.session_id,
                self.calls_made,
                function_id=fid,
                phase=phase,
            )
        self.transport.send(wire)
        response = read_response(self._reader, request)
        if tracer.enabled:
            tracer.finish(
                span,
                bytes_sent=len(wire),
                bytes_received=self.transport.bytes_received - received_before,
                error=response.error,
            )
        self.calls_made += 1
        self.last_error = CudaError(response.error)
        if self.exchange_hook is not None:
            self.exchange_hook(request, response, len(wire))
        return response

    # -- initialization stage --------------------------------------------------

    def initialize(self, module: GpuModule) -> CudaError:
        """Ship the GPU module; stores the device's compute capability."""
        response = self._call(InitRequest(module=module.payload))
        assert isinstance(response, InitResponse)
        if response.error == 0:
            self.compute_capability = response.compute_capability
        return CudaError(response.error)

    # -- memory ------------------------------------------------------------------

    def cudaMalloc(self, size: int) -> tuple[CudaError, DevicePtr | None]:
        if not 0 <= size < 2**32:
            # Table I's Size field is 4 bytes (the CUDA 2.3 wire ABI):
            # sizes beyond it are unrepresentable, as on 32-bit CUDA.
            return CudaError.cudaErrorInvalidValue, None
        response = self._call(MallocRequest(size=size))
        assert isinstance(response, MallocResponse)
        error = CudaError(response.error)
        return error, response.ptr if error == CudaError.cudaSuccess else None

    def cudaFree(self, ptr: DevicePtr) -> CudaError:
        return CudaError(self._call(FreeRequest(ptr=ptr)).error)

    def cudaMemcpy(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        kind = MemcpyKind(kind)
        payload: bytes | None = None
        if kind is MemcpyKind.cudaMemcpyHostToDevice:
            if host_data is None:
                return CudaError.cudaErrorInvalidValue, None
            if isinstance(host_data, np.ndarray):
                payload = np.ascontiguousarray(host_data).tobytes()[:count]
            else:
                payload = bytes(host_data)[:count]
            if len(payload) != count:
                return CudaError.cudaErrorInvalidValue, None
        response = self._call(
            MemcpyRequest(dst=dst, src=src, size=count, kind=int(kind), data=payload)
        )
        error = CudaError(response.error)
        data: np.ndarray | None = None
        if isinstance(response, MemcpyResponse) and response.data is not None:
            data = np.frombuffer(response.data, dtype=np.uint8).copy()
        return error, data

    def cudaMemset(self, ptr: DevicePtr, value: int, count: int) -> CudaError:
        """Fill remote device memory with a byte value."""
        if not 0 <= value <= 0xFF or not 0 <= count < 2**32:
            return CudaError.cudaErrorInvalidValue
        return CudaError(
            self._call(MemsetRequest(ptr=ptr, value=value, size=count)).error
        )

    def cudaMemcpyAsync(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        stream: int = 0,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        """Asynchronous copy on a remote stream (the paper's future work:
        asynchronous transfers are remoted but not covered by the Section
        V estimation model)."""
        kind = MemcpyKind(kind)
        payload: bytes | None = None
        if kind is MemcpyKind.cudaMemcpyHostToDevice:
            if host_data is None:
                return CudaError.cudaErrorInvalidValue, None
            if isinstance(host_data, np.ndarray):
                payload = np.ascontiguousarray(host_data).tobytes()[:count]
            else:
                payload = bytes(host_data)[:count]
            if len(payload) != count:
                return CudaError.cudaErrorInvalidValue, None
        response = self._call(
            MemcpyAsyncRequest(
                dst=dst, src=src, size=count, kind=int(kind),
                stream=stream, data=payload,
            )
        )
        error = CudaError(response.error)
        data: np.ndarray | None = None
        if isinstance(response, MemcpyResponse) and response.data is not None:
            data = np.frombuffer(response.data, dtype=np.uint8).copy()
        return error, data

    # -- kernel launch -------------------------------------------------------------

    def cudaConfigureCall(
        self, grid: Dim3, block: Dim3, shared_bytes: int = 0, stream: int = 0
    ) -> CudaError:
        self._launch_config = (grid, block, shared_bytes, stream)
        self._staged_args = []
        return CudaError.cudaSuccess

    def cudaSetupArgument(self, value) -> CudaError:
        if self._launch_config is None:
            return CudaError.cudaErrorMissingConfiguration
        self._staged_args.append(value)
        return CudaError.cudaSuccess

    def cudaLaunch(self, kernel_name: str) -> CudaError:
        if self._launch_config is None:
            return CudaError.cudaErrorMissingConfiguration
        grid, block, shared, stream = self._launch_config
        self._launch_config = None
        args = tuple(self._staged_args)
        self._staged_args = []
        if args:
            error = CudaError(self._call(SetupArgsRequest(args=args)).error)
            if error != CudaError.cudaSuccess:
                return error
        response = self._call(
            LaunchRequest(
                kernel_name=kernel_name,
                block=block,
                grid=grid,
                shared_bytes=shared,
                stream=stream,
            )
        )
        return CudaError(response.error)

    def launch_kernel(
        self,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args: tuple,
        stream: int = 0,
        shared_bytes: int = 0,
    ) -> CudaError:
        """Convenience: configure + setup + launch."""
        self.cudaConfigureCall(grid, block, shared_bytes, stream)
        for arg in args:
            self.cudaSetupArgument(arg)
        return self.cudaLaunch(kernel_name)

    # -- sync / streams / events -------------------------------------------------

    def cudaThreadSynchronize(self) -> CudaError:
        return CudaError(self._call(SyncRequest()).error)

    def cudaGetDeviceProperties(self) -> tuple[CudaError, PropertiesResponse]:
        response = self._call(PropertiesRequest())
        assert isinstance(response, PropertiesResponse)
        return CudaError(response.error), response

    def cudaStreamCreate(self) -> tuple[CudaError, int | None]:
        response = self._call(StreamCreateRequest())
        assert isinstance(response, ValueResponse)
        error = CudaError(response.error)
        return error, response.value if error == CudaError.cudaSuccess else None

    def cudaStreamSynchronize(self, stream: int) -> CudaError:
        return CudaError(self._call(StreamSyncRequest(stream=stream)).error)

    def cudaEventCreate(self) -> tuple[CudaError, int | None]:
        response = self._call(EventCreateRequest())
        assert isinstance(response, ValueResponse)
        error = CudaError(response.error)
        return error, response.value if error == CudaError.cudaSuccess else None

    def cudaEventRecord(self, event: int) -> CudaError:
        return CudaError(self._call(EventRecordRequest(event=event)).error)

    def cudaEventElapsedTime(
        self, start: int, end: int
    ) -> tuple[CudaError, float | None]:
        response = self._call(EventElapsedRequest(start=start, end=end))
        assert isinstance(response, ElapsedResponse)
        error = CudaError(response.error)
        return error, response.elapsed_ms if error == CudaError.cudaSuccess else None

    # -- finalization stage ---------------------------------------------------------

    def close(self) -> None:
        """Finalization: close the socket; the server session releases the
        GPU context and associated resources."""
        if not self._closed:
            self._closed = True
            self.transport.close()

    def __enter__(self) -> "RemoteCudaRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
