"""The client wrapper runtime: the "library of wrappers to the CUDA
Runtime API" of Section III.

Applications call the same surface :class:`~repro.simcuda.runtime.CudaRuntime`
offers locally; every call becomes one request/response exchange with the
server (kernel launches become two: the batched argument message plus the
Table I cudaLaunch).  The API "provides the illusion of being a real GPU":
return values are the CUDA status codes the server produced, shipped back
in the response's 4-byte error field.

Two hot-path modes share this class:

**Strict sync** (the default) blocks on one exchange per call, exactly as
the paper measures in Table I and models in Section V.

**Pipelined** (``pipeline=True``) implements the paper's declared future
work -- asynchronous, pipelined transfers -- *without changing a single
wire byte*.  Calls whose results the caller does not need immediately
(``cudaMemset``, ``cudaFree``, ``cudaEventRecord``, host-to-device
``cudaMemcpy``/``cudaMemcpyAsync``, and the SetupArgs+Launch pair, which
coalesces into one vectored write) are fired and their responses drained
lazily; pipelining is just concatenating Table I messages on the stream,
so the bytes each side sees are identical to the sequential encoding.
Errors on deferred calls become a sticky CUDA-style ``last_error``
surfaced at the next synchronization point: ``cudaThreadSynchronize``,
``cudaStreamSynchronize``, any value-returning call, ``flush`` or
``close``.
"""

from __future__ import annotations

import itertools
from collections import deque

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.obs.naming import describe_request
from repro.obs.spans import KIND_CLIENT, NULL_TRACER, Tracer
from repro.protocol.codec import (
    MessageReader,
    encode_request_vectored,
    read_response,
    read_stream_response,
)
from repro.protocol.messages import (
    ElapsedResponse,
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemsetRequest,
    PropertiesRequest,
    PropertiesResponse,
    Request,
    Response,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
    ValueResponse,
)
from repro.simcuda.errors import CudaError
from repro.simcuda.module import GpuModule
from repro.simcuda.types import Dim3, DevicePtr, MemcpyKind
from repro.transport.base import Transport, buffer_nbytes


_CLIENT_SESSION_IDS = itertools.count(1)

#: Synchronous copies at or above this size are chunked and streamed so the
#: network hop of chunk i+1 overlaps the device hop of chunk i.
STREAM_THRESHOLD_BYTES = 1 << 20
#: Adaptive chunk-size clamp and rounding granularity.
MIN_CHUNK_BYTES = 64 << 10
MAX_CHUNK_BYTES = 4 << 20
#: Wire header sizes of the stream messages (id + fields, 4 bytes each).
STREAM_BEGIN_BYTES = 28
CHUNK_HEADER_BYTES = 16
STREAM_END_BYTES = 12

#: Same-session device-to-device copy routing: ``direct`` executes the
#: copy entirely server-side (one header-only request, no payload on the
#: wire); ``staged`` round-trips through the client as D2H + H2D -- what
#: a middleware without a server-side D2D path would be forced to do,
#: kept as the tuner's comparison baseline.
D2D_DIRECT = "direct"
D2D_STAGED = "staged"
D2D_ROUTES = (D2D_DIRECT, D2D_STAGED)


class RemoteCudaRuntime:
    """One application's connection to a remote GPU."""

    def __init__(
        self,
        transport: Transport,
        tracer: Tracer | None = None,
        session_id: str | None = None,
        pipeline: bool = False,
        chunk_bytes: int | None = None,
        chunking: bool = True,
        flight=None,
        postmortem_dir: str | None = None,
        stream_threshold: int | None = None,
        pipeline_window: int | None = None,
        d2d_route: str | None = None,
        profile: str | None = None,
    ) -> None:
        if chunk_bytes is not None and chunk_bytes < 1:
            raise ConfigurationError(
                f"chunk_bytes must be >= 1, got {chunk_bytes}"
            )
        if stream_threshold is not None and stream_threshold < 1:
            raise ConfigurationError(
                f"stream_threshold must be >= 1, got {stream_threshold}"
            )
        if pipeline_window is not None and pipeline_window < 1:
            raise ConfigurationError(
                f"pipeline_window must be >= 1, got {pipeline_window}"
            )
        #: A named ``profile`` loads the shipped per-network tuned config
        #: (see :mod:`repro.tune.table`); explicit kwargs always win, and
        #: with no profile every default stays byte- and timing-identical
        #: to the untuned runtime.
        self.profile = profile
        if profile is not None:
            from repro.tune.table import resolve_profile

            cfg = resolve_profile(profile)
            if chunk_bytes is None:
                chunk_bytes = cfg.chunk_bytes
            if stream_threshold is None:
                stream_threshold = cfg.stream_threshold
            if pipeline_window is None and cfg.pipeline_window > 0:
                pipeline_window = cfg.pipeline_window
            if cfg.pipeline_window > 0:
                pipeline = True
            if d2d_route is None:
                d2d_route = cfg.d2d_route
        if d2d_route is None:
            d2d_route = D2D_DIRECT
        if d2d_route not in D2D_ROUTES:
            raise ConfigurationError(
                f"d2d_route must be one of {D2D_ROUTES}, got {d2d_route!r}"
            )
        self.transport = transport
        self._reader = MessageReader(transport)
        self.compute_capability: tuple[int, int] | None = None
        self.last_error = CudaError.cudaSuccess
        #: Readable reason when the server refused initialization
        #: (admission control); ``last_error`` holds the sticky
        #: ``cudaErrorUnknown`` the refusal surfaces as.
        self.refusal_detail: str | None = None
        self._launch_config: tuple[Dim3, Dim3, int, int] | None = None
        self._staged_args: list = []
        self.calls_made = 0
        self._closed = False
        #: Deferred-acknowledgement mode: fire-and-forget eligible calls,
        #: drain their responses lazily (see module docstring).
        self.pipeline = pipeline
        #: Bound on the deferred-ack in-flight window: posting past it
        #: blocks on the oldest acknowledgement first (one round trip per
        #: stall).  ``None`` keeps the historical unbounded window.
        self.pipeline_window = pipeline_window
        #: Times a full pipeline window forced a blocking drain.
        self.window_stalls = 0
        #: Same-session D2D routing (``direct`` or ``staged``).
        self.d2d_route = d2d_route
        #: Requests sent but not yet acknowledged: (request, span, nbytes).
        self._inflight: deque[tuple[Request, object, int]] = deque()
        #: Request bytes on the wire awaiting their acknowledgement (the
        #: profiler samples this as the ``bytes_in_flight`` counter).
        self.bytes_inflight = 0
        #: First error observed on a deferred call; sticky until surfaced
        #: at a sync point (CUDA's cudaGetLastError discipline).
        self._deferred_error = CudaError.cudaSuccess
        #: Blocking request/response waits this session has paid.  A sync
        #: exchange costs one; draining any number of pipelined responses
        #: costs one (they are already in flight when we start waiting).
        self.round_trips = 0
        #: Payload bytes this runtime had to copy before the transport
        #: (non-contiguous arrays, immutable-bytes D2H materialization).
        #: Zero on the zero-copy paths; benchmarks report it.
        self.bytes_copied = 0
        #: Span tracer; the shared no-op by default so the hot path pays
        #: nothing when uninstrumented.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Local session key for span correlation (never hits the wire --
        #: the Table I format stays byte-identical).
        self.session_id = (
            session_id
            if session_id is not None
            else f"client-{next(_CLIENT_SESSION_IDS)}"
        )
        #: Optional observer called after every exchange with
        #: (request, response, bytes_sent).  Figure 2's sequence diagram
        #: is reconstructed from real sessions through this hook.  In
        #: pipelined mode deferred calls report at drain time.
        self.exchange_hook = None
        #: Chunked streaming knobs: ``chunking`` gates the whole path,
        #: ``chunk_bytes`` pins the frame size (None = adapt to the
        #: bottleneck link), ``stream_threshold`` is the smallest copy
        #: worth streaming (tests lower it to exercise tiny payloads).
        self.chunking = chunking
        self._chunk_bytes = chunk_bytes
        self.stream_threshold = (
            stream_threshold
            if stream_threshold is not None
            else STREAM_THRESHOLD_BYTES
        )
        self._stream_ids = itertools.count(1)
        #: Chunk frames this session has streamed (a profiler counter).
        self.chunks_streamed = 0
        #: Optional flight recorder (stream lifecycle, deferred errors,
        #: transport death); share the daemon's instance for one merged
        #: timeline, or attach a separate client-side ring.
        self.flight = flight
        #: When set, the first transport death writes a postmortem dump
        #: here; the path lands in :attr:`postmortem_path`.
        self.postmortem_dir = postmortem_dir
        self.postmortem_path = None

    # -- plumbing -----------------------------------------------------------

    def _start_span(self, request: Request):
        tracer = self.tracer
        if not tracer.enabled:
            return None
        name, fid, phase = describe_request(request)
        return tracer.start(
            name,
            KIND_CLIENT,
            self.session_id,
            self.calls_made,
            function_id=fid,
            phase=phase,
        )

    def _send_parts(self, parts: list, messages: int = 1) -> None:
        if len(parts) == 1 and messages == 1:
            self.transport.send(parts[0])
        else:
            self.transport.send_vectored(parts, messages=messages)

    def _abandon_inflight(self) -> None:
        """Mark every in-flight span errored after a dead transport.

        Deferred spans already closed at queue time (their duration is
        the local fire-and-forget cost), so the abandonment is an
        annotation -- the ack they were waiting for will never come.
        """
        abandoned = len(self._inflight)
        while self._inflight:
            _, span, nbytes = self._inflight.popleft()
            self.bytes_inflight -= nbytes
            if span is not None:
                self.tracer.annotate(span, outcome="error")
        if self.flight is not None:
            self.flight.record(
                "error", "client-transport-died",
                session=self.session_id,
                abandoned_inflight=abandoned,
            )
        self._write_postmortem(
            "client-transport-died",
            detail=f"{abandoned} in-flight request(s) abandoned",
        )

    def _write_postmortem(self, reason: str, detail: str = "") -> None:
        """First-failure crash dump (no-op without a postmortem_dir)."""
        if self.postmortem_dir is None or self.postmortem_path is not None:
            return
        from repro.obs.flight import build_postmortem, write_postmortem

        sticky = (
            self.last_error
            if self.last_error != CudaError.cudaSuccess
            else self._deferred_error
        )
        ledger = {
            "session": self.session_id,
            "requests": self.calls_made,
            "bytes_in": self.transport.bytes_received,
            "bytes_out": self.transport.bytes_sent,
            "open_streams": 0,
            "last_error": int(sticky),
            "last_error_name": sticky.name if sticky else "",
            "finished": True,
            "close_reason": reason,
        }
        dump = build_postmortem(
            reason,
            flight=self.flight,
            sessions=[ledger],
            sticky_error=sticky.name if sticky else None,
            detail=detail,
        )
        try:
            self.postmortem_path = write_postmortem(
                dump, self.postmortem_dir
            )
        except OSError:
            pass  # an unwritable dump dir must not mask the real failure

    def _drain_one(self) -> None:
        """Read and account the oldest in-flight response."""
        request, span, nbytes = self._inflight.popleft()
        self.bytes_inflight -= nbytes
        received_before = self.transport.bytes_received
        try:
            response = read_response(self._reader, request)
        except BaseException:
            if span is not None:
                self.tracer.annotate(span, outcome="error")
            self._abandon_inflight()
            raise
        if span is not None:
            self.tracer.annotate(
                span,
                acked=self.tracer.clock.now(),
                bytes_received=self.transport.bytes_received - received_before,
                error=response.error,
            )
        error = CudaError(response.error)
        self.last_error = error
        if (
            error != CudaError.cudaSuccess
            and self._deferred_error == CudaError.cudaSuccess
        ):
            self._deferred_error = error
            if self.flight is not None:
                self.flight.record(
                    "error", "deferred-error",
                    session=self.session_id,
                    error=error.name,
                    request=type(request).__name__,
                )
        if self.exchange_hook is not None:
            self.exchange_hook(request, response, nbytes)

    def _drain(self, *, blocking: bool = True) -> None:
        """Consume every outstanding pipelined response.

        ``blocking=True`` charges one round trip (we genuinely wait for
        the stream to catch up); a drain that piggybacks on a sync
        exchange already paying its own round trip passes False.
        """
        if not self._inflight:
            return
        if blocking:
            self.round_trips += 1
        while self._inflight:
            self._drain_one()
        if self._deferred_error != CudaError.cudaSuccess:
            self.last_error = self._deferred_error

    def _finish_deferred(self, span, nbytes: int) -> None:
        """Close a deferred call's span at queue time.

        The span's duration is the local fire-and-forget cost -- what the
        caller actually waited -- not the wait for the acknowledgement,
        which in pipelined mode overlaps later work.  ``queued`` restates
        the close timestamp and ``acked`` arrives at drain time via
        :meth:`~repro.obs.spans.Tracer.annotate`.
        """
        self.tracer.finish(span, bytes_sent=nbytes, deferred=True)
        self.tracer.annotate(span, queued=span.end)

    def _enforce_window(self) -> None:
        """Bound the deferred-ack window: a post past ``pipeline_window``
        blocks on the oldest acknowledgements until the in-flight count
        is back inside it.  The stall is a real round trip -- the client
        genuinely waits for the response stream to catch up."""
        window = self.pipeline_window
        if window is None or len(self._inflight) <= window:
            return
        self.round_trips += 1
        self.window_stalls += 1
        while len(self._inflight) > window:
            self._drain_one()

    def _post(self, request: Request) -> CudaError:
        """Fire-and-forget: send ``request`` and defer its response."""
        if self._closed:
            raise ProtocolError("runtime is closed")
        parts = encode_request_vectored(request)
        nbytes = sum(buffer_nbytes(p) for p in parts)
        span = self._start_span(request)
        try:
            self._send_parts(parts)
        except BaseException:
            if span is not None:
                self.tracer.fail(span, bytes_sent=nbytes)
            raise
        if span is not None:
            self._finish_deferred(span, nbytes)
        self.calls_made += 1
        self.bytes_inflight += nbytes
        self._inflight.append((request, span, nbytes))
        self._enforce_window()
        return CudaError.cudaSuccess

    def _post_coalesced(self, requests: list[Request]) -> CudaError:
        """Fire several requests with ONE vectored write (SetupArgs+Launch
        become a single frame on the stream, halving the launch's writes)."""
        if self._closed:
            raise ProtocolError("runtime is closed")
        parts: list = []
        staged: list[tuple[Request, object, int]] = []
        for request in requests:
            req_parts = encode_request_vectored(request)
            staged.append(
                (request, self._start_span(request),
                 sum(buffer_nbytes(p) for p in req_parts))
            )
            parts.extend(req_parts)
            self.calls_made += 1
        try:
            self._send_parts(parts, messages=len(requests))
        except BaseException:
            for _, span, nbytes in staged:
                if span is not None:
                    self.tracer.fail(span, bytes_sent=nbytes)
            raise
        for _, span, nbytes in staged:
            if span is not None:
                self._finish_deferred(span, nbytes)
            self.bytes_inflight += nbytes
        self._inflight.extend(staged)
        self._enforce_window()
        return CudaError.cudaSuccess

    def _call(self, request: Request) -> Response:
        """One blocking exchange (a synchronization point).

        With responses strictly ordered, the request goes out *before*
        draining: any deferred responses are already racing toward us, so
        reading them plus our own answer costs a single round trip.
        """
        if self._closed:
            raise ProtocolError("runtime is closed")
        parts = encode_request_vectored(request)
        nbytes = sum(buffer_nbytes(p) for p in parts)
        span = self._start_span(request)
        try:
            self._send_parts(parts)
            if span is not None:
                # Serialization boundary for causal phase attribution:
                # [start, sent] is the client-serialize segment.
                self.tracer.annotate(span, sent=self.tracer.clock.now())
            self._drain(blocking=False)
            received_before = self.transport.bytes_received
            response = read_response(self._reader, request)
        except BaseException:
            if span is not None:
                self.tracer.fail(span, bytes_sent=nbytes)
            self._abandon_inflight()
            raise
        self.round_trips += 1
        if span is not None:
            self.tracer.finish(
                span,
                bytes_sent=nbytes,
                bytes_received=self.transport.bytes_received - received_before,
                error=response.error,
            )
        self.calls_made += 1
        self.last_error = CudaError(response.error)
        if self.exchange_hook is not None:
            self.exchange_hook(request, response, nbytes)
        return response

    def _surface(self, error: CudaError) -> CudaError:
        """Apply sync-point error semantics: a pending deferred error
        replaces this call's own status (and is cleared, CUDA-style)."""
        if self._deferred_error != CudaError.cudaSuccess:
            error = self._deferred_error
            self._deferred_error = CudaError.cudaSuccess
            self.last_error = error
        return error

    # -- pipelining surface --------------------------------------------------

    @property
    def inflight_count(self) -> int:
        """Deferred requests whose responses have not been read yet."""
        return len(self._inflight)

    def flush(self) -> CudaError:
        """Drain every deferred response; a synchronization point."""
        self._drain()
        return self._surface(CudaError.cudaSuccess)

    def cudaGetLastError(self) -> CudaError:
        """Return and clear the sticky error, like the real API (drains
        first so deferred failures are visible)."""
        self._drain()
        error = self._surface(self.last_error)
        self.last_error = CudaError.cudaSuccess
        return error

    # -- initialization stage --------------------------------------------------

    def initialize(self, module: GpuModule) -> CudaError:
        """Ship the GPU module; stores the device's compute capability.

        A daemon at its ``max_sessions`` admission limit answers with
        ``cudaErrorDevicesUnavailable`` instead of stalling the
        connection; that refusal surfaces here as a sticky CUDA-style
        ``cudaErrorUnknown`` (``refusal_detail`` keeps the readable
        explanation for the raise site)."""
        response = self._call(InitRequest(module=module.payload))
        assert isinstance(response, InitResponse)
        if response.error == int(CudaError.cudaErrorDevicesUnavailable):
            self.refusal_detail = (
                "server refused the session: daemon is at its "
                "--max-sessions admission limit"
            )
            self.last_error = CudaError.cudaErrorUnknown
            return CudaError.cudaErrorUnknown
        if response.error == 0:
            self.compute_capability = response.compute_capability
        return CudaError(response.error)

    # -- memory ------------------------------------------------------------------

    def cudaMalloc(self, size: int) -> tuple[CudaError, DevicePtr | None]:
        if not 0 <= size < 2**32:
            # Table I's Size field is 4 bytes (the CUDA 2.3 wire ABI):
            # sizes beyond it are unrepresentable, as on 32-bit CUDA.
            return CudaError.cudaErrorInvalidValue, None
        response = self._call(MallocRequest(size=size))
        assert isinstance(response, MallocResponse)
        error = self._surface(CudaError(response.error))
        return error, response.ptr if error == CudaError.cudaSuccess else None

    def cudaFree(self, ptr: DevicePtr) -> CudaError:
        if self.pipeline:
            return self._post(FreeRequest(ptr=ptr))
        return CudaError(self._call(FreeRequest(ptr=ptr)).error)

    def _host_payload(self, host_data, count: int):
        """Validate and slice the H2D payload without copying.

        Returns a flat ``memoryview`` of exactly ``count`` bytes over the
        caller's buffer, or None when the buffer is absent/too small.  The
        only copy left is ``np.ascontiguousarray`` on genuinely
        non-contiguous arrays, where a gather is unavoidable (and is
        charged to ``bytes_copied``).
        """
        if host_data is None:
            return None
        if isinstance(host_data, np.ndarray):
            if not host_data.flags.c_contiguous:
                host_data = np.ascontiguousarray(host_data)
                self.bytes_copied += host_data.nbytes
            view = memoryview(host_data).cast("B")
        else:
            view = memoryview(host_data)
            if view.format != "B" or view.ndim != 1:
                try:
                    view = view.cast("B")
                except TypeError:
                    # Non-contiguous exotic buffer: gather once.
                    flat = bytes(host_data)
                    self.bytes_copied += len(flat)
                    view = memoryview(flat)
        if view.nbytes < count:
            return None
        return view[:count]

    def cudaMemcpy(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        return self._memcpy_common(
            MemcpyRequest, dict(dst=dst, src=src, size=count, kind=0),
            count, kind, host_data,
        )

    def cudaMemcpyAsync(
        self,
        dst: DevicePtr,
        src: DevicePtr,
        count: int,
        kind: MemcpyKind,
        stream: int = 0,
        host_data: bytes | np.ndarray | None = None,
    ) -> tuple[CudaError, np.ndarray | None]:
        """Asynchronous copy on a remote stream (the paper's future work:
        asynchronous transfers are remoted but not covered by the Section
        V estimation model)."""
        return self._memcpy_common(
            MemcpyAsyncRequest,
            dict(dst=dst, src=src, size=count, kind=0, stream=stream),
            count, kind, host_data,
        )

    def _memcpy_common(
        self, request_type, fields: dict, count: int, kind, host_data
    ) -> tuple[CudaError, np.ndarray | None]:
        """Shared cudaMemcpy/cudaMemcpyAsync body (deduplicated payload
        prep; H2D defers in pipelined mode, D2H always synchronizes)."""
        kind = MemcpyKind(kind)
        fields["kind"] = int(kind)
        if kind is MemcpyKind.cudaMemcpyHostToDevice:
            payload = self._host_payload(host_data, count)
            if payload is None:
                return CudaError.cudaErrorInvalidValue, None
            if self._should_stream(request_type, count):
                return self._stream_h2d(fields, count, payload), None
            request = request_type(**fields, data=payload)
            if self.pipeline:
                return self._post(request), None
            return CudaError(self._call(request).error), None
        if (
            kind is MemcpyKind.cudaMemcpyDeviceToHost
            and self._should_stream(request_type, count)
        ):
            return self._stream_d2h(fields, count)
        if (
            kind is MemcpyKind.cudaMemcpyDeviceToDevice
            and request_type is MemcpyRequest
        ):
            if self.d2d_route == D2D_STAGED and count:
                return self._staged_d2d(fields, count)
            # Direct fast path: the copy executes entirely server-side --
            # one header-only request, a bare-error ack, no payload on
            # the wire in either direction.  Nothing comes back, so the
            # pipelined mode may defer the ack like any other fire-and-
            # forget mutation.
            if self.pipeline:
                return self._post(request_type(**fields)), None
        response = self._call(request_type(**fields))
        error = self._surface(CudaError(response.error))
        data: np.ndarray | None = None
        if isinstance(response, MemcpyResponse) and response.data is not None:
            data = self._received_array(response.data)
        return error, data

    def _staged_d2d(
        self, fields: dict, count: int
    ) -> tuple[CudaError, None]:
        """The ``staged`` D2D route: pull the source range to the host
        and push it back to the destination -- 2x the payload on the
        wire.  Kept as the comparison baseline the tuner measures the
        direct server-side path against."""
        error, data = self._memcpy_common(
            MemcpyRequest,
            dict(dst=0, src=fields["src"], size=count, kind=0),
            count, MemcpyKind.cudaMemcpyDeviceToHost, None,
        )
        if error != CudaError.cudaSuccess or data is None:
            return error, None
        error, _ = self._memcpy_common(
            MemcpyRequest,
            dict(dst=fields["dst"], src=0, size=count, kind=0),
            count, MemcpyKind.cudaMemcpyHostToDevice, data,
        )
        return error, None

    # -- chunked streaming ----------------------------------------------------

    def _should_stream(self, request_type, count: int) -> bool:
        """Stream only synchronous ``cudaMemcpy`` bodies above the
        threshold; ``cudaMemcpyAsync`` stays monolithic (the remote
        stream's ordering semantics belong to the server's stream queue,
        not the wire).  A copy that would fit in a single chunk also
        stays monolithic: with nothing to overlap, a one-chunk stream is
        pure Begin/End overhead (visible as a ~1% regression at the
        threshold size on fast links)."""
        return (
            self.chunking
            and request_type is MemcpyRequest
            and count >= self.stream_threshold
            and count > self._stream_chunk_bytes(count)
        )

    def _bottleneck_spec(self):
        """The slowest link spec on the transport chain (timed transports
        expose ``.link``; decorators expose ``.inner``), or None when the
        chain carries no modeled link."""
        spec = None
        transport = self.transport
        while transport is not None:
            link = getattr(transport, "link", None)
            if link is not None:
                candidate = link.spec
                if (
                    spec is None
                    or candidate.effective_bw_mibps < spec.effective_bw_mibps
                ):
                    spec = candidate
            transport = getattr(transport, "inner", None)
        return spec

    @property
    def chunk_bytes(self) -> int | None:
        """The pinned streaming frame size (None = adapt to the link).
        Writable at runtime -- the online auto-tuner steps it live."""
        return self._chunk_bytes

    @chunk_bytes.setter
    def chunk_bytes(self, value: int | None) -> None:
        if value is not None and value < 1:
            raise ConfigurationError(f"chunk_bytes must be >= 1, got {value}")
        self._chunk_bytes = value

    def _stream_chunk_bytes(self, count: int) -> int:
        """Frame size for a ``count``-byte stream: the pinned value if the
        caller set one, else adapted to the bottleneck link (enough bytes
        to keep the pipe full across ~32 small-message latencies), rounded
        to 64 KiB and clamped to [64 KiB, 4 MiB].

        A pin *larger than the copy* cannot be honoured as-is -- clamping
        it to ``count`` used to collapse the stream to one frame and
        silently bypass the link-derived window and its 64 KiB floor, so
        an oversized pin now falls back to the adaptive path instead.
        """
        if self._chunk_bytes is not None and self._chunk_bytes <= max(count, 1):
            return max(1, self._chunk_bytes)
        spec = self._bottleneck_spec()
        if spec is not None:
            window = (
                32.0
                * (spec.small_message_us(64) * 1e-6)
                * spec.effective_bw_mibps
                * float(1 << 20)
            )
            chunk = int(window)
        else:
            # No modeled link: just aim for ~16 frames.
            chunk = -(-count // 16)
        chunk = max(MIN_CHUNK_BYTES, min(MAX_CHUNK_BYTES, chunk))
        chunk = -(-chunk // MIN_CHUNK_BYTES) * MIN_CHUNK_BYTES
        return max(1, min(chunk, max(count, 1)))

    def _stream_h2d(self, fields: dict, count: int, payload) -> CudaError:
        """Send one H2D copy as Begin + chunk frames + End.

        Neither the Begin nor the chunks are acknowledged; the End's
        single terminal ack covers the stream (deferred into the in-flight
        queue under ``pipeline=``, awaited inline otherwise).  Between the
        stream-begin/end transport hooks a timed transport charges the
        frames with pipelined accounting.
        """
        if self._closed:
            raise ProtocolError("runtime is closed")
        chunk_bytes = self._stream_chunk_bytes(count)
        chunks = -(-count // chunk_bytes) if count else 0
        stream_id = next(self._stream_ids)
        begin = MemcpyStreamBeginRequest(
            dst=fields["dst"], src=fields["src"], size=count,
            kind=fields["kind"], chunk_bytes=chunk_bytes, stream_id=stream_id,
        )
        span = self._start_span(begin)
        if span is not None:
            self.tracer.annotate(
                span, streamed=True, chunks=chunks, chunk_bytes=chunk_bytes
            )
        if self.flight is not None:
            self.flight.record(
                "stream", "stream-begin",
                session=self.session_id,
                stream_id=stream_id, total=count, chunks=chunks,
            )
        inflight_added = 0
        try:
            # The Begin rides the ordinary serial small-message path; the
            # pipelined window opens with the first chunk frame.
            self._send_parts(encode_request_vectored(begin))
            inflight_added += STREAM_BEGIN_BYTES
            self.bytes_inflight += STREAM_BEGIN_BYTES
            self.transport.note_stream_begin(
                count, chunk_bytes, CHUNK_HEADER_BYTES
            )
            try:
                for seq in range(chunks):
                    piece = payload[seq * chunk_bytes : (seq + 1) * chunk_bytes]
                    chunk = MemcpyChunkRequest(
                        stream_id=stream_id, seq=seq, size=piece.nbytes,
                        data=piece,
                    )
                    self._send_parts(encode_request_vectored(chunk))
                    nbytes = CHUNK_HEADER_BYTES + piece.nbytes
                    inflight_added += nbytes
                    self.bytes_inflight += nbytes
                    self.chunks_streamed += 1
                self._send_parts(
                    encode_request_vectored(
                        MemcpyStreamEndRequest(stream_id=stream_id, chunks=chunks)
                    )
                )
                inflight_added += STREAM_END_BYTES
                self.bytes_inflight += STREAM_END_BYTES
            finally:
                self.transport.note_stream_end()
        except BaseException:
            self.bytes_inflight -= inflight_added
            if span is not None:
                self.tracer.fail(span, bytes_sent=inflight_added)
            # A copy died mid-stream with the device contents undefined:
            # sticky, CUDA-style, until the caller looks.  Set before
            # abandoning so the postmortem dump carries the sticky error.
            self.last_error = CudaError.cudaErrorUnknown
            self._deferred_error = CudaError.cudaErrorUnknown
            self._abandon_inflight()
            raise
        if span is not None:
            self.tracer.annotate(span, sent=self.tracer.clock.now())
        if self.flight is not None:
            self.flight.record(
                "stream", "stream-end",
                session=self.session_id, stream_id=stream_id,
            )
        self.calls_made += 1
        if self.pipeline:
            if span is not None:
                self._finish_deferred(span, inflight_added)
            self._inflight.append((begin, span, inflight_added))
            self._enforce_window()
            return CudaError.cudaSuccess
        try:
            self._drain(blocking=False)
            received_before = self.transport.bytes_received
            response = read_response(self._reader, begin)
        except BaseException:
            self.bytes_inflight -= inflight_added
            if span is not None:
                self.tracer.fail(span, bytes_sent=inflight_added)
            self.last_error = CudaError.cudaErrorUnknown
            self._deferred_error = CudaError.cudaErrorUnknown
            self._abandon_inflight()
            raise
        self.round_trips += 1
        self.bytes_inflight -= inflight_added
        if span is not None:
            self.tracer.finish(
                span,
                bytes_sent=inflight_added,
                bytes_received=self.transport.bytes_received - received_before,
                error=response.error,
            )
        self.last_error = CudaError(response.error)
        if self.exchange_hook is not None:
            self.exchange_hook(begin, response, inflight_added)
        return self._surface(CudaError(response.error))

    def _stream_d2h(
        self, fields: dict, count: int
    ) -> tuple[CudaError, np.ndarray | None]:
        """One D2H copy as a single Begin answered by a streamed frame
        sequence the server reads zero-copy out of device memory."""
        if self._closed:
            raise ProtocolError("runtime is closed")
        chunk_bytes = self._stream_chunk_bytes(count)
        stream_id = next(self._stream_ids)
        begin = MemcpyStreamBeginRequest(
            dst=fields["dst"], src=fields["src"], size=count,
            kind=fields["kind"], chunk_bytes=chunk_bytes, stream_id=stream_id,
        )
        chunks = -(-count // chunk_bytes) if count else 0
        span = self._start_span(begin)
        if span is not None:
            self.tracer.annotate(
                span, streamed=True, chunks=chunks, chunk_bytes=chunk_bytes
            )
        try:
            self._send_parts(encode_request_vectored(begin))
            if span is not None:
                self.tracer.annotate(span, sent=self.tracer.clock.now())
            self._drain(blocking=False)
            received_before = self.transport.bytes_received
            response = read_stream_response(self._reader, begin)
        except BaseException:
            if span is not None:
                self.tracer.fail(span, bytes_sent=STREAM_BEGIN_BYTES)
            self.last_error = CudaError.cudaErrorUnknown
            self._deferred_error = CudaError.cudaErrorUnknown
            self._abandon_inflight()
            raise
        self.round_trips += 1
        if span is not None:
            self.tracer.finish(
                span,
                bytes_sent=STREAM_BEGIN_BYTES,
                bytes_received=self.transport.bytes_received - received_before,
                error=response.error,
            )
        self.calls_made += 1
        self.last_error = CudaError(response.error)
        if self.exchange_hook is not None:
            self.exchange_hook(begin, response, STREAM_BEGIN_BYTES)
        error = self._surface(CudaError(response.error))
        data: np.ndarray | None = None
        if response.data is not None:
            # Frame reassembly into the contiguous result is this path's
            # one copy; charge it like the monolithic materialization.
            self.bytes_copied += count
            data = np.frombuffer(response.data, dtype=np.uint8)
        return error, data

    def _received_array(self, data) -> np.ndarray:
        """D2H payload as a caller-owned writable array.

        The transport's ``recv_into`` slow path already hands us a fresh
        ``bytearray`` we can wrap for free; only immutable ``bytes``
        (in-proc / single-segment reads) still require one copy to stay
        writable, which is charged to ``bytes_copied``.
        """
        if isinstance(data, bytearray):
            return np.frombuffer(data, dtype=np.uint8)
        self.bytes_copied += len(data)
        return np.frombuffer(data, dtype=np.uint8).copy()

    def cudaMemset(self, ptr: DevicePtr, value: int, count: int) -> CudaError:
        """Fill remote device memory with a byte value."""
        if not 0 <= value <= 0xFF or not 0 <= count < 2**32:
            return CudaError.cudaErrorInvalidValue
        request = MemsetRequest(ptr=ptr, value=value, size=count)
        if self.pipeline:
            return self._post(request)
        return CudaError(self._call(request).error)

    # -- kernel launch -------------------------------------------------------------

    def cudaConfigureCall(
        self, grid: Dim3, block: Dim3, shared_bytes: int = 0, stream: int = 0
    ) -> CudaError:
        self._launch_config = (grid, block, shared_bytes, stream)
        self._staged_args = []
        return CudaError.cudaSuccess

    def cudaSetupArgument(self, value) -> CudaError:
        if self._launch_config is None:
            return CudaError.cudaErrorMissingConfiguration
        self._staged_args.append(value)
        return CudaError.cudaSuccess

    def cudaLaunch(self, kernel_name: str) -> CudaError:
        if self._launch_config is None:
            return CudaError.cudaErrorMissingConfiguration
        grid, block, shared, stream = self._launch_config
        self._launch_config = None
        args = tuple(self._staged_args)
        self._staged_args = []
        launch = LaunchRequest(
            kernel_name=kernel_name,
            block=block,
            grid=grid,
            shared_bytes=shared,
            stream=stream,
        )
        if self.pipeline:
            if args:
                # One write for both Table I messages: the deferred
                # SetupArgs and the Launch share a single frame.
                return self._post_coalesced(
                    [SetupArgsRequest(args=args), launch]
                )
            return self._post(launch)
        if args:
            error = CudaError(self._call(SetupArgsRequest(args=args)).error)
            if error != CudaError.cudaSuccess:
                return error
        return CudaError(self._call(launch).error)

    def launch_kernel(
        self,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args: tuple,
        stream: int = 0,
        shared_bytes: int = 0,
    ) -> CudaError:
        """Convenience: configure + setup + launch."""
        self.cudaConfigureCall(grid, block, shared_bytes, stream)
        for arg in args:
            self.cudaSetupArgument(arg)
        return self.cudaLaunch(kernel_name)

    # -- sync / streams / events -------------------------------------------------

    def cudaThreadSynchronize(self) -> CudaError:
        return self._surface(CudaError(self._call(SyncRequest()).error))

    def cudaGetDeviceProperties(self) -> tuple[CudaError, PropertiesResponse]:
        response = self._call(PropertiesRequest())
        assert isinstance(response, PropertiesResponse)
        return self._surface(CudaError(response.error)), response

    def cudaStreamCreate(self) -> tuple[CudaError, int | None]:
        response = self._call(StreamCreateRequest())
        assert isinstance(response, ValueResponse)
        error = self._surface(CudaError(response.error))
        return error, response.value if error == CudaError.cudaSuccess else None

    def cudaStreamSynchronize(self, stream: int) -> CudaError:
        return self._surface(
            CudaError(self._call(StreamSyncRequest(stream=stream)).error)
        )

    def cudaEventCreate(self) -> tuple[CudaError, int | None]:
        response = self._call(EventCreateRequest())
        assert isinstance(response, ValueResponse)
        error = self._surface(CudaError(response.error))
        return error, response.value if error == CudaError.cudaSuccess else None

    def cudaEventRecord(self, event: int) -> CudaError:
        if self.pipeline:
            return self._post(EventRecordRequest(event=event))
        return CudaError(self._call(EventRecordRequest(event=event)).error)

    def cudaEventElapsedTime(
        self, start: int, end: int
    ) -> tuple[CudaError, float | None]:
        response = self._call(EventElapsedRequest(start=start, end=end))
        assert isinstance(response, ElapsedResponse)
        error = self._surface(CudaError(response.error))
        return error, response.elapsed_ms if error == CudaError.cudaSuccess else None

    # -- finalization stage ---------------------------------------------------------

    def close(self) -> None:
        """Finalization: close the socket; the server session releases the
        GPU context and associated resources.

        A pipelined session drains outstanding responses first, so a
        deferred failure is still surfaced (``last_error`` keeps the
        sticky error after close).
        """
        if not self._closed:
            try:
                self._drain()
            except Exception:
                # The transport died with acknowledgements outstanding;
                # nothing further to collect.
                pass
            finally:
                if self._deferred_error != CudaError.cudaSuccess:
                    self.last_error = self._deferred_error
                self._closed = True
                self.transport.close()

    def __enter__(self) -> "RemoteCudaRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
