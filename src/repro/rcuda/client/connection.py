"""Connection helpers: dial a server and run the initialization stage.

"The client side automatically establishes a connection with the remote
server, and locates and sends the GPU module of the application" --
:class:`RCudaClient` bundles exactly that: connect (TCP or in-process),
ship the module, check the capability handshake, hand back a live
:class:`~repro.rcuda.client.runtime.RemoteCudaRuntime`.
"""

from __future__ import annotations

from repro.errors import TransportError
from repro.rcuda.client.runtime import RemoteCudaRuntime
from repro.simcuda.errors import CudaError, check
from repro.simcuda.module import GpuModule
from repro.transport.base import Transport
from repro.transport.inproc import inproc_pair
from repro.transport.tcp import connect_tcp


class RCudaClient:
    """An initialized client session (context-manager friendly)."""

    def __init__(self, runtime: RemoteCudaRuntime) -> None:
        self.runtime = runtime

    @classmethod
    def connect(
        cls,
        transport: Transport,
        module: GpuModule,
        tracer=None,
        session_id: str | None = None,
        pipeline: bool = False,
        chunk_bytes: int | None = None,
        chunking: bool = True,
        stream_threshold: int | None = None,
        pipeline_window: int | None = None,
        d2d_route: str | None = None,
        profile: str | None = None,
    ) -> "RCudaClient":
        """Initialize a session over an already-connected transport.

        ``pipeline=True`` enables the deferred-acknowledgement hot path
        (see :class:`~repro.rcuda.client.runtime.RemoteCudaRuntime`);
        strict per-call synchronization remains the default.
        ``chunking``/``chunk_bytes`` control the chunked streaming path
        for large copies (on by default, frame size adapted to the link).
        ``profile`` loads a shipped per-network tuned config from
        :mod:`repro.tune.table`; the explicit knobs still win.
        """
        runtime = RemoteCudaRuntime(
            transport, tracer=tracer, session_id=session_id,
            pipeline=pipeline, chunk_bytes=chunk_bytes, chunking=chunking,
            stream_threshold=stream_threshold,
            pipeline_window=pipeline_window,
            d2d_route=d2d_route, profile=profile,
        )
        status = runtime.initialize(module)
        if status != CudaError.cudaSuccess:
            runtime.close()
            # An admission refusal keeps its readable explanation (and
            # ``runtime.last_error`` stays sticky past the close).
            check(
                status,
                runtime.refusal_detail or "rCUDA initialization",
            )
        return cls(runtime)

    @classmethod
    def connect_tcp(
        cls,
        host: str,
        port: int,
        module: GpuModule,
        nodelay: bool = True,
        tracer=None,
        session_id: str | None = None,
        pipeline: bool = False,
        chunk_bytes: int | None = None,
        chunking: bool = True,
        stream_threshold: int | None = None,
        pipeline_window: int | None = None,
        d2d_route: str | None = None,
        profile: str | None = None,
        socket_buffer_bytes: int | None = None,
    ) -> "RCudaClient":
        """Dial a daemon over TCP (Nagle disabled by default, as in the
        paper) and initialize.  The socket buffer floor follows the
        profile when one is named (explicit ``socket_buffer_bytes``
        wins, ``None`` falls back to the transport default)."""
        if socket_buffer_bytes is None and profile is not None:
            from repro.tune.table import resolve_profile

            socket_buffer_bytes = resolve_profile(profile).socket_buffer_bytes
        if socket_buffer_bytes is None:
            from repro.transport.tcp import SOCKET_BUFFER_BYTES

            socket_buffer_bytes = SOCKET_BUFFER_BYTES
        transport = connect_tcp(
            host, port, nodelay=nodelay,
            socket_buffer_bytes=socket_buffer_bytes,
        )
        try:
            return cls.connect(
                transport, module, tracer=tracer,
                session_id=session_id, pipeline=pipeline,
                chunk_bytes=chunk_bytes, chunking=chunking,
                stream_threshold=stream_threshold,
                pipeline_window=pipeline_window,
                d2d_route=d2d_route, profile=profile,
            )
        except Exception:
            transport.close()
            raise

    @classmethod
    def connect_inproc(
        cls,
        daemon,
        module: GpuModule,
        tracer=None,
        session_id: str | None = None,
        pipeline: bool = False,
        chunk_bytes: int | None = None,
        chunking: bool = True,
        stream_threshold: int | None = None,
        pipeline_window: int | None = None,
        d2d_route: str | None = None,
        profile: str | None = None,
    ) -> "RCudaClient":
        """Connect to a daemon in this process without sockets: creates a
        transport pair and asks the daemon to serve the far end."""
        client_end, server_end = inproc_pair()
        try:
            daemon.serve_transport(server_end)
            return cls.connect(
                client_end, module, tracer=tracer,
                session_id=session_id, pipeline=pipeline,
                chunk_bytes=chunk_bytes, chunking=chunking,
                stream_threshold=stream_threshold,
                pipeline_window=pipeline_window,
                d2d_route=d2d_route, profile=profile,
            )
        except Exception:
            client_end.close()
            raise

    @property
    def compute_capability(self) -> tuple[int, int]:
        cc = self.runtime.compute_capability
        if cc is None:
            raise TransportError("session is not initialized")
        return cc

    def close(self) -> None:
        self.runtime.close()

    def __enter__(self) -> "RCudaClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
