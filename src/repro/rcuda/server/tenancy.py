"""Multi-tenant device sharing: pooled devices, quotas, fair launch dispatch.

The daemon scaled to thousands of sessions (the event-loop rework) while
the "GPU" layer stayed effectively single-tenant: every session got its
own context on one device, kernel launches from different sessions landed
on *independent* per-context streams, and nothing modelled the paper's
core consolidation claim -- many cluster clients time-sharing few GPUs.
This module closes that gap:

* :class:`DevicePool` owns one or more shared :class:`SimulatedGpu`
  devices and hands each attaching session a :class:`Tenant` (least-
  loaded device placement, optional per-tenant byte quota);
* :class:`Tenant` carries the session's CUDA runtime plus its launch
  queue and the per-tenant ledger the observability surfaces export
  (quota headroom, queue-wait sketch, coalesced-launch counters,
  contention slowdown);
* :class:`LaunchScheduler` replaces direct per-session kernel dispatch
  with a deficit-round-robin queue over the tenants of one device.  A
  tenant's turn executes up to ``quantum`` adjacent launches as **one
  device submission**: the fixed per-launch overhead is paid once per
  batch (driver-level launch coalescing), which is where the aggregate
  throughput win over naive serialized dispatch comes from.  The
  scheduler also serializes batches on a device-wide busy horizon, so
  shared-device timing degrades realistically under load -- the live
  serving-path counterpart of :mod:`repro.cluster.contention`'s
  time-multiplexing model;
* :class:`TenantSessionHandler` is the shared-mode request handler:
  quota checks on ``cudaMalloc``, launches enqueued instead of executed
  (CUDA's own asynchronous-launch semantics make this faithful -- a
  launch returns immediately and execution errors surface at the next
  synchronization point), queued work drained before any operation that
  touches device memory or the clock.

Launch-queue liveness matters to the daemons: a session whose socket is
quiet but whose tenant still has queued launches reports
``pending_device_work`` and is not reaped by the idle-timeout sweep.

The single-tenant path is untouched: without a pool the daemons build
the plain :class:`~repro.rcuda.server.handler.SessionHandler` and stay
byte- and timing-identical on the wire.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceMemoryError,
    KernelError,
)
from repro.obs.slo import QuantileSketch
from repro.protocol.messages import (
    FreeRequest,
    MallocRequest,
    MallocResponse,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyStreamBeginRequest,
    MemsetRequest,
    Response,
    StreamSyncRequest,
    SyncRequest,
)
from repro.rcuda.server.handler import SessionHandler
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.runtime import CudaRuntime

#: Launches one tenant may coalesce into a single device submission per
#: scheduling turn (the DRR quantum, in launches).
DEFAULT_QUANTUM = 16

POLICY_FAIR = "fair"
POLICY_FIFO = "fifo"
POLICIES = (POLICY_FAIR, POLICY_FIFO)

_TENANT_IDS = itertools.count(1)


def _timeshare_factor(active_tenants: int) -> float:
    """Predicted per-tenant device slowdown under k-way sharing, from the
    cluster contention model (lazy import: the model package must not be
    a hard dependency of the serving hot path)."""
    from repro.cluster.contention import device_timeshare_factor

    return device_timeshare_factor(active_tenants)


@dataclass
class _QueuedLaunch:
    """One deferred kernel launch, validated at submit time."""

    kernel: object  # KernelImpl
    grid: object
    block: object
    args: tuple
    stream: object  # resolved CudaStream
    duration: float
    seq: int
    enqueued_at: float


class Tenant:
    """One session's slice of a pooled device: runtime, quota, queue,
    and the per-tenant ledger the ``/metrics``/``/sessions`` surfaces
    export."""

    def __init__(
        self,
        tenant_id: str,
        device_index: int,
        runtime: CudaRuntime,
        quota_bytes: int | None,
        scheduler: "LaunchScheduler",
        pool: "DevicePool",
    ) -> None:
        self.tenant_id = tenant_id
        self.device_index = device_index
        self.runtime = runtime
        self.quota_bytes = quota_bytes
        self.scheduler = scheduler
        self.pool = pool
        #: Session id of the owning server session (set on attach).
        self.session = ""
        #: Live device bytes held, maintained by the quota-checking
        #: malloc/free path (the enforcement counter; the session ledger
        #: keeps its own copy for unshared parity).
        self.bytes_held = 0
        self.peak_bytes_held = 0
        self.quota_denials = 0
        self._alloc_sizes: dict[int, int] = {}
        #: Deferred launches awaiting their scheduling turn.
        self.queue: deque[_QueuedLaunch] = deque()
        self.deficit = 0.0
        self._scheduled = False
        self.launches_enqueued = 0
        self.launches_executed = 0
        #: Launches that rode an earlier launch's device submission
        #: (batch size minus one, summed over batches).
        self.launches_coalesced = 0
        self.batches = 0
        #: Wall-clock wait between submit and device submission.
        self.queue_wait = QuantileSketch(lo=1e-7, hi=1e3)
        #: First execution error of a deferred launch; surfaced at the
        #: next synchronization point, as CUDA surfaces launch failures.
        self.pending_error = 0
        #: Device-clock timestamp at which this tenant's last submitted
        #: work completes.
        self.last_completion = 0.0
        #: EWMA of the contention model's predicted slowdown at each of
        #: this tenant's batch submissions (1.0 = alone on the device).
        self.contention_slowdown = 1.0
        self.released = False

    @property
    def quota_headroom(self) -> int | None:
        if self.quota_bytes is None:
            return None
        return max(0, self.quota_bytes - self.bytes_held)

    def take_error(self) -> int:
        """Pop the sticky deferred-launch error (sync-point semantics)."""
        error, self.pending_error = self.pending_error, 0
        return error

    def snapshot(self) -> dict:
        """The JSON block ``/sessions`` and the gauges export."""
        return {
            "tenant": self.tenant_id,
            "device": self.device_index,
            "quota_bytes": self.quota_bytes,
            "quota_used_bytes": self.bytes_held,
            "quota_headroom_bytes": self.quota_headroom,
            "quota_denials": self.quota_denials,
            "peak_bytes_held": self.peak_bytes_held,
            "queue_depth": len(self.queue),
            "launches_enqueued": self.launches_enqueued,
            "launches_executed": self.launches_executed,
            "launches_coalesced": self.launches_coalesced,
            "batches": self.batches,
            "queue_wait_p99_s": round(self.queue_wait.quantile(0.99), 9),
            "contention_slowdown": round(self.contention_slowdown, 3),
        }


class LaunchScheduler:
    """Fair-share (deficit round-robin) launch queue over one shared
    device, with per-turn batch coalescing.

    ``fair`` serves tenants round-robin, each turn executing up to
    ``quantum`` of that tenant's adjacent launches as one device
    submission (the batch pays the fixed launch overhead once).
    ``fifo`` is the naive baseline: strict global arrival order, one
    launch per submission, full overhead every time -- what direct
    per-session dispatch would do on a shared device.

    Batches from different tenants serialize on a device-wide busy
    horizon: one GPU time-multiplexes its tenants, so each tenant's
    completion time stretches with the load its neighbours offer (the
    serving-path realization of the contention model's device term).
    """

    def __init__(
        self,
        device: SimulatedGpu,
        policy: str = POLICY_FAIR,
        quantum: int = DEFAULT_QUANTUM,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"scheduler policy must be one of {POLICIES}, got {policy!r}"
            )
        if quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        self.device = device
        self.policy = policy
        self.quantum = quantum
        #: Tenants with queued work, in round-robin order.
        self._active: deque[Tenant] = deque()
        self._seq = itertools.count()
        self.batches = 0
        self.launches_executed = 0
        #: Device-wide busy horizon: the device clock time at which the
        #: last scheduled batch finishes (tenants time-share one GPU).
        self.device_busy_until = 0.0

    # -- submit --------------------------------------------------------------

    def submit(
        self,
        tenant: Tenant,
        kernel_name: str,
        grid,
        block,
        args: tuple,
        stream: int = 0,
        shared_bytes: int = 0,
    ) -> None:
        """Validate and enqueue one launch; raises
        :class:`CudaRuntimeError` on anything the device would reject at
        launch time (bad kernel, oversized block, malformed arguments),
        so obviously-invalid launches still fail on the spot -- only
        *execution* is deferred, as in CUDA."""
        device = self.device
        ctx = tenant.runtime.context
        if block.count > device.properties.max_threads_per_block:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue,
                f"block of {block.count} threads exceeds the device limit "
                f"of {device.properties.max_threads_per_block}",
            )
        if ctx.modules and not ctx.kernel_visible(kernel_name):
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure,
                f"kernel {kernel_name!r} is not exported by any loaded module",
            )
        try:
            kernel = device.registry.get(kernel_name)
        except KernelError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure, str(exc)
            ) from exc
        try:
            duration = kernel.cost_seconds(device.timing, grid, block, args)
        except (KernelError, IndexError, TypeError, ValueError) as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorLaunchFailure, f"{kernel_name}: {exc}"
            ) from exc
        try:
            resolved = ctx.get_stream(stream)
        except DeviceError as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue, str(exc)
            ) from exc
        tenant.queue.append(
            _QueuedLaunch(
                kernel=kernel,
                grid=grid,
                block=block,
                args=args,
                stream=resolved,
                duration=duration,
                seq=next(self._seq),
                enqueued_at=time.perf_counter(),
            )
        )
        tenant.launches_enqueued += 1
        if not tenant._scheduled:
            tenant._scheduled = True
            self._active.append(tenant)

    # -- drain ---------------------------------------------------------------

    def pending(self, tenant: Tenant) -> int:
        return len(tenant.queue)

    def drain_tenant(self, tenant: Tenant) -> None:
        """Run scheduling turns until ``tenant``'s queue is empty.  Under
        ``fair`` the turns interleave every contending tenant's batches
        (draining one tenant advances the whole device fairly); under
        ``fifo`` strict arrival order decides."""
        while tenant.queue:
            self._step()

    def drain_all(self) -> None:
        while self._active:
            self._step()

    def discard(self, tenant: Tenant) -> None:
        """Forget a detaching tenant's queued work (finalization)."""
        tenant.queue.clear()
        tenant.deficit = 0.0

    # -- one scheduling turn -------------------------------------------------

    def _step(self) -> None:
        active = self._active
        while active and not active[0].queue:
            gone = active.popleft()
            gone._scheduled = False
            gone.deficit = 0.0
        if not active:
            return
        if self.policy == POLICY_FIFO:
            tenant = min(active, key=lambda t: t.queue[0].seq)
            self._execute(tenant, [tenant.queue.popleft()])
            if not tenant.queue:
                active.remove(tenant)
                tenant._scheduled = False
            return
        tenant = active.popleft()
        tenant.deficit += self.quantum
        batch: list[_QueuedLaunch] = []
        while tenant.queue and tenant.deficit >= 1.0:
            batch.append(tenant.queue.popleft())
            tenant.deficit -= 1.0
        self._execute(tenant, batch)
        if tenant.queue:
            active.append(tenant)
        else:
            tenant._scheduled = False
            tenant.deficit = 0.0

    def _execute(self, tenant: Tenant, batch: list[_QueuedLaunch]) -> None:
        """Submit one tenant's batch to the device as a single coalesced
        submission: the first launch pays the fixed launch overhead, the
        rest ride it; compute costs are unchanged."""
        if not batch:
            return
        device = self.device
        overhead = device.timing.kernel_launch_overhead_s
        # Contending tenants (this one plus every other with queued
        # work) time-share the device; record what the contention model
        # predicts for this degree of sharing.
        contenders = 1 + sum(1 for t in self._active if t.queue and t is not tenant)
        predicted = _timeshare_factor(contenders)
        tenant.contention_slowdown = (
            0.8 * tenant.contention_slowdown + 0.2 * predicted
        )
        now_wall = time.perf_counter()
        horizon = max(device.clock.now(), self.device_busy_until)
        busy_from = horizon
        max_wait = 0.0
        for i, q in enumerate(batch):
            duration = q.duration if i == 0 else max(q.duration - overhead, 0.0)
            start = max(horizon, q.stream.busy_until)
            done = q.stream.enqueue(start, duration)
            horizon = done
            tenant.last_completion = done
            device.kernel_launches += 1
            wait = now_wall - q.enqueued_at
            if wait > max_wait:
                max_wait = wait
            tenant.queue_wait.observe(wait)
            if device.functional:
                try:
                    q.kernel.execute(device.memory, q.grid, q.block, q.args)
                except (
                    DeviceMemoryError, KernelError,
                    IndexError, TypeError, ValueError,
                ):
                    if tenant.pending_error == 0:
                        tenant.pending_error = int(
                            CudaError.cudaErrorLaunchFailure
                        )
        self.device_busy_until = horizon
        executed = len(batch)
        tenant.launches_executed += executed
        tenant.launches_coalesced += executed - 1
        tenant.batches += 1
        self.batches += 1
        self.launches_executed += executed
        flight = tenant.pool.flight
        if flight is not None:
            # One event per batch (not per launch): the causal assembler
            # joins these to the server span that paid the drain, so a
            # dominant scheduler wait can be blamed on a tenant + batch.
            flight.record(
                "sched", "batch",
                session=tenant.session,
                tenant=tenant.tenant_id,
                launches=executed,
                coalesced=executed - 1,
                contenders=contenders,
                max_wait_seconds=max_wait,
                busy_from=busy_from,
                busy_until=horizon,
            )


class DevicePool:
    """One or more shared simulated devices, tenanted.

    Sessions :meth:`attach` to get a :class:`Tenant` on the least-loaded
    device; :meth:`release` (idempotent) drops the tenant's queued work
    and tears down its context.  ``lock`` is the pool-wide reentrant
    lock every shared-mode handler holds across a request -- the thread
    daemon dispatches sessions concurrently and the simulated devices
    are not internally synchronized.
    """

    def __init__(
        self,
        devices: int | list[SimulatedGpu] = 1,
        quota_bytes: int | None = None,
        policy: str = POLICY_FAIR,
        quantum: int = DEFAULT_QUANTUM,
        device_factory=None,
    ) -> None:
        if isinstance(devices, int):
            if devices < 1:
                raise ConfigurationError(
                    f"a pool needs at least one device, got {devices}"
                )
            factory = device_factory if device_factory is not None else SimulatedGpu
            self.devices = [factory() for _ in range(devices)]
        else:
            self.devices = list(devices)
            if not self.devices:
                raise ConfigurationError("a pool needs at least one device")
        if quota_bytes is not None and quota_bytes < 1:
            raise ConfigurationError(
                f"quota_bytes must be positive, got {quota_bytes}"
            )
        self.quota_bytes = quota_bytes
        self.policy = policy
        self.schedulers = [
            LaunchScheduler(device, policy=policy, quantum=quantum)
            for device in self.devices
        ]
        self.lock = threading.RLock()
        self._tenants: dict[str, Tenant] = {}
        self._attached = [0] * len(self.devices)
        self.total_tenants = 0
        #: Optional :class:`~repro.obs.flight.FlightRecorder` the owning
        #: daemon shares with the pool so scheduler batch events land in
        #: the same postmortem/causal timeline as the spans.
        self.flight = None

    def attach(self, session: str = "") -> Tenant:
        """Place a new tenant on the least-loaded device."""
        with self.lock:
            index = min(
                range(len(self.devices)), key=lambda i: self._attached[i]
            )
            tenant = Tenant(
                tenant_id=f"tenant-{next(_TENANT_IDS)}",
                device_index=index,
                runtime=CudaRuntime(self.devices[index], preinitialized=True),
                quota_bytes=self.quota_bytes,
                scheduler=self.schedulers[index],
                pool=self,
            )
            tenant.session = session
            self._tenants[tenant.tenant_id] = tenant
            self._attached[index] += 1
            self.total_tenants += 1
            return tenant

    def release(self, tenant: Tenant) -> None:
        """Detach: drop queued launches, free the tenant's allocations
        (context teardown), forget it.  Idempotent."""
        with self.lock:
            if tenant.released:
                return
            tenant.released = True
            tenant.scheduler.discard(tenant)
            tenant.runtime.close()
            self._attached[tenant.device_index] -= 1
            self._tenants.pop(tenant.tenant_id, None)

    def tenants(self) -> list[Tenant]:
        with self.lock:
            return list(self._tenants.values())

    @property
    def tenant_count(self) -> int:
        return len(self._tenants)

    def snapshot(self) -> dict:
        """Pool-level summary for health documents and dumps."""
        with self.lock:
            return {
                "devices": len(self.devices),
                "policy": self.policy,
                "quota_bytes": self.quota_bytes,
                "tenants": self.tenant_count,
                "total_tenants": self.total_tenants,
                "per_device": [
                    {
                        "device": i,
                        "tenants": self._attached[i],
                        "mem_used_bytes": self.devices[i].memory.used,
                        "mem_capacity_bytes": self.devices[i].memory.capacity,
                        "launches_executed": self.schedulers[i].launches_executed,
                        "batches": self.schedulers[i].batches,
                    }
                    for i in range(len(self.devices))
                ],
            }


#: Requests that touch device memory or the device clock: queued
#: launches must reach the device first so ordering matches the direct
#: dispatch path (a memcpy after a launch reads the kernel's output; a
#: free after a launch must not pull the buffer out from under it).
_DRAIN_BEFORE = frozenset({
    MemcpyRequest,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyStreamBeginRequest,
    MemsetRequest,
    FreeRequest,
    SyncRequest,
    StreamSyncRequest,
})


class TenantSessionHandler(SessionHandler):
    """Shared-device request handler: same wire protocol, tenant rules.

    Differences from the single-tenant handler, all scoped to shared
    mode: every request runs under the pool lock; ``cudaMalloc`` is
    quota-checked; ``cudaLaunch`` enqueues on the fair-share scheduler
    and returns immediately (execution errors surface at the next sync,
    CUDA's own asynchronous-launch contract); requests that touch
    device memory or the clock drain this tenant's queue first.
    """

    def __init__(self, tenant: Tenant) -> None:
        super().__init__(tenant.runtime)
        self.tenant = tenant
        self._scheduler = tenant.scheduler
        self._pool_lock = tenant.pool.lock
        #: Wall seconds the most recent request spent draining queued
        #: launches before it could run (the tenant-scheduler-wait the
        #: dispatch layer attaches to the server span).
        self.last_drain_seconds = 0.0

    @property
    def pending_device_work(self) -> bool:
        return bool(self.tenant.queue)

    def handle_init(self, request):
        with self._pool_lock:
            return super().handle_init(request)

    def handle(self, request):
        with self._pool_lock:
            if type(request) in _DRAIN_BEFORE and self.tenant.queue:
                t0 = time.perf_counter()
                self._scheduler.drain_tenant(self.tenant)
                self.last_drain_seconds = time.perf_counter() - t0
            elif self.last_drain_seconds:
                self.last_drain_seconds = 0.0
            return super().handle(request)

    def _handle_malloc(self, request: MallocRequest) -> MallocResponse:
        tenant = self.tenant
        if (
            tenant.quota_bytes is not None
            and tenant.bytes_held + request.size > tenant.quota_bytes
        ):
            tenant.quota_denials += 1
            self.runtime.last_error = CudaError.cudaErrorMemoryAllocation
            return MallocResponse(
                error=int(CudaError.cudaErrorMemoryAllocation), ptr=0
            )
        response = super()._handle_malloc(request)
        if response.error == 0:
            tenant.bytes_held += request.size
            tenant._alloc_sizes[response.ptr] = request.size
            if tenant.bytes_held > tenant.peak_bytes_held:
                tenant.peak_bytes_held = tenant.bytes_held
        return response

    def _handle_free(self, request: FreeRequest) -> Response:
        response = super()._handle_free(request)
        if response.error == 0:
            tenant = self.tenant
            tenant.bytes_held -= tenant._alloc_sizes.pop(request.ptr, 0)
        return response

    def _handle_launch(self, request) -> Response:
        args, self._staged_args = self._staged_args, ()
        try:
            self._scheduler.submit(
                self.tenant,
                request.kernel_name,
                request.grid,
                request.block,
                args,
                stream=request.stream,
                shared_bytes=request.shared_bytes,
            )
        except CudaRuntimeError as exc:
            self.runtime.last_error = exc.status
            return Response(error=int(exc.status))
        self.runtime.last_error = CudaError.cudaSuccess
        return Response(error=int(CudaError.cudaSuccess))

    def _surface_deferred(self, response: Response) -> Response:
        """Sync points report the first deferred launch-execution error
        (the queue was drained before the sync ran)."""
        error = self.tenant.take_error()
        if error and response.error == 0:
            self.runtime.last_error = CudaError(error)
            return Response(error=error)
        return response

    def _handle_sync(self, request) -> Response:
        return self._surface_deferred(super()._handle_sync(request))

    def _handle_stream_sync(self, request) -> Response:
        return self._surface_deferred(super()._handle_stream_sync(request))

    def close(self) -> None:
        """Finalization: release the tenant (queued work is dropped, the
        context and its allocations are torn down)."""
        with self._pool_lock:
            self.tenant.pool.release(self.tenant)
