"""Request handler: one decoded request in, one response out.

Transport-free by design (the session layer owns the bytes), so the full
dispatch logic is unit-testable without sockets.  The handler drives a
:class:`~repro.simcuda.runtime.CudaRuntime` whose context the daemon
pre-initialized -- the server-side half of the paper's observation that
remote executions skip the CUDA environment initialization delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.protocol.messages import (
    ElapsedResponse,
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemcpyStreamResponse,
    MemsetRequest,
    PropertiesRequest,
    PropertiesResponse,
    Request,
    Response,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
    ValueResponse,
)
from repro.simcuda.errors import CudaError
from repro.simcuda.module import parse_module
from repro.simcuda.runtime import CudaRuntime
from repro.simcuda.types import MemcpyKind


@dataclass
class _StreamState:
    """One open H2D stream: assembly cursor plus the first sticky error."""

    dst: int
    size: int
    chunk_bytes: int
    received: int = 0
    chunks_seen: int = 0
    error: int = 0


class SessionHandler:
    """Maps one session's requests onto its CUDA runtime.

    ``handle`` may return ``None`` for messages that are *not*
    acknowledged on the wire (stream Begin and chunk frames); the session
    layer simply sends nothing back for those.
    """

    #: Steady-state dispatch table (exact request type -> unbound handler
    #: method); populated at module bottom once all methods exist.
    _DISPATCH: dict = {}

    def __init_subclass__(cls, **kwargs) -> None:
        """Rebind the dispatch table per subclass: the table stores
        function objects, so a subclass overriding ``_handle_launch``
        would otherwise still dispatch to the base implementation."""
        super().__init_subclass__(**kwargs)
        cls._DISPATCH = {
            rtype: getattr(cls, fn.__name__)
            for rtype, fn in cls._DISPATCH.items()
        }

    def __init__(self, runtime: CudaRuntime) -> None:
        self.runtime = runtime
        self._staged_args: tuple = ()
        self._streams: dict[int, _StreamState] = {}
        self.requests_handled = 0

    @property
    def pending_device_work(self) -> bool:
        """Whether device work is queued beyond the socket (always false
        for direct dispatch; the tenant handler overrides).  The idle
        sweep consults this so a session parked in a scheduler queue is
        not reaped as idle."""
        return False

    # -- initialization (first exchange of a connection) ---------------------

    def handle_init(self, request: InitRequest) -> InitResponse:
        """Load the shipped GPU module and answer with the device's
        compute capability (Table I's 8-byte field)."""
        self.requests_handled += 1
        try:
            module = parse_module(request.module)
        except ProtocolError:
            return InitResponse(
                error=int(CudaError.cudaErrorInitializationError),
                compute_capability=(0, 0),
            )
        error = self.runtime.load_module(module)
        _, props = self.runtime.cudaGetDeviceProperties()
        return InitResponse(
            error=int(error), compute_capability=props.compute_capability
        )

    # -- steady-state dispatch ------------------------------------------------

    def handle(self, request: Request) -> Response | None:
        """Exact-type table dispatch: request classes are flat (no request
        subclasses another), so one dict probe on ``type(request)``
        replaces the old isinstance chain -- the chain put hot memsets
        seventh and cost up to 20 type checks per request at the
        event-loop's message rates."""
        self.requests_handled += 1
        handle = self._DISPATCH.get(type(request))
        if handle is None:
            raise ProtocolError(
                f"no handler for request type {type(request).__name__}"
            )
        return handle(self, request)

    def _handle_malloc(self, request: MallocRequest) -> MallocResponse:
        error, ptr = self.runtime.cudaMalloc(request.size)
        return MallocResponse(error=int(error), ptr=ptr or 0)

    def _handle_memset(self, request: MemsetRequest) -> Response:
        return Response(
            error=int(
                self.runtime.cudaMemset(request.ptr, request.value, request.size)
            )
        )

    def _handle_setup_args(self, request: SetupArgsRequest) -> Response:
        self._staged_args = request.args
        return Response(error=int(CudaError.cudaSuccess))

    def _handle_free(self, request: FreeRequest) -> Response:
        return Response(error=int(self.runtime.cudaFree(request.ptr)))

    def _handle_sync(self, request: SyncRequest) -> Response:
        return Response(error=int(self.runtime.cudaThreadSynchronize()))

    def _handle_properties(self, request: PropertiesRequest) -> PropertiesResponse:
        _, props = self.runtime.cudaGetDeviceProperties()
        return PropertiesResponse(
            error=int(CudaError.cudaSuccess),
            name=props.name,
            compute_capability=props.compute_capability,
            total_global_mem=props.total_global_mem,
        )

    def _handle_stream_create(self, request: StreamCreateRequest) -> ValueResponse:
        error, handle = self.runtime.cudaStreamCreate()
        return ValueResponse(error=int(error), value=handle or 0)

    def _handle_stream_sync(self, request: StreamSyncRequest) -> Response:
        return Response(
            error=int(self.runtime.cudaStreamSynchronize(request.stream))
        )

    def _handle_event_create(self, request: EventCreateRequest) -> ValueResponse:
        error, handle = self.runtime.cudaEventCreate()
        return ValueResponse(error=int(error), value=handle or 0)

    def _handle_event_record(self, request: EventRecordRequest) -> Response:
        return Response(error=int(self.runtime.cudaEventRecord(request.event)))

    def _handle_event_elapsed(self, request: EventElapsedRequest) -> ElapsedResponse:
        error, elapsed = self.runtime.cudaEventElapsedTime(
            request.start, request.end
        )
        return ElapsedResponse(error=int(error), elapsed_ms=elapsed or 0.0)

    def _handle_memcpy(self, request: MemcpyRequest) -> Response:
        # ``request.data`` (H2D) flows into device memory as received --
        # ``memory.write`` wraps it with ``np.frombuffer``, so the only
        # copy is the one into the device array itself.
        kind = MemcpyKind(request.kind)
        error, data = self.runtime.cudaMemcpy(
            request.dst, request.src, request.size, kind, host_data=request.data
        )
        if kind is MemcpyKind.cudaMemcpyDeviceToHost:
            return MemcpyResponse(error=int(error), data=self._d2h_payload(data))
        return Response(error=int(error))

    def _handle_memcpy_async(self, request: MemcpyAsyncRequest) -> Response:
        kind = MemcpyKind(request.kind)
        error, data = self.runtime.cudaMemcpyAsync(
            request.dst,
            request.src,
            request.size,
            kind,
            stream=request.stream,
            host_data=request.data,
        )
        if kind is MemcpyKind.cudaMemcpyDeviceToHost:
            return MemcpyResponse(error=int(error), data=self._d2h_payload(data))
        return Response(error=int(error))

    @staticmethod
    def _d2h_payload(data) -> memoryview | None:
        """D2H bytes as a zero-copy view over the array ``memory.read``
        produced (the old ``tobytes()`` duplicated every outbound
        payload); the view rides the vectored response send untouched."""
        return memoryview(data).cast("B") if data is not None else None

    # -- chunked streaming ----------------------------------------------------

    def _handle_stream_begin(
        self, request: MemcpyStreamBeginRequest
    ) -> Response | None:
        kind = MemcpyKind(request.kind)
        if kind is MemcpyKind.cudaMemcpyHostToDevice:
            # No ack: the terminal End carries the stream's one response.
            self._streams[request.stream_id] = _StreamState(
                dst=request.dst,
                size=request.size,
                chunk_bytes=request.chunk_bytes,
            )
            return None
        if kind is MemcpyKind.cudaMemcpyDeviceToHost:
            return self._stream_d2h_response(request)
        return MemcpyStreamResponse(
            error=int(CudaError.cudaErrorInvalidMemcpyDirection)
        )

    def _stream_d2h_response(
        self, request: MemcpyStreamBeginRequest
    ) -> MemcpyStreamResponse:
        """Answer a D2H Begin with per-chunk zero-copy device views.

        Each chunk pays its own PCIe charge (the device-side pipeline
        stage); the views are safe to hand out because the session layer
        sends them before any later request can mutate device memory.
        """
        chunk_bytes = max(1, request.chunk_bytes)
        views: list = []
        offset = 0
        while offset < request.size:
            nbytes = min(chunk_bytes, request.size - offset)
            error, view = self.runtime.memcpy_view(request.src + offset, nbytes)
            if error != CudaError.cudaSuccess:
                return MemcpyStreamResponse(error=int(error))
            views.append(memoryview(view).cast("B"))
            offset += nbytes
        return MemcpyStreamResponse(error=0, chunks=tuple(views))

    def _handle_stream_chunk(self, request: MemcpyChunkRequest) -> None:
        state = self._streams.get(request.stream_id)
        if state is None:
            # No response channel for chunks: an orphan frame (e.g. after
            # a failed Begin) is consumed and dropped.
            return None
        if state.error == 0 and request.seq != state.chunks_seen:
            state.error = int(CudaError.cudaErrorInvalidValue)
        state.chunks_seen += 1
        if state.error != 0:
            return None
        # Each chunk lands straight in device memory through the normal
        # synchronous-copy path: range validation plus the per-chunk PCIe
        # charge -- the device-side stage the network stage overlaps.
        error, _ = self.runtime.cudaMemcpy(
            state.dst + state.received,
            0,
            request.size,
            MemcpyKind.cudaMemcpyHostToDevice,
            host_data=request.data,
        )
        if error != CudaError.cudaSuccess:
            state.error = int(error)
            return None
        state.received += request.size
        return None

    def _handle_stream_end(self, request: MemcpyStreamEndRequest) -> Response:
        state = self._streams.pop(request.stream_id, None)
        if state is None:
            return Response(error=int(CudaError.cudaErrorInvalidValue))
        if state.error != 0:
            return Response(error=state.error)
        if state.received != state.size or state.chunks_seen != request.chunks:
            return Response(error=int(CudaError.cudaErrorInvalidValue))
        return Response(error=int(CudaError.cudaSuccess))

    def _handle_launch(self, request: LaunchRequest) -> Response:
        args, self._staged_args = self._staged_args, ()
        error = self.runtime.launch_kernel(
            request.kernel_name,
            grid=request.grid,
            block=request.block,
            args=args,
            stream=request.stream,
            shared_bytes=request.shared_bytes,
        )
        return Response(error=int(error))

    def close(self) -> None:
        """Finalization: release the session's GPU context and resources."""
        self.runtime.close()


#: Steady-state dispatch: exact request type -> unbound handler method.
#: Built once at import; ``handle`` probes it with ``type(request)``.
#: Stored on the class so ``__init_subclass__`` can rebind overrides.
SessionHandler._DISPATCH = {
    MemcpyStreamBeginRequest: SessionHandler._handle_stream_begin,
    MemcpyChunkRequest: SessionHandler._handle_stream_chunk,
    MemcpyStreamEndRequest: SessionHandler._handle_stream_end,
    MallocRequest: SessionHandler._handle_malloc,
    MemcpyAsyncRequest: SessionHandler._handle_memcpy_async,
    MemcpyRequest: SessionHandler._handle_memcpy,
    MemsetRequest: SessionHandler._handle_memset,
    SetupArgsRequest: SessionHandler._handle_setup_args,
    LaunchRequest: SessionHandler._handle_launch,
    FreeRequest: SessionHandler._handle_free,
    SyncRequest: SessionHandler._handle_sync,
    PropertiesRequest: SessionHandler._handle_properties,
    StreamCreateRequest: SessionHandler._handle_stream_create,
    StreamSyncRequest: SessionHandler._handle_stream_sync,
    EventCreateRequest: SessionHandler._handle_event_create,
    EventRecordRequest: SessionHandler._handle_event_record,
    EventElapsedRequest: SessionHandler._handle_event_elapsed,
}
