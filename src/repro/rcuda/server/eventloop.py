"""Selector-based event-loop daemon: thousands of sessions, one I/O thread.

The thread-per-connection :class:`~repro.rcuda.server.daemon.RCudaDaemon`
reproduces the paper's process-per-remote-execution shape faithfully, but
a cluster-scale consolidation scenario (Section V: many nodes sharing few
GPU servers) parks thousands of mostly-idle connections on the daemon --
and a thread apiece is exactly the memory/scheduler cost the paper's
"remote GPU virtualization" argument says the server side must not pay.

:class:`AsyncRCudaDaemon` serves the same wire protocol from a single
``selectors``-driven I/O thread:

* non-blocking accept/read/write; per-connection state machines driven by
  the codec's own message boundaries (:class:`StreamDecoder` -- one
  decode implementation, so wire-byte identity with the blocking path
  holds by construction);
* bounded per-session queues with explicit backpressure: when a session's
  decoded-request queue fills or its outbound backlog crosses the high
  water mark, the loop *stops reading that socket* (the kernel buffer and
  then TCP flow control push back to the client) and resumes on drain;
* zero-copy responses survive: dispatch enqueues the same vectored
  header+payload views the blocking path hands to ``sendmsg``, and the
  flush path scatter-gathers them in ``IOV_BATCH`` batches.  A D2H
  payload is a *view of live device memory*, so a session with device
  views in its outbound queue is not dispatched again until they reach
  the wire (the flush gate) -- otherwise a later request could mutate
  the memory mid-send;
* keepalive with idle timeout, and graceful drain on ``stop()``: queued
  requests finish, outbound bytes flush, then connections close with the
  clean ``server-drained`` reason.  Only connections force-closed at the
  drain deadline count as unclean and trigger the flight-recorder
  postmortem.

The loop also measures its own health: a heartbeat tick is scheduled
every ``LAG_TICK`` seconds and the observed lateness (EWMA + max) is the
event-loop lag that ``/healthz`` reports -- the first saturation signal
a multiplexed server shows.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from itertools import islice

from repro.errors import ProtocolError, TransportClosedError, TransportError
from repro.obs.flight import EVENT_DAEMON
from repro.protocol.codec import encode_response
from repro.protocol.messages import InitResponse
from repro.protocol.streamdec import StreamDecoder
from repro.rcuda.server.daemon import ADMISSION_REFUSED_ERROR, DaemonCore
from repro.rcuda.server.session import (
    CLEAN_REASONS,
    CLOSE_CLEAN,
    CLOSE_DISPATCH_RAISED,
    CLOSE_DRAINED,
    CLOSE_IDLE,
    CLOSE_MID_DISPATCH,
    CLOSE_MID_MESSAGE,
    CLOSE_MID_STREAM,
    CLOSE_PROTOCOL,
    ServerSession,
)
from repro.transport.base import Transport
from repro.transport.tcp import IOV_BATCH, SOCKET_BUFFER_BYTES

#: Bytes asked of one non-blocking ``recv`` per readable event.
RECV_BYTES = 256 << 10

#: Decoded requests a session may queue before the loop stops reading its
#: socket (backpressure: TCP flow control then pushes back to the client).
INBOUND_QUEUE_LIMIT = 64

#: Reading resumes once the queue has drained to this depth (hysteresis,
#: so a session at the limit does not flap interest per message).
INBOUND_RESUME = 16

#: Outbound backlog (bytes not yet on the wire) above which a session
#: stops being dispatched *and* stops being read.
OUTBOUND_HIGH_WATER = 8 << 20

#: Dispatch and reading resume once the backlog flushes below this.
OUTBOUND_LOW_WATER = 1 << 20

#: Requests dispatched per session per loop pass, so one chatty session
#: cannot starve a thousand quiet ones.
DISPATCH_BUDGET = 64

#: Connections accepted per readable-listener event.
ACCEPT_BURST = 64

#: Heartbeat cadence; observed lateness is the loop-lag health signal.
LAG_TICK = 0.25

#: Idle/deadline sweep cadence.
SWEEP_INTERVAL = 1.0

#: A clean close with unflushed bytes gets this long to deliver them.
FLUSH_GRACE = 5.0


def _nbytes(buf) -> int:
    return len(buf) if isinstance(buf, bytes) else buf.nbytes


class _LoopTransport(Transport):
    """The event loop's transport: sends enqueue, reads are loop-driven.

    ``send``/``send_vectored`` never block and never copy -- buffers (and
    the zero-copy device-memory views of D2H responses) go into an
    outbound deque the loop flushes with ``sendmsg`` when the socket is
    writable.  Byte/message accounting happens at enqueue time, so the
    session's observed dispatch path sees identical counters to the
    blocking transport.
    """

    def __init__(
        self,
        sock: socket.socket,
        nodelay: bool = True,
        socket_buffer_bytes: int | None = SOCKET_BUFFER_BYTES,
    ) -> None:
        super().__init__()
        self._sock = sock
        self._closed = False
        #: A fatal send error was seen; the connection is beyond saving.
        self.dead = False
        self._outbound: deque = deque()
        #: Enqueued bytes not yet handed to the kernel.
        self.unsent_bytes = 0
        #: True while the outbound queue holds a view of live device
        #: memory (a zero-copy D2H payload).  The loop must flush before
        #: dispatching this session again, or a later request could
        #: mutate the memory mid-send.
        self.flush_gate = False
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1 if nodelay else 0)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        except OSError:  # pragma: no cover - platform dependent
            pass
        if socket_buffer_bytes is not None:
            for opt in (socket.SO_RCVBUF, socket.SO_SNDBUF):
                try:
                    if sock.getsockopt(socket.SOL_SOCKET, opt) < socket_buffer_bytes:
                        sock.setsockopt(socket.SOL_SOCKET, opt, socket_buffer_bytes)
                except OSError:  # pragma: no cover - platform dependent
                    pass

    def send(self, data) -> None:
        if type(data) is bytes:
            # The single-buffer ack path every small response takes:
            # enqueue and account without the vectored loop's dispatch.
            if self._closed or self.dead:
                raise TransportClosedError("send on a closed transport")
            nbytes = len(data)
            if nbytes:
                self._outbound.append(data)
                self.unsent_bytes += nbytes
            self.bytes_sent += nbytes
            self.messages_sent += 1
            return
        self.send_vectored((data,), messages=1)

    def send_vectored(self, bufs, messages: int = 1) -> None:
        if self._closed or self.dead:
            raise TransportClosedError("send on a closed transport")
        total = 0
        for buf in bufs:
            if isinstance(buf, bytes):
                if buf:
                    self._outbound.append(buf)
                    total += len(buf)
            else:
                view = memoryview(buf).cast("B")
                if view.nbytes:
                    self._outbound.append(view)
                    total += view.nbytes
                    # Conservatively treat any borrowed view as a device
                    # view: flush before the session dispatches again.
                    self.flush_gate = True
        self.unsent_bytes += total
        self._account_send(total, messages=messages)

    def flush(self) -> bool:
        """Push queued buffers to the kernel; True when fully drained,
        False when the socket would block.  Raises TransportError on a
        dead peer (and marks the transport dead)."""
        out = self._outbound
        while out:
            batch = list(islice(out, IOV_BATCH))
            try:
                sent = self._sock.sendmsg(batch)
            except (BlockingIOError, InterruptedError):
                return False
            except OSError as exc:
                self.dead = True
                raise TransportError(f"TCP sendmsg failed: {exc}") from exc
            self.unsent_bytes -= sent
            while out and sent >= _nbytes(out[0]):
                sent -= _nbytes(out[0])
                out.popleft()
            if sent:
                out[0] = memoryview(out[0])[sent:]
        self.flush_gate = False
        return True

    def recv_exact(self, nbytes: int):
        raise TransportError(
            "event-loop transport reads are selector-driven; "
            "use the blocking daemon for pull-based consumers"
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbound.clear()
            self.unsent_bytes = 0
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass


class _Connection:
    """Per-socket state machine the loop drives."""

    __slots__ = (
        "sock", "transport", "session", "decoder", "inbound", "seq",
        "reading_paused", "want_write", "registered", "eof", "draining",
        "finished", "refused", "decode_error", "close_after_flush",
        "flush_deadline", "last_activity",
    )

    def __init__(self, sock, transport, session, now: float) -> None:
        self.sock = sock
        self.transport: _LoopTransport = transport
        self.session: ServerSession | None = session  # None => refusal
        self.decoder = StreamDecoder(expect_init=True)
        #: Decoded-but-undispatched (request, consumed_bytes, arrived_at)
        #: triples; ``arrived_at`` is 0.0 when the session is untraced.
        self.inbound: deque = deque()
        self.seq = 0
        self.reading_paused = False
        self.want_write = False
        self.registered = 0  # selector interest mask currently installed
        self.eof = False
        self.draining = False
        self.finished = False
        self.refused = session is None
        self.decode_error: str | None = None
        #: (reason, detail) to complete with once outbound flushes.
        self.close_after_flush: tuple[str, str] | None = None
        self.flush_deadline = 0.0
        self.last_activity = now


class AsyncRCudaDaemon(DaemonCore):
    """Event-loop mode: one selector thread multiplexing every TCP
    connection, with bounded queues, backpressure and graceful drain.

    ``serve_transport`` (in-process pairs) still runs sessions on
    threads -- the event loop only owns sockets it accepted.
    """

    def __init__(
        self,
        *args,
        idle_timeout: float | None = None,
        inbound_queue: int = INBOUND_QUEUE_LIMIT,
        outbound_limit: int = OUTBOUND_HIGH_WATER,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if idle_timeout is not None and idle_timeout <= 0:
            raise TransportError(
                f"idle_timeout must be positive, got {idle_timeout}"
            )
        self.idle_timeout = idle_timeout
        self.inbound_queue = max(1, int(inbound_queue))
        self.outbound_limit = max(1, int(outbound_limit))
        self._inbound_resume = min(INBOUND_RESUME, max(0, self.inbound_queue // 4))
        self._outbound_resume = min(OUTBOUND_LOW_WATER, max(1, self.outbound_limit // 8))
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._loop_thread: threading.Thread | None = None
        self._waker_r: socket.socket | None = None
        self._waker_w: socket.socket | None = None
        self._conns: dict[int, _Connection] = {}
        self._runnable: set[_Connection] = set()
        self._drain_deadline = 0.0
        self._drain_started = False
        #: Times a session's reads were paused for backpressure (inbound
        #: queue full or outbound backlog over the high water mark).
        self.backpressure_stalls = 0
        #: Sessions reaped by the idle keepalive timeout.
        self.idle_closed_sessions = 0
        #: Event-loop lag: EWMA and worst-case lateness of the heartbeat
        #: tick.  The first saturation signal a multiplexed server shows;
        #: ``/healthz`` reports both.
        self.loop_lag_seconds = 0.0
        self.loop_lag_max = 0.0
        self._exported_queue_ids: set[str] = set()
        if self.metrics is not None:
            self._register_loop_gauges(self.metrics)

    def _register_loop_gauges(self, metrics) -> None:
        metrics.gauge(
            "rcuda_loop_lag_seconds",
            "Event-loop heartbeat lateness (EWMA); saturation signal.",
        ).set_function(lambda: self.loop_lag_seconds)
        metrics.gauge(
            "rcuda_backpressure_stalls_total",
            "Times a session's reads were paused by queue backpressure.",
        ).set_function(lambda: self.backpressure_stalls)
        metrics.gauge(
            "rcuda_idle_closed_sessions_total",
            "Sessions reaped by the keepalive idle timeout.",
        ).set_function(lambda: self.idle_closed_sessions)
        metrics.gauge(
            "rcuda_loop_connections",
            "Connections currently registered with the event loop.",
        ).set_function(lambda: len(self._conns))
        self._g_queue_depth = metrics.gauge(
            "rcuda_session_inbound_depth",
            "Decoded requests queued for one session, awaiting dispatch.",
            labelnames=("session",),
        )
        self._g_queue_bytes = metrics.gauge(
            "rcuda_session_outbound_bytes",
            "Response bytes queued for one session, awaiting the wire.",
            labelnames=("session",),
        )
        metrics.add_collect_hook(self._refresh_queue_gauges)

    def _refresh_queue_gauges(self) -> None:
        """Scrape-time refresh of the per-session queue gauges (the
        dispatch/flush hot paths never touch the registry)."""
        with self._lock:
            live = [
                (c.session.session_id, len(c.inbound), c.transport.unsent_bytes)
                for c in self._conns.values()
                if c.session is not None and not c.finished
            ]
        current: set[str] = set()
        for sid, depth, unsent in live:
            current.add(sid)
            self._g_queue_depth.set(depth, session=sid)
            self._g_queue_bytes.set(unsent, session=sid)
        for stale in self._exported_queue_ids - current:
            self._g_queue_depth.remove(session=stale)
            self._g_queue_bytes.remove(session=stale)
        self._exported_queue_ids = current

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        if self._running:
            raise TransportError("daemon is already running")
        listener = self._bind_listener()
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._selector.register(self._waker_r, selectors.EVENT_READ, "wake")
        self._running = True
        self._drain_started = False
        if self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "daemon-start", port=self.port, mode="async"
            )
        self._loop_thread = threading.Thread(
            target=self._loop, name="rcuda-loop", daemon=True
        )
        self._loop_thread.start()
        return self.port

    def _wake(self) -> None:
        waker = self._waker_w
        if waker is not None:
            try:
                waker.send(b"\0")
            except OSError:
                pass

    def stop(self, join_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish queued requests, flush
        outbound bytes, close every connection with the clean
        ``server-drained`` reason.  Connections still unfinished at the
        deadline are force-closed uncleanly (and, with a postmortem
        directory configured, dumped)."""
        self._stopping = True
        self._drain_deadline = time.monotonic() + join_timeout
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=join_timeout + 2.0)
            self._loop_thread = None
        self._running = False
        # Thread-mode sessions (serve_transport over in-process pairs)
        # drain exactly like the blocking daemon's.
        with self._lock:
            live = [s for s in self.sessions if not s.finished]
            threads = list(self._session_threads)
        if live:
            self._write_postmortem(
                "stopped-with-live-sessions",
                detail=f"{len(live)} session(s) still attached at stop()",
            )
            for session in live:
                session.transport.close()
        for thread in threads:
            thread.join(timeout=join_timeout)
        self.prune()

    # -- the loop ----------------------------------------------------------

    def _loop(self) -> None:
        selector = self._selector
        assert selector is not None
        now = time.monotonic()
        next_tick = now + LAG_TICK
        next_sweep = now + SWEEP_INTERVAL
        while True:
            if self._stopping and not self._drain_started:
                self._begin_drain()
            if self._drain_started and not self._conns:
                break
            if self._drain_started and time.monotonic() >= self._drain_deadline:
                self._force_drain()
                break
            timeout = 0.0 if self._runnable else min(
                LAG_TICK, max(0.0, next_tick - time.monotonic())
            )
            events = selector.select(timeout)
            now = time.monotonic()
            if now >= next_tick:
                lag = now - next_tick
                self.loop_lag_seconds = (
                    0.8 * self.loop_lag_seconds + 0.2 * lag
                )
                if lag > self.loop_lag_max:
                    self.loop_lag_max = lag
                next_tick = now + LAG_TICK
            for key, mask in events:
                if key.data == "accept":
                    self._accept_ready(now)
                elif key.data == "wake":
                    try:
                        while self._waker_r.recv(4096):
                            pass
                    except OSError:
                        pass
                else:
                    conn: _Connection = key.data
                    if mask & selectors.EVENT_WRITE and not conn.finished:
                        self._on_writable(conn)
                    if mask & selectors.EVENT_READ and not conn.finished:
                        self._on_readable(conn, now)
            if self._runnable:
                runnable, self._runnable = self._runnable, set()
                for conn in runnable:
                    if not conn.finished:
                        self._service(conn)
            if now >= next_sweep:
                next_sweep = now + SWEEP_INTERVAL
                self._sweep(now)
                self.prune()
        self._teardown()

    def _teardown(self) -> None:
        selector = self._selector
        for sock in (self._listener, self._waker_r, self._waker_w):
            if sock is None:
                continue
            try:
                if selector is not None:
                    selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._listener = self._waker_r = self._waker_w = None
        if selector is not None:
            selector.close()
        self._selector = None
        self.prune()

    # -- accept ------------------------------------------------------------

    def _accept_ready(self, now: float) -> None:
        assert self._listener is not None
        for _ in range(ACCEPT_BURST):
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if self._stopping:
                sock.close()
                return
            transport = _LoopTransport(
                sock, nodelay=True,
                socket_buffer_bytes=self.socket_buffer_bytes,
            )
            if self.at_capacity():
                # Refused over the wire, but on the loop -- no thread:
                # read the init message, answer the refusal, flush, close.
                self.rejected_sessions += 1
                if self.flight is not None:
                    self.flight.record(
                        EVENT_DAEMON, "session-refused",
                        max_sessions=self.max_sessions,
                    )
                conn = _Connection(sock, transport, None, now)
            else:
                session = self._make_session(transport)
                conn = _Connection(sock, transport, session, now)
                with self._lock:
                    self.sessions.append(session)
                    self.total_sessions += 1
                session.begin()
            with self._lock:
                self._conns[sock.fileno()] = conn
            self._update_interest(conn)

    # -- selector interest -------------------------------------------------

    def _update_interest(self, conn: _Connection) -> None:
        desired = 0
        if not conn.finished:
            if not conn.reading_paused and not conn.eof:
                desired |= selectors.EVENT_READ
            if conn.want_write:
                desired |= selectors.EVENT_WRITE
        if desired == conn.registered:
            return
        selector = self._selector
        if conn.registered and desired:
            selector.modify(conn.sock, desired, conn)
        elif desired:
            selector.register(conn.sock, desired, conn)
        else:
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        conn.registered = desired

    def _pause_reading(self, conn: _Connection) -> None:
        if not conn.reading_paused:
            conn.reading_paused = True
            self.backpressure_stalls += 1
            self._update_interest(conn)

    def _maybe_resume_reading(self, conn: _Connection) -> None:
        if (
            conn.reading_paused
            and not conn.draining
            and not conn.eof
            and conn.decode_error is None
            and conn.close_after_flush is None
            and len(conn.inbound) <= self._inbound_resume
            and conn.transport.unsent_bytes <= self._outbound_resume
        ):
            conn.reading_paused = False
            self._update_interest(conn)
            # The decoder may hold complete messages we stopped decoding
            # at the queue limit; surface them without waiting for bytes.
            self._pump(conn)

    # -- read side ---------------------------------------------------------

    def _on_readable(self, conn: _Connection, now: float) -> None:
        if conn.reading_paused or conn.eof:
            return
        try:
            data = conn.sock.recv(RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._finish(conn, *self._eof_reason(conn, error=str(exc)))
            return
        if not data:
            conn.eof = True
            self._update_interest(conn)
            self._runnable.add(conn)
            return
        conn.last_activity = now
        conn.decoder.feed(data)
        self._pump(conn)

    def _pump(self, conn: _Connection) -> None:
        """Decode buffered bytes into the bounded inbound queue and apply
        read backpressure."""
        if conn.decode_error is None:
            # Arrival stamp for server-queue attribution: every message
            # surfaced by this pump became dispatchable at this instant.
            # Only paid when the session is traced; 0.0 otherwise so the
            # tuple shape stays uniform.
            session = conn.session
            arrived = (
                time.perf_counter()
                if session is not None and session.tracer.enabled
                else 0.0
            )
            while len(conn.inbound) < self.inbound_queue:
                try:
                    item = conn.decoder.next_message()
                except ProtocolError as exc:
                    conn.decode_error = str(exc)
                    conn.eof = True  # stop reading a stream we can't frame
                    self._update_interest(conn)
                    break
                if item is None:
                    break
                conn.inbound.append((item[0], item[1], arrived))
        if conn.inbound or conn.eof:
            self._runnable.add(conn)
        if not conn.reading_paused and (
            len(conn.inbound) >= self.inbound_queue
            or conn.transport.unsent_bytes >= self.outbound_limit
        ):
            self._pause_reading(conn)

    # -- dispatch ----------------------------------------------------------

    def _blocked_on_outbound(self, conn: _Connection) -> bool:
        """True when this session must not be dispatched again yet: the
        outbound queue holds a live device-memory view (the flush gate),
        or the backlog is over the high water mark."""
        t = conn.transport
        return (t.flush_gate and t.unsent_bytes > 0) or (
            t.unsent_bytes >= self.outbound_limit
        )

    def _service(self, conn: _Connection) -> None:
        """One scheduling pass over a runnable connection: dispatch up to
        the budget, flush what that produced, settle terminal states."""
        if conn.refused:
            self._service_refusal(conn)
            return
        session = conn.session
        transport = conn.transport
        budget = DISPATCH_BUDGET
        inbound = conn.inbound
        outbound_limit = self.outbound_limit
        # The loop condition open-codes _blocked_on_outbound: a function
        # call per message is measurable at full rates.
        while inbound and budget > 0 and not (
            (transport.flush_gate and transport.unsent_bytes > 0)
            or transport.unsent_bytes >= outbound_limit
        ):
            request, consumed, arrived = inbound.popleft()
            # Inlined _account_recv + note_message_received: the loop
            # transport never overrides them and the call overhead is
            # measurable at full message rates.
            received_before = transport.bytes_received
            transport.bytes_received = received_before + consumed
            transport.messages_received += 1
            seq = conn.seq
            conn.seq += 1
            try:
                session.dispatch(
                    request, seq=seq, received_before=received_before,
                    arrived_at=arrived or None,
                )
            except (TransportClosedError, TransportError) as exc:
                self._finish(conn, CLOSE_MID_DISPATCH, str(exc))
                return
            except ProtocolError as exc:
                self._finish(conn, CLOSE_PROTOCOL, str(exc))
                return
            except Exception as exc:
                self._finish(
                    conn, CLOSE_DISPATCH_RAISED,
                    f"{type(exc).__name__}: {exc}",
                )
                return
            if seq == 0:
                session.initialized = True
            budget -= 1
        if not self._try_flush(conn):
            return
        if conn.inbound:
            if not self._blocked_on_outbound(conn):
                # Budget exhausted with work left: yield, stay runnable.
                self._runnable.add(conn)
            # else: the writable event re-schedules us after the flush.
            return
        # Inbound is drained; settle terminal states.
        if conn.decode_error is not None:
            self._finish(conn, CLOSE_PROTOCOL, conn.decode_error)
        elif conn.eof:
            self._finish(conn, *self._eof_reason(conn))
        elif conn.draining:
            if conn.decoder.pending_bytes:
                # A request is half-delivered: it is in-flight work, not
                # an idle connection.  Keep reading so the client can
                # finish the message (the drain deadline still bounds
                # this; a conn mid-message at the deadline force-closes
                # uncleanly).
                if conn.reading_paused:
                    conn.reading_paused = False
                    self._update_interest(conn)
            else:
                self._finish(conn, CLOSE_DRAINED, "")
        else:
            self._maybe_resume_reading(conn)

    def _service_refusal(self, conn: _Connection) -> None:
        """A refused connection: wait for its init message, answer with
        the admission error, flush, close."""
        if conn.inbound:
            conn.inbound.clear()
            try:
                conn.transport.send(
                    encode_response(
                        InitResponse(
                            error=ADMISSION_REFUSED_ERROR,
                            compute_capability=(0, 0),
                        )
                    )
                )
            except TransportError:
                pass
            self._finish(conn, CLOSE_CLEAN, "admission-refused")
            return
        if conn.eof or conn.decode_error is not None or conn.draining:
            self._complete(conn, CLOSE_CLEAN, "admission-refused")

    def _eof_reason(self, conn: _Connection, error: str = "") -> tuple[str, str]:
        """Classify a peer close exactly like the blocking loop does."""
        pending = conn.decoder.pending_bytes
        if pending or conn.inbound:
            detail = error or f"peer closed with {pending} buffered bytes mid-message"
            return CLOSE_MID_MESSAGE, detail
        if conn.session is not None and conn.session.open_streams:
            return CLOSE_MID_STREAM, error or "peer closed with a chunked stream open"
        if error:
            return CLOSE_MID_DISPATCH, error
        return CLOSE_CLEAN, ""

    # -- write side --------------------------------------------------------

    def _try_flush(self, conn: _Connection) -> bool:
        """Flush the outbound queue; returns False when the connection
        finished (fatal send error, or a deferred close completed)."""
        transport = conn.transport
        try:
            drained = transport.flush()
        except TransportError as exc:
            if conn.close_after_flush is not None:
                # The peer vanished before taking its goodbye bytes; the
                # close itself keeps its (clean) reason.
                reason, _ = conn.close_after_flush
                self._complete(conn, reason, f"flush failed: {exc}")
            else:
                self._complete(conn, CLOSE_MID_DISPATCH, str(exc))
            return False
        if drained:
            if conn.want_write:
                conn.want_write = False
                self._update_interest(conn)
            if conn.close_after_flush is not None:
                self._complete(conn, *conn.close_after_flush)
                return False
        else:
            if not conn.want_write:
                conn.want_write = True
                self._update_interest(conn)
        return True

    def _on_writable(self, conn: _Connection) -> None:
        if not self._try_flush(conn):
            return
        # The flush may have cleared the gate or the high water mark:
        # queued work (and paused reads) can move again.
        if conn.inbound or conn.eof or conn.draining:
            self._runnable.add(conn)
        else:
            self._maybe_resume_reading(conn)

    # -- closing -----------------------------------------------------------

    def _finish(self, conn: _Connection, reason: str, detail: str = "") -> None:
        """Close a connection, delivering queued response bytes first when
        the close is clean and the peer may still take them."""
        if conn.finished:
            return
        if (
            reason in CLEAN_REASONS
            and conn.transport.unsent_bytes
            and not conn.transport.dead
        ):
            conn.close_after_flush = (reason, detail)
            conn.flush_deadline = time.monotonic() + FLUSH_GRACE
            if not conn.reading_paused:
                conn.reading_paused = True  # no new work during goodbye
                self._update_interest(conn)
            self._try_flush(conn)
            return
        self._complete(conn, reason, detail)

    def _complete(self, conn: _Connection, reason: str, detail: str = "") -> None:
        """Terminal: unregister, drop, end the session (which closes the
        transport and releases the GPU context)."""
        if conn.finished:
            return
        conn.finished = True
        self._update_interest(conn)  # unregisters (desired mask is 0)
        with self._lock:
            self._conns.pop(conn.sock.fileno(), None)
        self._runnable.discard(conn)
        if conn.session is not None:
            conn.session.finish(reason, detail)
        else:
            conn.transport.close()

    # -- sweeps and drain --------------------------------------------------

    def _sweep(self, now: float) -> None:
        """Reap idle sessions and enforce goodbye-flush deadlines."""
        idle_after = self.idle_timeout
        for conn in list(self._conns.values()):
            if conn.finished:
                continue
            if (
                conn.close_after_flush is not None
                and now >= conn.flush_deadline
            ):
                reason, _detail = conn.close_after_flush
                self._complete(conn, reason, "flush grace period expired")
                continue
            if (
                idle_after is not None
                and not conn.draining
                and conn.close_after_flush is None
                and not conn.inbound
                and not conn.transport.unsent_bytes
                and conn.decoder.pending_bytes == 0
                # A silent socket is not an idle session when launches
                # still sit in the scheduler queue: pending device work
                # is liveness, and reaping would drop it.
                and not (
                    conn.session is not None
                    and conn.session.pending_device_work
                )
                and now - conn.last_activity >= idle_after
            ):
                self.idle_closed_sessions += 1
                self._finish(conn, CLOSE_IDLE, f"idle for >= {idle_after:g}s")

    def _begin_drain(self) -> None:
        """stop() was called: close the listener, put every connection in
        draining mode (finish queued work, flush, close cleanly)."""
        self._drain_started = True
        selector = self._selector
        if self._listener is not None:
            try:
                selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "daemon-stop",
                live_sessions=len(self._conns), mode="async",
            )
        for conn in list(self._conns.values()):
            conn.draining = True
            if not conn.reading_paused:
                conn.reading_paused = True
                self._update_interest(conn)
            self._runnable.add(conn)

    def _force_drain(self) -> None:
        """The drain deadline passed with connections still open: close
        them now.  Connections that still had work in flight are unclean
        (postmortems fire); truly-idle stragglers still close cleanly."""
        forced = 0
        for conn in list(self._conns.values()):
            if conn.finished:
                continue
            had_work = bool(
                conn.inbound
                or conn.transport.unsent_bytes
                or conn.decoder.pending_bytes
            )
            if had_work and conn.session is not None:
                forced += 1
                self._complete(
                    conn, CLOSE_MID_DISPATCH,
                    "graceful drain deadline passed with work in flight",
                )
            else:
                self._complete(conn, CLOSE_DRAINED, "drain deadline")
        if forced and self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "drain-forced", connections=forced
            )

    # -- introspection -----------------------------------------------------

    @property
    def loop_connections(self) -> int:
        """Connections currently registered with the event loop."""
        return len(self._conns)

    @property
    def queued_requests(self) -> int:
        """Decoded requests waiting in per-session inbound queues."""
        with self._lock:
            return sum(len(c.inbound) for c in self._conns.values())

    @property
    def outbound_backlog_bytes(self) -> int:
        """Response bytes enqueued but not yet handed to the kernel."""
        with self._lock:
            return sum(c.transport.unsent_bytes for c in self._conns.values())
