"""Server side of the middleware: daemon, per-connection sessions, and the
request handler mapping wire messages onto the CUDA runtime."""

from repro.rcuda.server.daemon import DaemonCore, RCudaDaemon
from repro.rcuda.server.eventloop import AsyncRCudaDaemon
from repro.rcuda.server.handler import SessionHandler
from repro.rcuda.server.session import ServerSession

__all__ = [
    "AsyncRCudaDaemon",
    "DaemonCore",
    "RCudaDaemon",
    "ServerSession",
    "SessionHandler",
]
