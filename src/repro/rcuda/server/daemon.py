"""The rCUDA server daemon.

"On the other side, there is a GPU network service listening for requests
on a TCP port" (Section III).  Two serving modes share one core:

* :class:`RCudaDaemon` -- the classic blocking mode: one accept loop,
  one thread per connection (the paper's process-per-remote-execution;
  threads here, since the simulated device is in-process);
* :class:`~repro.rcuda.server.eventloop.AsyncRCudaDaemon` -- a
  selector-based event loop multiplexing thousands of connections in one
  I/O thread, with bounded per-session queues and explicit backpressure
  (the ROADMAP's "async daemon rearchitecture").

:class:`DaemonCore` carries everything mode-independent: the session
registry and its pruning, per-session accounting ledgers (the
``/sessions`` document), metrics gauges, flight-recorder postmortems,
and **admission control** -- ``max_sessions`` caps concurrently attached
sessions, and an over-capacity connection is refused with a clean
protocol error (an ``InitResponse`` carrying
``cudaErrorDevicesUnavailable``) instead of being accepted and stalled;
the client surfaces that as a sticky ``cudaErrorUnknown`` with a
readable message.

Besides TCP, ``serve_transport`` attaches a session to any transport
(e.g. an in-process pair), which is how tests and single-process examples
run a real client/server exchange without opening ports.

A :class:`~repro.obs.flight.FlightRecorder` rides along by default:
every session logs lifecycle, span and stream events into one shared
bounded ring.  When a session ends uncleanly (transport died
mid-message or mid-stream, malformed traffic, a dispatch raise) or the
daemon stops with live sessions and a ``postmortem_dir`` is configured,
the ring plus a metrics snapshot and the accounting ledgers are written
as a postmortem dump for ``repro postmortem`` to render.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import deque

from repro.errors import TransportError
from repro.obs.flight import EVENT_DAEMON, FlightRecorder, build_postmortem, write_postmortem
from repro.obs.spans import Tracer
from repro.protocol.codec import MessageReader, decode_init, encode_response
from repro.protocol.messages import InitResponse
from repro.rcuda.server.session import ServerSession
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.errors import CudaError
from repro.transport.base import Transport
from repro.transport.tcp import TcpTransport

#: Sentinel: "give me the default flight recorder" (pass ``None`` to
#: switch the recorder off, or your own instance to share one).
DEFAULT_FLIGHT = object()

#: Environment variable naming a fallback postmortem directory (CI sets
#: it so test-failure dumps surface as artifacts).
POSTMORTEM_DIR_ENV = "REPRO_POSTMORTEM_DIR"

#: Finished-session ledgers the daemon keeps for /sessions.
RECENT_LEDGERS = 32

#: Listen backlog: a connection storm from a whole cluster partition must
#: queue in the kernel instead of seeing resets (the old 16 dropped SYNs
#: under the many-client benchmark's simultaneous dials).
LISTEN_BACKLOG = 1024

#: The wire error an over-capacity daemon answers initialization with.
#: The client maps it to a sticky ``cudaErrorUnknown`` plus a readable
#: refusal message (see ``RemoteCudaRuntime.initialize``).
ADMISSION_REFUSED_ERROR = int(CudaError.cudaErrorDevicesUnavailable)


class DaemonCore:
    """Mode-independent daemon state: sessions, ledgers, metrics,
    postmortems, admission control, and thread-based transport serving."""

    def __init__(
        self,
        device: SimulatedGpu,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer: Tracer | None = None,
        metrics=None,
        flight=DEFAULT_FLIGHT,
        slo=None,
        accounting: bool = True,
        postmortem_dir: str | None = None,
        max_postmortems: int = 8,
        max_sessions: int | None = None,
        pool=None,
        profile: str | None = None,
        socket_buffer_bytes: int | None = None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise TransportError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        #: Named transfer profile from the shipped
        #: :class:`~repro.tune.table.TunedTable` (``repro serve
        #: --profile``).  The daemon side only consumes the transport
        #: knobs -- accepted sockets get the profile's buffer size; the
        #: malloc policy and coalesce width apply where the device/pool
        #: are built (the CLI).  ``None`` keeps every default.
        self.profile = profile
        #: Explicit SO_RCVBUF/SO_SNDBUF floor for accepted connections
        #: (``repro serve --socket-buffer-bytes``); wins over the
        #: profile's tuned value.  ``None`` defers to profile/default.
        self._socket_buffer_override = socket_buffer_bytes
        self.transfer_config = None
        if profile is not None:
            from repro.tune.table import resolve_profile

            self.transfer_config = resolve_profile(profile)
        #: Shared-device mode: a :class:`~repro.rcuda.server.tenancy.
        #: DevicePool` every new session attaches to as a tenant.  None
        #: (the default) keeps the historical unshared path untouched.
        self.pool = pool
        self.device = device
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._session_threads: list[threading.Thread] = []
        self.sessions: list[ServerSession] = []
        self._lock = threading.Lock()
        self._running = False
        self._stopping = False
        self.tracer = tracer
        self.metrics = metrics
        self.flight: FlightRecorder | None = (
            FlightRecorder() if flight is DEFAULT_FLIGHT else flight
        )
        if pool is not None:
            # Scheduler batch events share the daemon's timeline so a
            # postmortem (or the causal assembler) sees spans and batch
            # submissions interleaved.
            pool.flight = self.flight
        self.slo = slo
        self.accounting = accounting
        if postmortem_dir is None:
            postmortem_dir = os.environ.get(POSTMORTEM_DIR_ENV) or None
        self.postmortem_dir = postmortem_dir
        self.max_postmortems = max_postmortems
        self.max_sessions = max_sessions
        #: Paths of dumps written by this daemon (bounded by
        #: ``max_postmortems`` so a crash-looping client cannot fill disk).
        self.postmortem_paths: list = []
        #: Sessions that ended any way but a clean close.
        self.unclean_sessions = 0
        #: Connections refused by admission control (``max_sessions``).
        self.rejected_sessions = 0
        #: Ledgers of recently finished sessions, for /sessions.
        self._recent_ledgers: deque[dict] = deque(maxlen=RECENT_LEDGERS)
        #: Connections ever accepted (pruning forgets dead sessions, this
        #: does not).
        self.total_sessions = 0
        self._finished_sessions = 0
        self._exported_session_ids: set[str] = set()
        if metrics is not None:
            self._register_gauges(metrics)
            if self.slo is not None:
                self.slo.bind_metrics(metrics)

    def _register_gauges(self, metrics) -> None:
        metrics.gauge(
            "rcuda_active_sessions",
            "Sessions currently attached to a live client connection.",
        ).set_function(lambda: self.active_sessions)
        metrics.gauge(
            "rcuda_sessions_total",
            "Connections accepted since the daemon started.",
        ).set_function(lambda: self.total_sessions)
        metrics.gauge(
            "rcuda_sessions_completed",
            "Sessions that have finished and released their GPU context.",
        ).set_function(lambda: self.completed_sessions)
        metrics.gauge(
            "rcuda_sessions_rejected_total",
            "Connections refused by max-sessions admission control.",
        ).set_function(lambda: self.rejected_sessions)
        memory = self.device.memory
        metrics.gauge(
            "rcuda_device_mem_used_bytes",
            "Device global memory reserved by live allocations.",
        ).set_function(lambda: memory.used)
        metrics.gauge(
            "rcuda_device_mem_capacity_bytes",
            "Device global memory capacity.",
        ).set_function(lambda: memory.capacity)
        metrics.gauge(
            "rcuda_device_mem_allocations",
            "Live allocations on the device.",
        ).set_function(lambda: memory.allocation_count)
        metrics.gauge(
            "rcuda_device_mem_fragmentation",
            "Allocator fragmentation: 1 - largest_free/total_free.",
        ).set_function(memory.fragmentation)
        metrics.gauge(
            "rcuda_dispatch_depth",
            "Requests currently being dispatched across all sessions.",
        ).set_function(lambda: self.dispatch_depth)
        metrics.gauge(
            "rcuda_session_mem_bytes",
            "Device bytes held by live per-session allocations.",
        ).set_function(lambda: self.session_memory_bytes)
        metrics.gauge(
            "rcuda_unclean_sessions_total",
            "Sessions that ended any way but a clean client close.",
        ).set_function(lambda: self.unclean_sessions)
        if self.flight is not None:
            flight = self.flight
            metrics.gauge(
                "rcuda_flight_events_total",
                "Events ever recorded by the flight recorder.",
            ).set_function(lambda: flight.total_events)
        if self.accounting:
            # Per-session labelled gauges, refreshed at scrape time so
            # the dispatch hot path never touches the registry; stale
            # series are removed when their session completes.
            self._g_session_bytes = metrics.gauge(
                "rcuda_session_device_bytes",
                "Device bytes held by one live session's allocations.",
                labelnames=("session",),
            )
            self._g_session_requests = metrics.gauge(
                "rcuda_session_requests",
                "Requests dispatched by one live session.",
                labelnames=("session",),
            )
            self._g_session_age = metrics.gauge(
                "rcuda_session_age_seconds",
                "Seconds since one live session attached.",
                labelnames=("session",),
            )
            metrics.add_collect_hook(self._refresh_session_gauges)
        if self.pool is not None:
            pool = self.pool
            metrics.gauge(
                "rcuda_pool_devices",
                "Shared devices owned by the daemon's device pool.",
            ).set_function(lambda: len(pool.devices))
            metrics.gauge(
                "rcuda_pool_tenants",
                "Tenants currently attached to the device pool.",
            ).set_function(lambda: pool.tenant_count)
            # Per-tenant labelled gauges, same scrape-time refresh +
            # stale-series removal discipline as the session gauges.
            self._g_tenant_quota_used = metrics.gauge(
                "rcuda_tenant_quota_used_bytes",
                "Device bytes one tenant's live allocations hold.",
                labelnames=("tenant",),
            )
            self._g_tenant_headroom = metrics.gauge(
                "rcuda_tenant_quota_headroom_bytes",
                "Bytes one tenant may still allocate under its quota.",
                labelnames=("tenant",),
            )
            self._g_tenant_queue = metrics.gauge(
                "rcuda_tenant_queue_depth",
                "Launches one tenant has queued on the fair-share scheduler.",
                labelnames=("tenant",),
            )
            self._g_tenant_coalesced = metrics.gauge(
                "rcuda_tenant_launches_coalesced",
                "Launches that rode an earlier launch's device submission.",
                labelnames=("tenant",),
            )
            self._g_tenant_wait = metrics.gauge(
                "rcuda_tenant_queue_wait_p99_seconds",
                "p99 wall wait between launch submit and device dispatch.",
                labelnames=("tenant",),
            )
            self._g_tenant_slowdown = metrics.gauge(
                "rcuda_tenant_contention_slowdown",
                "Contention-model slowdown the tenant currently sees.",
                labelnames=("tenant",),
            )
            self._exported_tenant_ids: set[str] = set()
            metrics.add_collect_hook(self._refresh_tenant_gauges)

    def _refresh_tenant_gauges(self) -> None:
        """Scrape-time refresh of the per-tenant labelled gauges."""
        current: set[str] = set()
        for tenant in self.pool.tenants():
            tid = tenant.tenant_id
            current.add(tid)
            self._g_tenant_quota_used.set(tenant.bytes_held, tenant=tid)
            headroom = tenant.quota_headroom
            if headroom is not None:
                self._g_tenant_headroom.set(headroom, tenant=tid)
            self._g_tenant_queue.set(len(tenant.queue), tenant=tid)
            self._g_tenant_coalesced.set(
                tenant.launches_coalesced, tenant=tid
            )
            self._g_tenant_wait.set(
                tenant.queue_wait.quantile(0.99), tenant=tid
            )
            self._g_tenant_slowdown.set(
                tenant.contention_slowdown, tenant=tid
            )
        for stale in self._exported_tenant_ids - current:
            for gauge in (
                self._g_tenant_quota_used,
                self._g_tenant_headroom,
                self._g_tenant_queue,
                self._g_tenant_coalesced,
                self._g_tenant_wait,
                self._g_tenant_slowdown,
            ):
                gauge.remove(tenant=stale)
        self._exported_tenant_ids = current

    def _refresh_session_gauges(self) -> None:
        """Scrape-time refresh of the per-session labelled gauges."""
        with self._lock:
            ledgers = [
                s.accounting for s in self.sessions
                if not s.finished and s.accounting is not None
            ]
        current: set[str] = set()
        for acct in ledgers:
            current.add(acct.session)
            self._g_session_bytes.set(
                acct.device_bytes_held, session=acct.session
            )
            self._g_session_requests.set(acct.requests, session=acct.session)
            self._g_session_age.set(acct.age_seconds, session=acct.session)
        for stale in self._exported_session_ids - current:
            for gauge in (
                self._g_session_bytes,
                self._g_session_requests,
                self._g_session_age,
            ):
                gauge.remove(session=stale)
        self._exported_session_ids = current

    # -- postmortems -------------------------------------------------------

    def session_ledgers(self) -> list[dict]:
        """Accounting ledgers: live sessions first, then recently
        finished ones (the /sessions document).  Prunes first, so a
        session that died since the last connection shows up as
        recently-finished instead of vanishing until the next accept."""
        with self._lock:
            self._prune_locked()
            live = [
                s.accounting.to_dict()
                for s in self.sessions
                if not s.finished and s.accounting is not None
            ]
            recent = list(self._recent_ledgers)
        return live + recent

    def _on_session_unclean(
        self, session: ServerSession, reason: str, detail: str
    ) -> None:
        """Session callback: an unclean close just happened."""
        self.unclean_sessions += 1
        acct = session.accounting
        sticky = (
            acct.last_error_name or acct.last_error if acct is not None
            else None
        )
        self._write_postmortem(
            reason,
            detail=detail,
            sticky_error=sticky,
            sessions=(
                [acct.to_dict()] if acct is not None
                else self.session_ledgers()
            ),
        )

    def _write_postmortem(
        self, reason: str, detail: str = "", sticky_error=None, sessions=None
    ) -> None:
        if self.postmortem_dir is None:
            return
        with self._lock:
            if len(self.postmortem_paths) >= self.max_postmortems:
                return
        dump = build_postmortem(
            reason,
            flight=self.flight,
            registry=self.metrics,
            sessions=(
                sessions if sessions is not None else self.session_ledgers()
            ),
            sticky_error=sticky_error,
            detail=detail,
        )
        try:
            path = write_postmortem(dump, self.postmortem_dir)
        except OSError:
            return  # a full or unwritable disk must not break the daemon
        with self._lock:
            self.postmortem_paths.append(path)

    # -- admission control -------------------------------------------------

    def at_capacity(self) -> bool:
        """True when ``max_sessions`` live sessions are already attached."""
        if self.max_sessions is None:
            return False
        return self.active_sessions >= self.max_sessions

    def _refuse_transport(self, transport: Transport) -> None:
        """Refuse one over-capacity connection with a clean protocol
        error: consume the initialization message (so the close cannot
        race the client's pending send and reset it), answer with an
        ``InitResponse`` carrying ``cudaErrorDevicesUnavailable``, close.
        Runs in a short-lived thread; never raises."""
        self.rejected_sessions += 1
        if self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "session-refused",
                max_sessions=self.max_sessions,
            )
        try:
            decode_init(MessageReader(transport))
            transport.send(
                encode_response(
                    InitResponse(
                        error=ADMISSION_REFUSED_ERROR,
                        compute_capability=(0, 0),
                    )
                )
            )
        except Exception:
            pass  # the refused peer may already be gone; nothing to save
        finally:
            transport.close()

    def _spawn_refusal(self, transport: Transport) -> None:
        thread = threading.Thread(
            target=self._refuse_transport,
            args=(transport,),
            name="rcuda-refuse",
            daemon=True,
        )
        thread.start()

    # -- serving transports (thread mode; shared by both daemons) ----------

    def _make_session(self, transport: Transport) -> ServerSession:
        tenant = None
        if self.pool is not None:
            tenant = self.pool.attach()
        session = ServerSession(
            transport,
            self.device,
            tracer=self.tracer,
            metrics=self.metrics,
            flight=self.flight,
            slo=self.slo,
            accounting=self.accounting,
            on_unclean=self._on_session_unclean,
            tenant=tenant,
        )
        if tenant is not None and self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "tenant-attach",
                session=session.session_id,
                tenant=tenant.tenant_id,
                device=tenant.device_index,
                quota_bytes=tenant.quota_bytes,
            )
        return session

    def serve_transport(self, transport: Transport) -> ServerSession | None:
        """Spawn a session thread over an already-connected transport.

        Returns ``None`` when admission control refuses the connection
        (the refusal handshake happens on its own short-lived thread)."""
        if self.at_capacity():
            self._spawn_refusal(transport)
            return None
        session = self._make_session(transport)
        thread = threading.Thread(
            target=session.run, name="rcuda-session", daemon=True
        )
        with self._lock:
            self._prune_locked()
            self.sessions.append(session)
            self._session_threads.append(thread)
            self.total_sessions += 1
        thread.start()
        return session

    def _prune_locked(self) -> None:
        """Drop finished sessions and dead threads (caller holds the lock)."""
        finished = [s for s in self.sessions if s.finished]
        if finished:
            self._finished_sessions += len(finished)
            for s in finished:
                if s.accounting is not None:
                    self._recent_ledgers.append(s.accounting.to_dict())
            self.sessions = [s for s in self.sessions if not s.finished]
        self._session_threads = [
            t for t in self._session_threads if t.is_alive()
        ]

    def prune(self) -> None:
        """Forget finished sessions; counters keep the running totals."""
        with self._lock:
            self._prune_locked()

    # -- shared lifecycle --------------------------------------------------

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> int:  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def stop(self, join_timeout: float = 5.0) -> None:  # pragma: no cover
        raise NotImplementedError

    def _bind_listener(self) -> socket.socket:
        """Bind + listen the daemon's TCP socket; sets ``self.port``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self._requested_port))
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"could not bind {self.host}:{self._requested_port}: {exc}"
            ) from exc
        listener.listen(LISTEN_BACKLOG)
        self.port = listener.getsockname()[1]
        return listener

    @property
    def socket_buffer_bytes(self) -> int:
        """SO_RCVBUF/SO_SNDBUF floor for accepted connections: an
        explicit constructor/CLI override, else the active profile's
        tuned value, else the transport default."""
        from repro.transport.tcp import SOCKET_BUFFER_BYTES

        if self._socket_buffer_override is not None:
            return self._socket_buffer_override
        if self.transfer_config is not None:
            return self.transfer_config.socket_buffer_bytes
        return SOCKET_BUFFER_BYTES

    def tune_block(self) -> dict | None:
        """The ``tune`` section of the /healthz document (None without a
        profile): which shipped config this daemon is serving with."""
        if self.transfer_config is None:
            return None
        return {
            "profile": self.profile,
            "source": "tuned-table",
            "config": self.transfer_config.to_dict(),
        }

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` has begun (health probes answer 503)."""
        return self._stopping

    @property
    def active_sessions(self) -> int:
        """Sessions attached and not yet finished."""
        with self._lock:
            return sum(1 for s in self.sessions if not s.finished)

    @property
    def dispatch_depth(self) -> int:
        """Requests currently inside a session dispatch (server queue
        depth as the profiler's counter track sees it)."""
        with self._lock:
            return sum(s.dispatching for s in self.sessions)

    @property
    def session_memory_bytes(self) -> int:
        """Device bytes held by live allocations, summed over sessions."""
        with self._lock:
            return sum(s.device_bytes_held for s in self.sessions)

    @property
    def completed_sessions(self) -> int:
        """Sessions that have finished, including pruned ones."""
        with self._lock:
            return self._finished_sessions + sum(
                1 for s in self.sessions if s.finished
            )


class RCudaDaemon(DaemonCore):
    """Blocking mode: accept loop + one thread per session over one
    simulated GPU (the seed architecture; kept as the fallback path and
    the baseline the async daemon is benchmarked against)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None

    # -- TCP service -------------------------------------------------------

    def start(self) -> int:
        """Bind, listen and start accepting; returns the bound port."""
        if self._running:
            raise TransportError("daemon is already running")
        listener = self._bind_listener()
        # A blocked accept() is not reliably woken by close() from another
        # thread on Linux; poll so stop() never waits out the join timeout.
        listener.settimeout(0.1)
        self._listener = listener
        self._running = True
        if self.flight is not None:
            self.flight.record(EVENT_DAEMON, "daemon-start", port=self.port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rcuda-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                continue  # periodic wakeup to re-check _running
            except OSError:
                break  # listener closed during stop()
            if not self._running:
                conn.close()
                break
            transport = TcpTransport(
                conn, nodelay=True,
                socket_buffer_bytes=self.socket_buffer_bytes,
            )
            self.serve_transport(transport)

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop accepting, close live sessions, and wait for them to drain.

        Closing each live session's transport wakes its thread out of any
        blocking read, so shutdown completes promptly instead of stalling
        for ``join_timeout`` per idle connection.  Stopping with sessions
        still attached is an unclean shutdown: if a postmortem directory
        is configured, the flight recorder is dumped before the
        transports are torn down.
        """
        self._stopping = True
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=join_timeout)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            live = [s for s in self.sessions if not s.finished]
            threads = list(self._session_threads)
        if self.flight is not None:
            self.flight.record(
                EVENT_DAEMON, "daemon-stop", live_sessions=len(live)
            )
        if live:
            self._write_postmortem(
                "stopped-with-live-sessions",
                detail=f"{len(live)} session(s) still attached at stop()",
            )
        for session in live:
            session.transport.close()
        for thread in threads:
            thread.join(timeout=join_timeout)
        self.prune()
