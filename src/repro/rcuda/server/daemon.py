"""The rCUDA server daemon.

"On the other side, there is a GPU network service listening for requests
on a TCP port" (Section III).  The daemon accepts connections and spawns
one :class:`~repro.rcuda.server.session.ServerSession` per client -- the
paper's process-per-remote-execution; threads here, since the simulated
device is in-process -- each over a fresh, pre-initialized GPU context, so
several applications can time-share the accelerator concurrently.

Besides TCP, ``serve_transport`` attaches a session to any transport
(e.g. an in-process pair), which is how tests and single-process examples
run a real client/server exchange without opening ports.

Finished sessions are pruned as new connections arrive (long-lived
daemons no longer grow one dead entry per connection), ``stop()`` closes
live session transports so shutdown does not stall for the join timeout,
and -- when a :class:`~repro.obs.metrics.MetricsRegistry` is attached --
session counts, request totals and device-memory occupancy are exposed
as gauges for the `--metrics-port` scrape endpoint.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import TransportError
from repro.obs.spans import Tracer
from repro.rcuda.server.session import ServerSession
from repro.simcuda.device import SimulatedGpu
from repro.transport.base import Transport
from repro.transport.tcp import TcpTransport


class RCudaDaemon:
    """Accept loop + session threads over one simulated GPU."""

    def __init__(
        self,
        device: SimulatedGpu,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer: Tracer | None = None,
        metrics=None,
    ) -> None:
        self.device = device
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._session_threads: list[threading.Thread] = []
        self.sessions: list[ServerSession] = []
        self._lock = threading.Lock()
        self._running = False
        self._stopping = False
        self.tracer = tracer
        self.metrics = metrics
        #: Connections ever accepted (pruning forgets dead sessions, this
        #: does not).
        self.total_sessions = 0
        self._finished_sessions = 0
        if metrics is not None:
            self._register_gauges(metrics)

    def _register_gauges(self, metrics) -> None:
        metrics.gauge(
            "rcuda_active_sessions",
            "Sessions currently attached to a live client connection.",
        ).set_function(lambda: self.active_sessions)
        metrics.gauge(
            "rcuda_sessions_total",
            "Connections accepted since the daemon started.",
        ).set_function(lambda: self.total_sessions)
        metrics.gauge(
            "rcuda_sessions_completed",
            "Sessions that have finished and released their GPU context.",
        ).set_function(lambda: self.completed_sessions)
        memory = self.device.memory
        metrics.gauge(
            "rcuda_device_mem_used_bytes",
            "Device global memory reserved by live allocations.",
        ).set_function(lambda: memory.used)
        metrics.gauge(
            "rcuda_device_mem_capacity_bytes",
            "Device global memory capacity.",
        ).set_function(lambda: memory.capacity)
        metrics.gauge(
            "rcuda_device_mem_allocations",
            "Live allocations on the device.",
        ).set_function(lambda: memory.allocation_count)
        metrics.gauge(
            "rcuda_device_mem_fragmentation",
            "Allocator fragmentation: 1 - largest_free/total_free.",
        ).set_function(memory.fragmentation)
        metrics.gauge(
            "rcuda_dispatch_depth",
            "Requests currently being dispatched across all sessions.",
        ).set_function(lambda: self.dispatch_depth)
        metrics.gauge(
            "rcuda_session_mem_bytes",
            "Device bytes held by live per-session allocations.",
        ).set_function(lambda: self.session_memory_bytes)

    # -- TCP service -------------------------------------------------------

    def start(self) -> int:
        """Bind, listen and start accepting; returns the bound port."""
        if self._running:
            raise TransportError("daemon is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self._requested_port))
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"could not bind {self.host}:{self._requested_port}: {exc}"
            ) from exc
        listener.listen(16)
        # A blocked accept() is not reliably woken by close() from another
        # thread on Linux; poll so stop() never waits out the join timeout.
        listener.settimeout(0.1)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rcuda-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                continue  # periodic wakeup to re-check _running
            except OSError:
                break  # listener closed during stop()
            if not self._running:
                conn.close()
                break
            transport = TcpTransport(conn, nodelay=True)
            self.serve_transport(transport)

    def serve_transport(self, transport: Transport) -> ServerSession:
        """Spawn a session thread over an already-connected transport."""
        session = ServerSession(
            transport,
            self.device,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        thread = threading.Thread(
            target=session.run, name="rcuda-session", daemon=True
        )
        with self._lock:
            self._prune_locked()
            self.sessions.append(session)
            self._session_threads.append(thread)
            self.total_sessions += 1
        thread.start()
        return session

    def _prune_locked(self) -> None:
        """Drop finished sessions and dead threads (caller holds the lock)."""
        finished = sum(1 for s in self.sessions if s.finished)
        if finished:
            self._finished_sessions += finished
            self.sessions = [s for s in self.sessions if not s.finished]
        self._session_threads = [
            t for t in self._session_threads if t.is_alive()
        ]

    def prune(self) -> None:
        """Forget finished sessions; counters keep the running totals."""
        with self._lock:
            self._prune_locked()

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop accepting, close live sessions, and wait for them to drain.

        Closing each live session's transport wakes its thread out of any
        blocking read, so shutdown completes promptly instead of stalling
        for ``join_timeout`` per idle connection.
        """
        self._stopping = True
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=join_timeout)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            live = [s for s in self.sessions if not s.finished]
            threads = list(self._session_threads)
        for session in live:
            session.transport.close()
        for thread in threads:
            thread.join(timeout=join_timeout)
        self.prune()

    def __enter__(self) -> "RCudaDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` has begun (health probes answer 503)."""
        return self._stopping

    @property
    def active_sessions(self) -> int:
        """Sessions attached and not yet finished."""
        with self._lock:
            return sum(1 for s in self.sessions if not s.finished)

    @property
    def dispatch_depth(self) -> int:
        """Requests currently inside a session dispatch (server queue
        depth as the profiler's counter track sees it)."""
        with self._lock:
            return sum(s.dispatching for s in self.sessions)

    @property
    def session_memory_bytes(self) -> int:
        """Device bytes held by live allocations, summed over sessions."""
        with self._lock:
            return sum(s.device_bytes_held for s in self.sessions)

    @property
    def completed_sessions(self) -> int:
        """Sessions that have finished, including pruned ones."""
        with self._lock:
            return self._finished_sessions + sum(
                1 for s in self.sessions if s.finished
            )