"""The rCUDA server daemon.

"On the other side, there is a GPU network service listening for requests
on a TCP port" (Section III).  The daemon accepts connections and spawns
one :class:`~repro.rcuda.server.session.ServerSession` per client -- the
paper's process-per-remote-execution; threads here, since the simulated
device is in-process -- each over a fresh, pre-initialized GPU context, so
several applications can time-share the accelerator concurrently.

Besides TCP, ``serve_transport`` attaches a session to any transport
(e.g. an in-process pair), which is how tests and single-process examples
run a real client/server exchange without opening ports.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import TransportError
from repro.rcuda.server.session import ServerSession
from repro.simcuda.device import SimulatedGpu
from repro.transport.base import Transport
from repro.transport.tcp import TcpTransport


class RCudaDaemon:
    """Accept loop + session threads over one simulated GPU."""

    def __init__(
        self,
        device: SimulatedGpu,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.device = device
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._session_threads: list[threading.Thread] = []
        self.sessions: list[ServerSession] = []
        self._lock = threading.Lock()
        self._running = False

    # -- TCP service -------------------------------------------------------

    def start(self) -> int:
        """Bind, listen and start accepting; returns the bound port."""
        if self._running:
            raise TransportError("daemon is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self._requested_port))
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"could not bind {self.host}:{self._requested_port}: {exc}"
            ) from exc
        listener.listen(16)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rcuda-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed during stop()
            transport = TcpTransport(conn, nodelay=True)
            self.serve_transport(transport)

    def serve_transport(self, transport: Transport) -> ServerSession:
        """Spawn a session thread over an already-connected transport."""
        session = ServerSession(transport, self.device)
        thread = threading.Thread(
            target=session.run, name="rcuda-session", daemon=True
        )
        with self._lock:
            self.sessions.append(session)
            self._session_threads.append(thread)
        thread.start()
        return session

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop accepting and wait for live sessions to drain."""
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=join_timeout)
            self._accept_thread = None
        with self._lock:
            threads = list(self._session_threads)
        for thread in threads:
            thread.join(timeout=join_timeout)

    def __enter__(self) -> "RCudaDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def completed_sessions(self) -> int:
        with self._lock:
            return sum(1 for s in self.sessions if s.finished)
