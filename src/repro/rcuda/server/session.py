"""One server session: the request loop for a single client connection.

Lifecycle, matching Section III's phases from the server's side:

1. the first message is the id-less initialization (GPU module shipped by
   the client); the session loads it and answers with the compute
   capability;
2. steady state: decode request, dispatch, encode response, repeat;
3. finalization: the client closes its socket; the session notices the
   closed transport, quits servicing and releases the GPU context and all
   associated resources.
"""

from __future__ import annotations

from repro.errors import ProtocolError, TransportClosedError, TransportError
from repro.protocol.codec import (
    MessageReader,
    decode_init,
    decode_request,
    encode_response,
)
from repro.rcuda.server.handler import SessionHandler
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.runtime import CudaRuntime
from repro.transport.base import Transport


class ServerSession:
    """Services one connection over one fresh GPU context."""

    def __init__(self, transport: Transport, device: SimulatedGpu) -> None:
        self.transport = transport
        # "a different server process for each remote execution over a new
        # GPU context" -- pre-initialized, so clients skip the CUDA
        # environment initialization delay.
        self.handler = SessionHandler(CudaRuntime(device, preinitialized=True))
        self.initialized = False
        self.finished = False

    def run(self) -> None:
        """Service the connection until the client disconnects."""
        reader = MessageReader(self.transport)
        try:
            init_request = decode_init(reader)
            response = self.handler.handle_init(init_request)
            self.transport.send(encode_response(response))
            self.initialized = True
            while True:
                request = decode_request(reader)
                response = self.handler.handle(request)
                self.transport.send(encode_response(response))
        except (TransportClosedError, TransportError):
            # Normal finalization: the client closed the socket (or the
            # connection died); either way the session ends.
            pass
        except ProtocolError:
            # Malformed traffic: drop the connection rather than guess.
            pass
        finally:
            self.finished = True
            self.handler.close()
            self.transport.close()
