"""One server session: the request loop for a single client connection.

Lifecycle, matching Section III's phases from the server's side:

1. the first message is the id-less initialization (GPU module shipped by
   the client); the session loads it and answers with the compute
   capability;
2. steady state: decode request, dispatch, encode response, repeat;
3. finalization: the client closes its socket; the session notices the
   closed transport, quits servicing and releases the GPU context and all
   associated resources.

When observability is attached, every dispatched request becomes one
server span (keyed by this session's id + the request sequence number)
and feeds the daemon's latency histogram and byte counters; the wire
format is untouched.
"""

from __future__ import annotations

import itertools
import time

from repro.errors import ProtocolError, TransportClosedError, TransportError
from repro.obs.naming import describe_request
from repro.obs.spans import KIND_SERVER, NULL_TRACER, Tracer
from repro.protocol.codec import (
    MessageReader,
    decode_init,
    decode_request,
    encode_response_vectored,
)
from repro.protocol.messages import (
    FreeRequest,
    InitRequest,
    MallocRequest,
    Request,
)
from repro.rcuda.server.handler import SessionHandler
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.runtime import CudaRuntime
from repro.transport.base import Transport, buffer_nbytes

_SERVER_SESSION_IDS = itertools.count(1)


class ServerSession:
    """Services one connection over one fresh GPU context."""

    def __init__(
        self,
        transport: Transport,
        device: SimulatedGpu,
        tracer: Tracer | None = None,
        metrics=None,
        session_id: str | None = None,
    ) -> None:
        self.transport = transport
        # "a different server process for each remote execution over a new
        # GPU context" -- pre-initialized, so clients skip the CUDA
        # environment initialization delay.
        self.handler = SessionHandler(CudaRuntime(device, preinitialized=True))
        self.initialized = False
        self.finished = False
        #: 1 while a request is being dispatched (the daemon sums this
        #: into its queue-depth counter track).
        self.dispatching = 0
        #: Device bytes this session's live allocations hold, so occupancy
        #: is attributable per session even though the device is shared.
        self.device_bytes_held = 0
        self._allocations: dict[int, int] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.session_id = (
            session_id
            if session_id is not None
            else f"server-{next(_SERVER_SESSION_IDS)}"
        )
        self.metrics = metrics
        if metrics is not None:
            self._m_latency = metrics.histogram(
                "rcuda_rpc_latency_seconds",
                "Server-side dispatch latency per remoted CUDA function.",
                labelnames=("function",),
            )
            self._m_bytes = metrics.counter(
                "rcuda_rpc_bytes_total",
                "Wire bytes per remoted CUDA function and direction.",
                labelnames=("function", "direction"),
            )
            self._m_requests = metrics.counter(
                "rcuda_requests_total",
                "Requests handled by this daemon across all sessions.",
            )

    def run(self) -> None:
        """Service the connection until the client disconnects."""
        reader = MessageReader(self.transport)
        try:
            received_before = self.transport.bytes_received
            init_request = decode_init(reader)
            self._dispatch(init_request, seq=0, received_before=received_before)
            self.initialized = True
            seq = 0
            while True:
                seq += 1
                received_before = self.transport.bytes_received
                request = decode_request(reader)
                self._dispatch(request, seq=seq, received_before=received_before)
        except (TransportClosedError, TransportError):
            # Normal finalization: the client closed the socket (or the
            # connection died); either way the session ends.
            pass
        except ProtocolError:
            # Malformed traffic: drop the connection rather than guess.
            pass
        finally:
            self.finished = True
            self.handler.close()  # releases the context and its memory
            self._allocations.clear()
            self.device_bytes_held = 0
            self.transport.close()

    def _account_memory(self, request: Request, response) -> None:
        """Track this session's live device allocations by watching the
        malloc/free traffic it services (success paths only)."""
        if isinstance(request, MallocRequest):
            if response.error == 0 and response.ptr is not None:
                self._allocations[response.ptr] = request.size
                self.device_bytes_held += request.size
        elif isinstance(request, FreeRequest) and response.error == 0:
            self.device_bytes_held -= self._allocations.pop(request.ptr, 0)

    def _dispatch(self, request: Request, seq: int, received_before: int) -> None:
        """Handle one decoded request and send its response, observed."""
        self.dispatching = 1
        try:
            self._dispatch_inner(request, seq, received_before)
        finally:
            self.dispatching = 0

    def _dispatch_inner(
        self, request: Request, seq: int, received_before: int
    ) -> None:
        tracer = self.tracer
        observing = tracer.enabled or self.metrics is not None
        span = None
        t0 = 0.0
        if observing:
            name, fid, phase = describe_request(request)
            bytes_in = self.transport.bytes_received - received_before
            t0 = time.perf_counter()
            if tracer.enabled:
                span = tracer.start(
                    name,
                    KIND_SERVER,
                    self.session_id,
                    seq,
                    function_id=fid,
                    phase=phase,
                )
        try:
            if isinstance(request, InitRequest):
                response = self.handler.handle_init(request)
            else:
                response = self.handler.handle(request)
            if response is None:
                # Unacknowledged stream frames (Begin/chunks): nothing
                # goes back on the wire.
                wire_len = 0
            else:
                self._account_memory(request, response)
                # D2H data leaves as its own buffer (a view of device
                # memory) via one vectored write -- never concatenated
                # into a fresh header+payload object.
                parts = encode_response_vectored(response)
                wire_len = sum(buffer_nbytes(p) for p in parts)
                if len(parts) == 1:
                    self.transport.send(parts[0])
                else:
                    self.transport.send_vectored(parts)
        except BaseException:
            # Never leak a span: a raise in handling, encoding or the
            # send itself still closes it, marked as failed.
            if span is not None:
                tracer.fail(span, bytes_received=bytes_in)
            raise
        if observing:
            if span is not None:
                tracer.finish(
                    span,
                    bytes_received=bytes_in,
                    bytes_sent=wire_len,
                    error=response.error if response is not None else 0,
                )
            if self.metrics is not None:
                self._m_latency.observe(
                    time.perf_counter() - t0, function=name
                )
                self._m_bytes.inc(bytes_in, function=name, direction="in")
                self._m_bytes.inc(wire_len, function=name, direction="out")
                self._m_requests.inc()
