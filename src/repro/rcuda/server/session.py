"""One server session: the request loop for a single client connection.

Lifecycle, matching Section III's phases from the server's side:

1. the first message is the id-less initialization (GPU module shipped by
   the client); the session loads it and answers with the compute
   capability;
2. steady state: decode request, dispatch, encode response, repeat;
3. finalization: the client closes its socket; the session notices the
   closed transport, quits servicing and releases the GPU context and all
   associated resources.

When observability is attached, every dispatched request becomes one
server span (keyed by this session's id + the request sequence number)
and feeds the daemon's latency histogram, byte counters, flight
recorder, SLO engine and per-session accounting ledger; the wire format
is untouched.

The session also classifies *how* it ended.  A clean finalization is the
transport closing exactly on a message boundary with no stream open; a
close mid-message, mid-stream, on malformed traffic or on a dispatch
raise is unclean, and the ``on_unclean`` callback (wired by the daemon)
gets the chance to write a postmortem dump before the context is torn
down.
"""

from __future__ import annotations

import itertools
import time

from repro.errors import ProtocolError, TransportClosedError, TransportError
from repro.obs.accounting import SessionAccounting
from repro.obs.flight import (
    EVENT_ERROR,
    EVENT_SESSION,
    EVENT_STREAM,
)
from repro.obs.naming import (
    D2H_KIND,
    DIRECTIONAL_TYPES,
    HOT_DESCRIPTORS,
    KIND_CHUNK,
    KIND_COPY_IN,
    KIND_COPY_OUT,
    KIND_LAUNCH,
)
from repro.obs.spans import KIND_SERVER, NULL_TRACER, Tracer
from repro.protocol.codec import (
    MessageReader,
    decode_init,
    decode_request,
    encode_response_vectored,
)
from repro.protocol.messages import (
    FreeRequest,
    InitRequest,
    MallocRequest,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    Request,
)
from repro.rcuda.server.handler import SessionHandler
from repro.simcuda.device import SimulatedGpu
from repro.simcuda.runtime import CudaRuntime
from repro.transport.base import Transport, buffer_nbytes

_SERVER_SESSION_IDS = itertools.count(1)

#: Close reasons a session can end with.  ``client-closed`` is the
#: client-side clean ending; ``idle-timeout`` and ``server-drained`` are
#: the server-initiated clean endings of the async daemon (keepalive
#: reaping and graceful drain).  Everything else triggers the
#: unclean-close callback.
CLOSE_CLEAN = "client-closed"
CLOSE_IDLE = "idle-timeout"
CLOSE_DRAINED = "server-drained"
CLOSE_MID_MESSAGE = "transport-died-mid-message"
CLOSE_MID_STREAM = "transport-died-mid-stream"
CLOSE_MID_DISPATCH = "transport-died-mid-dispatch"
CLOSE_PROTOCOL = "protocol-error"
CLOSE_DISPATCH_RAISED = "dispatch-failed"

#: The endings that are *not* unclean (no sticky error, no postmortem).
CLEAN_REASONS = frozenset({CLOSE_CLEAN, CLOSE_IDLE, CLOSE_DRAINED})


class ServerSession:
    """Services one connection over one fresh GPU context."""

    def __init__(
        self,
        transport: Transport,
        device: SimulatedGpu,
        tracer: Tracer | None = None,
        metrics=None,
        session_id: str | None = None,
        flight=None,
        slo=None,
        accounting: bool = True,
        on_unclean=None,
        tenant=None,
    ) -> None:
        self.transport = transport
        # "a different server process for each remote execution over a new
        # GPU context" -- pre-initialized, so clients skip the CUDA
        # environment initialization delay.  When the daemon runs a
        # device pool, the session instead services its pool tenant
        # (quota checks, scheduled launches) over the shared device.
        if tenant is not None:
            from repro.rcuda.server.tenancy import TenantSessionHandler

            self.handler = TenantSessionHandler(tenant)
        else:
            self.handler = SessionHandler(
                CudaRuntime(device, preinitialized=True)
            )
        self.tenant = tenant
        self.initialized = False
        self.finished = False
        #: 1 while a request is being dispatched (the daemon sums this
        #: into its queue-depth counter track).
        self.dispatching = 0
        #: Device bytes this session's live allocations hold, so occupancy
        #: is attributable per session even though the device is shared.
        self.device_bytes_held = 0
        self._allocations: dict[int, int] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.session_id = (
            session_id
            if session_id is not None
            else f"server-{next(_SERVER_SESSION_IDS)}"
        )
        self.flight = flight
        self.slo = slo
        #: Called as ``on_unclean(session, reason, detail)`` from the
        #: session thread when the connection ends any way but cleanly.
        self.on_unclean = on_unclean
        self.accounting: SessionAccounting | None = (
            SessionAccounting(self.session_id) if accounting else None
        )
        if self.accounting is not None:
            # Wire byte totals come from the transport's own counters;
            # the dispatch path never re-adds them.
            self.accounting.bind_transport(transport)
            if tenant is not None:
                self.accounting.bind_tenant(tenant)
        if tenant is not None:
            tenant.session = self.session_id
        self.close_reason = ""
        self.metrics = metrics
        if metrics is not None:
            self._m_latency = metrics.histogram(
                "rcuda_rpc_latency_seconds",
                "Server-side dispatch latency per remoted CUDA function.",
                labelnames=("function",),
            )
            self._m_bytes = metrics.counter(
                "rcuda_rpc_bytes_total",
                "Wire bytes per remoted CUDA function and direction.",
                labelnames=("function", "direction"),
            )
            self._m_requests = metrics.counter(
                "rcuda_requests_total",
                "Requests handled by this daemon across all sessions.",
            )

    @property
    def open_streams(self) -> int:
        """Chunked H2D streams currently open mid-assembly."""
        return len(self.handler._streams)

    @property
    def pending_device_work(self) -> bool:
        """True while launches sit in the scheduler queue: a session
        parked there is *live* even if its socket is silent, so the idle
        sweep must not reap it."""
        return self.handler.pending_device_work

    def run(self) -> None:
        """Service the connection until the client disconnects (the
        blocking thread-per-connection driver; the async daemon drives
        :meth:`begin`/:meth:`dispatch`/:meth:`finish` itself)."""
        reader = MessageReader(self.transport)
        self.begin()
        reason, detail = CLOSE_DISPATCH_RAISED, ""
        try:
            reason, detail = self._serve(reader)
        finally:
            self.finish(reason, detail)

    def begin(self) -> None:
        """Mark the session live (flight-recorder lifecycle event)."""
        if self.flight is not None:
            self.flight.record(
                EVENT_SESSION, "session-start", session=self.session_id
            )

    def finish(self, reason: str, detail: str = "") -> None:
        """End the session: classify the close, freeze the ledger, fire
        the unclean callback, release the GPU context, close the
        transport.  Idempotent; both the blocking ``run`` loop and the
        event-loop driver funnel through here."""
        if self.finished:
            return
        flight = self.flight
        self.close_reason = reason
        unclean = reason not in CLEAN_REASONS
        acct = self.accounting
        if acct is not None:
            acct.open_streams = self.open_streams
            acct.finished = True
            acct.close_reason = reason
            acct.freeze_bytes()
            acct.freeze_tenant()
            if unclean and acct.last_error == 0:
                # Mirror the client's sticky state: an aborted
                # connection surfaces there as cudaErrorUnknown.
                from repro.simcuda.errors import CudaError

                acct.record_error(int(CudaError.cudaErrorUnknown))
        if flight is not None:
            if unclean:
                flight.record(
                    EVENT_ERROR, reason,
                    session=self.session_id, detail=detail,
                )
            flight.record(
                EVENT_SESSION, "session-end",
                session=self.session_id, reason=reason,
            )
        self.finished = True
        if unclean and self.on_unclean is not None:
            try:
                self.on_unclean(self, reason, detail)
            except Exception:
                pass  # a broken dump writer must not mask the close
        self.handler.close()  # releases the context and its memory
        self._allocations.clear()
        self.device_bytes_held = 0
        self.transport.close()

    def _serve(self, reader: MessageReader) -> tuple[str, str]:
        """The decode/dispatch loop; returns (close reason, detail)."""
        seq = -1
        try:
            while True:
                seq += 1
                received_before = self.transport.bytes_received
                try:
                    # The first message is the id-less initialization.
                    request = (
                        decode_init(reader) if seq == 0
                        else decode_request(reader)
                    )
                except (TransportClosedError, TransportError) as exc:
                    if self.transport.bytes_received != received_before:
                        # The peer died with a partially delivered
                        # message on the wire: never a clean close.
                        return CLOSE_MID_MESSAGE, str(exc)
                    if self.open_streams:
                        # On a message boundary, but a chunked copy was
                        # still being assembled.
                        return CLOSE_MID_STREAM, str(exc)
                    # Normal finalization: the client closed its socket.
                    return CLOSE_CLEAN, ""
                self.dispatch(
                    request, seq=seq, received_before=received_before
                )
                if seq == 0:
                    self.initialized = True
        except (TransportClosedError, TransportError) as exc:
            # The response send failed: the client vanished while a
            # request was in flight.
            return CLOSE_MID_DISPATCH, str(exc)
        except ProtocolError as exc:
            # Malformed traffic: drop the connection rather than guess.
            return CLOSE_PROTOCOL, str(exc)

    def _account_memory(self, request: Request, response) -> None:
        """Track this session's live device allocations by watching the
        malloc/free traffic it services (success paths only)."""
        rtype = type(request)
        if rtype is not MallocRequest and rtype is not FreeRequest:
            return
        acct = self.accounting
        if rtype is MallocRequest:
            if response.error == 0 and response.ptr is not None:
                self._allocations[response.ptr] = request.size
                self.device_bytes_held += request.size
                if acct is not None:
                    acct.allocs += 1
                    acct.device_bytes_held = self.device_bytes_held
                    if self.device_bytes_held > acct.peak_device_bytes:
                        acct.peak_device_bytes = self.device_bytes_held
        elif response.error == 0:
            self.device_bytes_held -= self._allocations.pop(request.ptr, 0)
            if acct is not None:
                acct.frees += 1
                acct.device_bytes_held = self.device_bytes_held

    def dispatch(
        self,
        request: Request,
        seq: int,
        received_before: int,
        arrived_at: float | None = None,
    ) -> None:
        """Handle one decoded request and send its response, observed.

        ``received_before`` is the transport's ``bytes_received`` before
        this request's bytes were accounted, so per-request inbound byte
        attribution works for both the blocking reader and the async
        decoder.  ``arrived_at`` is the perf-counter instant the decoded
        request entered the server's inbound queue (the async daemon
        stamps it when tracing); the gap to dispatch becomes the span's
        ``queued_for`` attr -- the server-queue phase of the causal
        breakdown."""
        self.dispatching = 1
        try:
            self._dispatch_inner(request, seq, received_before, arrived_at)
        finally:
            self.dispatching = 0

    def _dispatch_inner(
        self,
        request: Request,
        seq: int,
        received_before: int,
        arrived_at: float | None = None,
    ) -> None:
        # This method is the per-request hot path: everything observed
        # is aliased to locals up front, and byte totals that the
        # transport already counts (bytes in/out) are never re-summed
        # here -- the ledger reads them lazily.  The flight recorder and
        # the accounting ledger are on for every production session, so
        # their branch must stay within the benchmarked <5% budget.
        tracer = self.tracer
        flight = self.flight
        acct = self.accounting
        metrics = self.metrics
        slo = self.slo
        traced = tracer.enabled
        wired = traced or metrics is not None
        observing = (
            flight is not None or acct is not None or wired or slo is not None
        )
        span = None
        t0 = 0.0
        bytes_in = 0
        if observing:
            rtype = type(request)
            name, fid, phase, kind = HOT_DESCRIPTORS[rtype]
            if rtype in DIRECTIONAL_TYPES and request.kind == D2H_KIND:
                phase = "d2h"
                kind = KIND_COPY_OUT
            if wired:
                bytes_in = self.transport.bytes_received - received_before
            t0 = time.perf_counter()
            if traced:
                span = tracer.start(
                    name,
                    KIND_SERVER,
                    self.session_id,
                    seq,
                    function_id=fid,
                    phase=phase,
                )
                if arrived_at is not None and t0 > arrived_at:
                    span.attrs["queued_for"] = t0 - arrived_at
                if self.tenant is not None:
                    span.attrs["tenant"] = self.tenant.tenant_id
        try:
            if isinstance(request, InitRequest):
                response = self.handler.handle_init(request)
            else:
                response = self.handler.handle(request)
            if response is None:
                # Unacknowledged stream frames (Begin/chunks): nothing
                # goes back on the wire.
                wire_len = 0
            else:
                self._account_memory(request, response)
                # D2H data leaves as its own buffer (a view of device
                # memory) via one vectored write -- never concatenated
                # into a fresh header+payload object.
                parts = encode_response_vectored(response)
                if wired:
                    wire_len = sum(buffer_nbytes(p) for p in parts)
                if len(parts) == 1:
                    self.transport.send(parts[0])
                else:
                    self.transport.send_vectored(parts)
        except BaseException as exc:
            # Never leak a span: a raise in handling, encoding or the
            # send itself still closes it, marked as failed.
            if span is not None:
                tracer.fail(span, bytes_received=bytes_in)
            if flight is not None:
                if self.tenant is not None:
                    flight.record(
                        EVENT_ERROR, type(exc).__name__,
                        session=self.session_id, seq=seq, request=name,
                        tenant=self.tenant.tenant_id,
                        queued_launch_depth=len(self.tenant.queue),
                    )
                else:
                    flight.record(
                        EVENT_ERROR, type(exc).__name__,
                        session=self.session_id, seq=seq, request=name,
                    )
            raise
        if observing:
            elapsed = time.perf_counter() - t0
            error = response.error if response is not None else 0
            if span is not None:
                if self.tenant is not None:
                    # Scheduler drain paid by this request (zero when no
                    # queued launches stood in the way).
                    drain = self.handler.last_drain_seconds
                    if drain:
                        span.attrs["sched_drain"] = drain
                tracer.finish(
                    span,
                    bytes_received=bytes_in,
                    bytes_sent=wire_len,
                    error=error,
                )
            if metrics is not None:
                self._m_latency.observe(elapsed, function=name)
                self._m_bytes.inc(bytes_in, function=name, direction="in")
                self._m_bytes.inc(wire_len, function=name, direction="out")
                self._m_requests.inc()
            stream_edge = (
                rtype is MemcpyStreamBeginRequest
                or rtype is MemcpyStreamEndRequest
            )
            if acct is not None:
                acct.requests += 1
                if kind == KIND_COPY_IN:
                    acct.copies_in += 1
                elif kind == KIND_COPY_OUT:
                    acct.copies_out += 1
                elif kind == KIND_CHUNK:
                    acct.chunks_received += 1
                elif kind == KIND_LAUNCH:
                    acct.launches += 1
                if stream_edge:
                    # Only Begin/End frames move the open-stream count;
                    # polling it every request would put a len() on the
                    # chunk-frame fast path for nothing.
                    acct.open_streams = self.open_streams
                if error:
                    acct.record_error(error)
            if flight is not None:
                if self.tenant is not None:
                    flight.record_span(
                        name, self.session_id, seq, elapsed, phase, error,
                        t0 + elapsed + flight.wall_offset,
                        tenant=self.tenant.tenant_id,
                        depth=len(self.tenant.queue),
                    )
                else:
                    flight.record_span(
                        name, self.session_id, seq, elapsed, phase, error,
                        t0 + elapsed + flight.wall_offset,
                    )
                if stream_edge:
                    if rtype is MemcpyStreamBeginRequest:
                        flight.record(
                            EVENT_STREAM, "stream-begin",
                            session=self.session_id, seq=seq,
                            stream_id=request.stream_id, total=request.size,
                        )
                    else:
                        flight.record(
                            EVENT_STREAM, "stream-end",
                            session=self.session_id, seq=seq,
                            stream_id=request.stream_id,
                        )
            if slo is not None:
                slo.observe(name, phase, elapsed)
