"""rCUDA: the CUDA-remoting middleware (Section III).

Client/server architecture exactly as the paper describes: applications
link against a wrapper runtime (:class:`~repro.rcuda.client.RemoteCudaRuntime`)
that forwards every CUDA call as a wire message to a GPU server; the
server daemon (:class:`~repro.rcuda.server.RCudaDaemon`) listens on a TCP
port and spawns one session -- over a fresh, pre-initialized GPU
context -- per connection, which is how the GPU is time-multiplexed among
concurrent clients.

The seven-phase execution recipe of Section III (initialization, memory
allocation, input transfer, kernel execution, output transfer, memory
release, finalization) is what :mod:`repro.workloads` drives through this
package.
"""

from repro.rcuda.client.connection import RCudaClient
from repro.rcuda.client.runtime import RemoteCudaRuntime
from repro.rcuda.server.daemon import RCudaDaemon
from repro.rcuda.server.eventloop import AsyncRCudaDaemon
from repro.rcuda.server.handler import SessionHandler
from repro.rcuda.server.session import ServerSession
from repro.rcuda.server.tenancy import (
    DevicePool,
    LaunchScheduler,
    TenantSessionHandler,
)

__all__ = [
    "AsyncRCudaDaemon",
    "DevicePool",
    "LaunchScheduler",
    "RCudaClient",
    "RCudaDaemon",
    "RemoteCudaRuntime",
    "ServerSession",
    "SessionHandler",
    "TenantSessionHandler",
]
