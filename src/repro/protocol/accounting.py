"""Message-size accounting: Table I, derived from the codec itself.

Nothing here hardcodes a size.  Every number is obtained by *encoding a
representative message and measuring it*, so the regenerated Table I is a
genuine property of the implementation -- if the codec drifted from the
paper's layout, the Table I experiment (and its tests) would fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol.codec import encode_request, encode_response
from repro.protocol.messages import (
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    Response,
    SetupArgsRequest,
    SyncRequest,
)
from repro.simcuda.types import MemcpyKind


@dataclass(frozen=True)
class MessageCost:
    """Bytes each way for one operation: ``fixed + payload`` on the side
    that carries the variable part."""

    operation: str
    send_fixed: int
    send_has_payload: bool
    receive_fixed: int
    receive_has_payload: bool

    def send_bytes(self, payload: int = 0) -> int:
        return self.send_fixed + (payload if self.send_has_payload else 0)

    def receive_bytes(self, payload: int = 0) -> int:
        return self.receive_fixed + (payload if self.receive_has_payload else 0)


def _measure_fixed(encode_with_payload, payload_sizes=(0, 64)) -> tuple[int, bool]:
    """Encode at two payload sizes; the intercept is the fixed cost and a
    unit slope means the payload rides in this direction."""
    a = len(encode_with_payload(payload_sizes[0]))
    b = len(encode_with_payload(payload_sizes[1]))
    slope = (b - a) // (payload_sizes[1] - payload_sizes[0])
    assert slope in (0, 1), f"non-linear message size (slope {slope})"
    return a, slope == 1


def init_cost() -> MessageCost:
    send_fixed, send_var = _measure_fixed(
        lambda n: encode_request(InitRequest(module=b"\x00" * n))
    )
    recv = len(encode_response(InitResponse(error=0, compute_capability=(1, 3))))
    return MessageCost("Initialization", send_fixed, send_var, recv, False)


def malloc_cost() -> MessageCost:
    send = len(encode_request(MallocRequest(size=4096)))
    recv = len(encode_response(MallocResponse(error=0, ptr=0x1000)))
    return MessageCost("cudaMalloc", send, False, recv, False)


def memcpy_h2d_cost() -> MessageCost:
    send_fixed, send_var = _measure_fixed(
        lambda n: encode_request(
            MemcpyRequest(
                dst=0x1000,
                src=0,
                size=n,
                kind=MemcpyKind.cudaMemcpyHostToDevice,
                data=b"\x00" * n,
            )
        )
    )
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaMemcpy (to device)", send_fixed, send_var, recv, False)


def memcpy_d2h_cost() -> MessageCost:
    send = len(
        encode_request(
            MemcpyRequest(
                dst=0, src=0x1000, size=64, kind=MemcpyKind.cudaMemcpyDeviceToHost
            )
        )
    )
    recv_fixed, recv_var = _measure_fixed(
        lambda n: encode_response(MemcpyResponse(error=0, data=b"\x00" * n))
    )
    return MessageCost("cudaMemcpy (to host)", send, False, recv_fixed, recv_var)


def memcpy_stream_begin_cost() -> MessageCost:
    send = len(
        encode_request(
            MemcpyStreamBeginRequest(
                dst=0x1000,
                src=0,
                size=1 << 20,
                kind=int(MemcpyKind.cudaMemcpyHostToDevice),
                chunk_bytes=1 << 16,
                stream_id=1,
            )
        )
    )
    # H2D Begin frames are unacknowledged; the End's single terminal ack
    # covers the whole stream, so the receive side here is 0.
    return MessageCost("cudaMemcpy (stream begin)", send, False, 0, False)


def memcpy_chunk_cost() -> MessageCost:
    send_fixed, send_var = _measure_fixed(
        lambda n: encode_request(
            MemcpyChunkRequest(stream_id=1, seq=0, size=n, data=b"\x00" * n)
        )
    )
    return MessageCost("cudaMemcpy (stream chunk)", send_fixed, send_var, 0, False)


def memcpy_stream_end_cost() -> MessageCost:
    send = len(encode_request(MemcpyStreamEndRequest(stream_id=1, chunks=4)))
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaMemcpy (stream end)", send, False, recv, False)


def streamed_h2d_bytes(payload: int, chunk_bytes: int) -> tuple[int, int]:
    """Wire bytes each way for one chunked H2D copy of ``payload`` data
    bytes split into ``chunk_bytes`` frames (Begin + chunks + End)."""
    chunks = -(-payload // chunk_bytes) if payload else 0
    sent = (
        memcpy_stream_begin_cost().send_fixed
        + chunks * memcpy_chunk_cost().send_fixed
        + payload
        + memcpy_stream_end_cost().send_fixed
    )
    return sent, memcpy_stream_end_cost().receive_fixed


def launch_cost() -> MessageCost:
    # The variable part is the NUL-terminated kernel name; measure with
    # name lengths differing by a known amount.
    a = len(encode_request(LaunchRequest(kernel_name="k")))
    b = len(encode_request(LaunchRequest(kernel_name="k" * 65)))
    assert b - a == 64
    fixed = a - 2  # minus "k\x00"
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaLaunch", fixed, True, recv, False)


def free_cost() -> MessageCost:
    send = len(encode_request(FreeRequest(ptr=0x1000)))
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaFree", send, False, recv, False)


def setup_args_cost(args: tuple = ()) -> MessageCost:
    """Not part of Table I (support operation); size depends on the tuple."""
    send = len(encode_request(SetupArgsRequest(args=args)))
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaSetupArgument (batched)", send, False, recv, False)


def sync_cost() -> MessageCost:
    send = len(encode_request(SyncRequest()))
    recv = len(encode_response(Response(error=0)))
    return MessageCost("cudaThreadSynchronize", send, False, recv, False)


def table1_from_codec() -> tuple[MessageCost, ...]:
    """The six operations of Table I, measured from the codec."""
    return (
        init_cost(),
        malloc_cost(),
        memcpy_h2d_cost(),
        memcpy_d2h_cost(),
        launch_cost(),
        free_cost(),
    )


# -- convenience arithmetic used by the estimation model --------------------------

def request_response_bytes(cost: MessageCost, payload: int = 0) -> tuple[int, int]:
    """(bytes sent, bytes received) for one operation with ``payload``
    variable bytes."""
    return cost.send_bytes(payload), cost.receive_bytes(payload)


def memcpy_request_bytes(payload: int, to_device: bool) -> tuple[int, int]:
    """Wire bytes each way for one cudaMemcpy of ``payload`` data bytes."""
    cost = memcpy_h2d_cost() if to_device else memcpy_d2h_cost()
    return request_response_bytes(cost, payload)


def launch_request_bytes(kernel_name: str) -> tuple[int, int]:
    """Wire bytes each way for a cudaLaunch of ``kernel_name``."""
    cost = launch_cost()
    return request_response_bytes(cost, len(kernel_name) + 1)
