"""Request and response dataclasses, one per remoted operation.

Field names and widths mirror Table I.  ``data`` payloads are bytes-like
(``bytes``, ``bytearray``, or a ``memoryview``/NumPy view of caller
memory); the vectored codec puts them on the wire with **zero** staging
copies.  Equality between a view-carrying message and its ``bytes``
twin holds (buffer-protocol comparison), which the round-trip property
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simcuda.types import Dim3

#: Anything the codec can put on the wire without copying.
Buffer = bytes | bytearray | memoryview


# -- requests -----------------------------------------------------------------

@dataclass(frozen=True)
class InitRequest:
    """Initialization: Size (4) + Module (x).  First message on a
    connection; carries no function id (see Table I)."""

    module: bytes


@dataclass(frozen=True)
class MallocRequest:
    """cudaMalloc: Function id (4) + Size (4)."""

    size: int


@dataclass(frozen=True)
class MemcpyRequest:
    """cudaMemcpy: Function id + Destination + Source + Size + Kind
    (4 each) + Data (x, host-to-device only)."""

    dst: int
    src: int
    size: int
    kind: int
    data: Buffer | None = field(default=None, repr=False)


@dataclass(frozen=True)
class MemcpyAsyncRequest:
    """cudaMemcpyAsync: the cudaMemcpy layout plus a 4-byte stream field.

    Not in Table I -- asynchronous transfers are the paper's declared
    future work; this message is our implementation of it.
    """

    dst: int
    src: int
    size: int
    kind: int
    stream: int = 0
    data: Buffer | None = field(default=None, repr=False)


@dataclass(frozen=True)
class LaunchRequest:
    """cudaLaunch: Function id + Texture offset + Parameters offset +
    Number of textures (4 each) + Block dim (12) + Grid dim (8) + Shared
    size (4) + Stream (4) + Kernel name (x, NUL-terminated).

    The "Parameters offset" field carries the kernel-name region length
    (the offset at which parameters would begin), which is how the
    receiver frames the variable region.
    """

    kernel_name: str
    block: Dim3 = Dim3(1, 1, 1)
    grid: Dim3 = Dim3(1, 1, 1)
    shared_bytes: int = 0
    stream: int = 0
    texture_offset: int = 0
    num_textures: int = 0


@dataclass(frozen=True)
class FreeRequest:
    """cudaFree: Function id (4) + Device pointer (4)."""

    ptr: int


@dataclass(frozen=True)
class MemsetRequest:
    """cudaMemset: Function id + Device pointer + Value + Size (4 each)."""

    ptr: int
    value: int
    size: int


@dataclass(frozen=True)
class SetupArgsRequest:
    """Kernel arguments for the next launch (batched cudaSetupArgument)."""

    args: tuple


@dataclass(frozen=True)
class SyncRequest:
    """cudaThreadSynchronize."""


@dataclass(frozen=True)
class PropertiesRequest:
    """cudaGetDeviceProperties (beyond the init handshake's capability)."""


@dataclass(frozen=True)
class StreamCreateRequest:
    """cudaStreamCreate."""


@dataclass(frozen=True)
class StreamSyncRequest:
    """cudaStreamSynchronize."""

    stream: int = 0


@dataclass(frozen=True)
class EventCreateRequest:
    """cudaEventCreate."""


@dataclass(frozen=True)
class EventRecordRequest:
    """cudaEventRecord."""

    event: int = 0


@dataclass(frozen=True)
class EventElapsedRequest:
    """cudaEventElapsedTime."""

    start: int = 0
    end: int = 0


@dataclass(frozen=True)
class MemcpyStreamBeginRequest:
    """Open a chunked streaming copy: Function id + Destination + Source +
    Size + Kind + Chunk size + Stream id (4 each).

    H2D begins expect no reply; the terminal ``MemcpyStreamEndRequest``
    carries the single acknowledgement for the whole stream.  D2H begins
    are answered with a streamed frame sequence (see the codec).
    """

    dst: int
    src: int
    size: int
    kind: int
    chunk_bytes: int
    stream_id: int


@dataclass(frozen=True)
class MemcpyChunkRequest:
    """One frame of an open H2D stream: Function id + Stream id + Sequence
    + Size (4 each) + Data (x).  Never acknowledged individually."""

    stream_id: int
    seq: int
    size: int
    data: Buffer | None = field(default=None, repr=False)


@dataclass(frozen=True)
class MemcpyStreamEndRequest:
    """Close an H2D stream: Function id + Stream id + Chunk count
    (4 each).  The reply is the stream's one terminal error code."""

    stream_id: int
    chunks: int


Request = (
    InitRequest
    | MallocRequest
    | MemcpyRequest
    | MemcpyAsyncRequest
    | MemsetRequest
    | LaunchRequest
    | FreeRequest
    | SetupArgsRequest
    | SyncRequest
    | PropertiesRequest
    | StreamCreateRequest
    | StreamSyncRequest
    | EventCreateRequest
    | EventRecordRequest
    | EventElapsedRequest
    | MemcpyStreamBeginRequest
    | MemcpyChunkRequest
    | MemcpyStreamEndRequest
)


# -- responses -----------------------------------------------------------------

@dataclass(frozen=True)
class Response:
    """The universal reply: the 32-bit CUDA error code."""

    error: int = 0


@dataclass(frozen=True)
class InitResponse(Response):
    """Initialization reply: Compute capability (8 = 2 x u4) + error (4)."""

    compute_capability: tuple[int, int] = (1, 3)


@dataclass(frozen=True)
class MallocResponse(Response):
    """cudaMalloc reply: error (4) + Device pointer (4)."""

    ptr: int = 0


@dataclass(frozen=True)
class MemcpyResponse(Response):
    """cudaMemcpy reply: error (4) [+ Data (x) for device-to-host]."""

    data: Buffer | None = field(default=None, repr=False)


@dataclass(frozen=True)
class MemcpyStreamResponse(Response):
    """D2H stream reply: error (4) [+ frames ``len (4) + data (x)`` ending
    with a 0 sentinel].  ``chunks`` holds the frame payloads (device-memory
    views on the server side) for the vectored encoder."""

    chunks: tuple = field(default=(), repr=False)


@dataclass(frozen=True)
class ValueResponse(Response):
    """Generic error + one u4 value (stream/event handles)."""

    value: int = 0


@dataclass(frozen=True)
class PropertiesResponse(Response):
    """Device name, capability and memory for cudaGetDeviceProperties."""

    name: str = ""
    compute_capability: tuple[int, int] = (0, 0)
    total_global_mem: int = 0


@dataclass(frozen=True)
class ElapsedResponse(Response):
    """cudaEventElapsedTime reply: error + elapsed milliseconds (f8)."""

    elapsed_ms: float = 0.0
