"""The rCUDA wire protocol.

The paper (Section III): "the client side sends a message to the server
for each CUDA call performed by the application ... the first 32 bits of
the request identify the specific CUDA function called, while the
subsequent data is function-dependent ... The server always sends a 32-bit
result code of the operation, and possibly more data".

This package implements that protocol byte-for-byte per Table I:

* :mod:`repro.protocol.constants` -- the 32-bit function identifiers;
* :mod:`repro.protocol.messages` -- request/response dataclasses;
* :mod:`repro.protocol.codec` -- struct-level encode/decode.  The
  initialization exchange is the first message of a connection and carries
  no function id (exactly as Table I shows: its send side is Size +
  Module only);
* :mod:`repro.protocol.accounting` -- message-size arithmetic *derived
  from the codec* (by encoding and measuring), from which the experiment
  driver regenerates Table I.

Two quirks of Table I are preserved faithfully: device pointers travel as
4 bytes (the 32-bit era; the simulated device keeps its address space
below 2**32 accordingly), and the cudaLaunch "Parameters offset" field
doubles as the kernel-name region length, which is how the receiver can
frame the NUL-terminated name without a separate length field.

Kernel arguments travel in a dedicated SETUP_ARGS message (CUDA 2.3's
``cudaSetupArgument`` batched per launch).  Table I does not list it --
the paper only breaks down "the most commonly used operations" -- and the
estimation model never needs it, but a functional middleware does.
"""

from repro.protocol.constants import FunctionId, PROTOCOL_VERSION
from repro.protocol.messages import (
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemcpyStreamResponse,
    PropertiesRequest,
    PropertiesResponse,
    Response,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
    ValueResponse,
)
from repro.protocol.codec import (
    MessageReader,
    decode_request,
    encode_request,
    encode_request_vectored,
    encode_response,
    encode_response_vectored,
    read_response,
    read_stream_response,
)
from repro.protocol.accounting import (
    MessageCost,
    launch_request_bytes,
    memcpy_request_bytes,
    request_response_bytes,
    table1_from_codec,
)
from repro.protocol.streamdec import StreamDecoder

__all__ = [
    "EventCreateRequest",
    "EventElapsedRequest",
    "EventRecordRequest",
    "FreeRequest",
    "FunctionId",
    "InitRequest",
    "InitResponse",
    "LaunchRequest",
    "MallocRequest",
    "MallocResponse",
    "MemcpyChunkRequest",
    "MemcpyRequest",
    "MemcpyResponse",
    "MemcpyStreamBeginRequest",
    "MemcpyStreamEndRequest",
    "MemcpyStreamResponse",
    "MessageCost",
    "MessageReader",
    "PROTOCOL_VERSION",
    "PropertiesRequest",
    "PropertiesResponse",
    "Response",
    "SetupArgsRequest",
    "StreamCreateRequest",
    "StreamDecoder",
    "StreamSyncRequest",
    "SyncRequest",
    "ValueResponse",
    "decode_request",
    "encode_request",
    "encode_request_vectored",
    "encode_response",
    "encode_response_vectored",
    "launch_request_bytes",
    "memcpy_request_bytes",
    "read_response",
    "read_stream_response",
    "request_response_bytes",
    "table1_from_codec",
]
