"""Low-level wire primitives: packing helpers and typed argument blobs.

Everything on the wire is little-endian, matching the x86 testbed.  Kernel
arguments are serialized as a count followed by (1-byte type code, value)
pairs; see :data:`ARG_CODECS`.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

U4 = struct.Struct("<I")
I4 = struct.Struct("<i")
U8 = struct.Struct("<Q")
I8 = struct.Struct("<q")
F4 = struct.Struct("<f")
F8 = struct.Struct("<d")


def pack_u4(value: int) -> bytes:
    if not 0 <= value < 2**32:
        raise ProtocolError(f"value {value} does not fit a 4-byte field")
    return U4.pack(value)


def unpack_u4(data: bytes, offset: int = 0) -> int:
    return U4.unpack_from(data, offset)[0]


#: Kernel-argument type codes.  Pointers use ``ptr`` (4 bytes on the wire,
#: like every device pointer in Table I).
ARG_CODES: dict[str, int] = {
    "ptr": 0, "u4": 1, "i4": 2, "f4": 3, "f8": 4, "u8": 5, "i8": 6,
}
ARG_STRUCTS: dict[int, struct.Struct] = {
    0: U4, 1: U4, 2: I4, 3: F4, 4: F8, 5: U8, 6: I8,
}


def classify_arg(value) -> str:
    """Pick a wire type for a Python kernel argument.

    Ints become pointers/``u4``/``u8``/``i4``/``i8`` by range, floats
    ``f8`` (kernels cast as needed; ``f8`` keeps full precision for
    alpha/beta scalars).
    """
    if isinstance(value, bool):
        raise ProtocolError("booleans are not valid kernel arguments")
    if isinstance(value, int):
        if value < -(2**63) or value >= 2**64:
            raise ProtocolError(
                f"kernel argument {value} does not fit any wire integer"
            )
        if value < -(2**31):
            return "i8"
        if value < 0:
            return "i4"
        if value < 2**32:
            return "u4"
        return "u8"
    if isinstance(value, float):
        return "f8"
    raise ProtocolError(
        f"unsupported kernel argument type {type(value).__name__}"
    )


def pack_args(args: tuple) -> bytes:
    """Serialize a kernel argument tuple."""
    out = bytearray(pack_u4(len(args)))
    for value in args:
        kind = classify_arg(value)
        code = ARG_CODES[kind]
        out.append(code)
        out += ARG_STRUCTS[code].pack(value)
    return bytes(out)


def unpack_args(data: bytes) -> tuple:
    """Deserialize a kernel argument blob back to Python values."""
    if len(data) < 4:
        raise ProtocolError("argument blob shorter than its count field")
    count = unpack_u4(data)
    offset = 4
    values = []
    for _ in range(count):
        if offset >= len(data):
            raise ProtocolError("truncated argument blob")
        code = data[offset]
        offset += 1
        codec = ARG_STRUCTS.get(code)
        if codec is None:
            raise ProtocolError(f"unknown argument type code {code}")
        if offset + codec.size > len(data):
            raise ProtocolError("truncated argument value")
        values.append(codec.unpack_from(data, offset)[0])
        offset += codec.size
    if offset != len(data):
        raise ProtocolError(
            f"argument blob has {len(data) - offset} trailing bytes"
        )
    return tuple(values)


def pack_cstr(name: str) -> bytes:
    """A NUL-terminated kernel name, the ``x`` of Table I's cudaLaunch."""
    encoded = name.encode()
    if b"\x00" in encoded:
        raise ProtocolError("kernel names cannot contain NUL")
    return encoded + b"\x00"


def unpack_cstr(data: bytes) -> str:
    if not data.endswith(b"\x00"):
        raise ProtocolError("kernel name region is not NUL-terminated")
    return data[:-1].decode()
