"""Encode/decode for the rCUDA wire protocol.

Byte layouts match Table I exactly; see the package docstring for the two
documented quirks (id-less initialization, the launch "Parameters offset"
field as the name-region length).  The codec is symmetric and loss-free:
``decode_request(encode_request(r)) == r`` for every request, a property
the test suite checks exhaustively with hypothesis.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.errors import ProtocolError
from repro.protocol.constants import FunctionId
from repro.protocol.messages import (
    ElapsedResponse,
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    InitRequest,
    InitResponse,
    LaunchRequest,
    MallocRequest,
    MallocResponse,
    MemcpyAsyncRequest,
    MemcpyChunkRequest,
    MemcpyRequest,
    MemcpyResponse,
    MemcpyStreamBeginRequest,
    MemcpyStreamEndRequest,
    MemcpyStreamResponse,
    MemsetRequest,
    PropertiesRequest,
    PropertiesResponse,
    Request,
    Response,
    SetupArgsRequest,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
    ValueResponse,
)
from repro.protocol.wire import (
    pack_args,
    pack_cstr,
    pack_u4,
    unpack_args,
    unpack_cstr,
)
from repro.simcuda.types import Dim3, MemcpyKind

_U4 = struct.Struct("<I")
_HDR_LAUNCH = struct.Struct("<IIIIIIIIIIII")  # 12 u4 fields incl. id
_F8 = struct.Struct("<d")


class _ByteSource(Protocol):
    def recv_exact(self, nbytes: int) -> bytes: ...


class MessageReader:
    """Adapter giving ``recv_exact`` over a transport or a bytes buffer."""

    def __init__(self, source) -> None:
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._buf = bytes(source)
            self._pos = 0
            self._transport = None
        else:
            self._buf = b""
            self._pos = 0
            self._transport = source

    def recv_exact(self, nbytes: int) -> bytes:
        if self._transport is not None:
            return self._transport.recv_exact(nbytes)
        if self._pos + nbytes > len(self._buf):
            raise ProtocolError(
                f"message truncated: wanted {nbytes} bytes, "
                f"{len(self._buf) - self._pos} available"
            )
        out = self._buf[self._pos : self._pos + nbytes]
        self._pos += nbytes
        return out

    def exhausted(self) -> bool:
        return self._transport is None and self._pos == len(self._buf)

    def note_message(self) -> None:
        """Tell the underlying transport one full message was consumed."""
        note = getattr(self._transport, "note_message_received", None)
        if note is not None:
            note()

    def read_u4(self) -> int:
        return _U4.unpack(self.recv_exact(4))[0]


# -- requests: encode ----------------------------------------------------------

def _payload_nbytes(data) -> int:
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return memoryview(data).nbytes


def encode_request(request: Request) -> bytes:
    """Serialize any request to one bytes object.

    Thin gather over :func:`encode_request_vectored`, so the byte stream
    is *structurally* identical to what a vectored send produces.
    """
    parts = encode_request_vectored(request)
    return parts[0] if len(parts) == 1 and isinstance(parts[0], bytes) else b"".join(parts)


def encode_request_vectored(request: Request) -> list:
    """Serialize any request as a buffer list (prepending the function id,
    except Init).

    Memcpy payloads pass through as-is -- ``bytes``, ``bytearray``,
    ``memoryview`` or NumPy views are never concatenated into a fresh
    header+payload object, so a vectored transport can put them on the
    wire with zero staging copies.
    """
    if isinstance(request, InitRequest):
        return [pack_u4(_payload_nbytes(request.module)), request.module]
    if isinstance(request, MallocRequest):
        return [pack_u4(FunctionId.MALLOC) + pack_u4(request.size)]
    if isinstance(request, MemcpyRequest):
        head = (
            pack_u4(FunctionId.MEMCPY)
            + pack_u4(request.dst)
            + pack_u4(request.src)
            + pack_u4(request.size)
            + pack_u4(request.kind)
        )
        if MemcpyKind(request.kind) is MemcpyKind.cudaMemcpyHostToDevice:
            data = request.data if request.data is not None else b""
            if _payload_nbytes(data) != request.size:
                raise ProtocolError(
                    f"memcpy payload is {_payload_nbytes(data)} bytes but "
                    f"the size field says {request.size}"
                )
            return [head, data]
        return [head]
    if isinstance(request, MemcpyAsyncRequest):
        head = (
            pack_u4(FunctionId.MEMCPY_ASYNC)
            + pack_u4(request.dst)
            + pack_u4(request.src)
            + pack_u4(request.size)
            + pack_u4(request.kind)
            + pack_u4(request.stream)
        )
        if MemcpyKind(request.kind) is MemcpyKind.cudaMemcpyHostToDevice:
            data = request.data if request.data is not None else b""
            if _payload_nbytes(data) != request.size:
                raise ProtocolError(
                    f"async memcpy payload is {_payload_nbytes(data)} bytes "
                    f"but the size field says {request.size}"
                )
            return [head, data]
        return [head]
    if isinstance(request, MemsetRequest):
        return [
            pack_u4(FunctionId.MEMSET)
            + pack_u4(request.ptr)
            + pack_u4(request.value)
            + pack_u4(request.size)
        ]
    if isinstance(request, LaunchRequest):
        name_region = pack_cstr(request.kernel_name)
        # 44 fixed bytes (Table I): id, texture offset, parameters offset
        # (the name-region length), number of textures, block dim (12),
        # grid dim (8), shared size, stream -- then the kernel name.
        return [
            pack_u4(FunctionId.LAUNCH)
            + pack_u4(request.texture_offset)
            + pack_u4(len(name_region))
            + pack_u4(request.num_textures)
            + pack_u4(request.block.x)
            + pack_u4(request.block.y)
            + pack_u4(request.block.z)
            + pack_u4(request.grid.x)
            + pack_u4(request.grid.y)
            + pack_u4(request.shared_bytes)
            + pack_u4(request.stream)
            + name_region
        ]
    if isinstance(request, FreeRequest):
        return [pack_u4(FunctionId.FREE) + pack_u4(request.ptr)]
    if isinstance(request, SetupArgsRequest):
        blob = pack_args(request.args)
        return [pack_u4(FunctionId.SETUP_ARGS) + pack_u4(len(blob)) + blob]
    if isinstance(request, SyncRequest):
        return [pack_u4(FunctionId.SYNCHRONIZE)]
    if isinstance(request, PropertiesRequest):
        return [pack_u4(FunctionId.GET_PROPERTIES)]
    if isinstance(request, StreamCreateRequest):
        return [pack_u4(FunctionId.STREAM_CREATE)]
    if isinstance(request, StreamSyncRequest):
        return [pack_u4(FunctionId.STREAM_SYNC) + pack_u4(request.stream)]
    if isinstance(request, EventCreateRequest):
        return [pack_u4(FunctionId.EVENT_CREATE)]
    if isinstance(request, EventRecordRequest):
        return [pack_u4(FunctionId.EVENT_RECORD) + pack_u4(request.event)]
    if isinstance(request, EventElapsedRequest):
        return [
            pack_u4(FunctionId.EVENT_ELAPSED)
            + pack_u4(request.start)
            + pack_u4(request.end)
        ]
    if isinstance(request, MemcpyStreamBeginRequest):
        return [
            pack_u4(FunctionId.MEMCPY_STREAM_BEGIN)
            + pack_u4(request.dst)
            + pack_u4(request.src)
            + pack_u4(request.size)
            + pack_u4(request.kind)
            + pack_u4(request.chunk_bytes)
            + pack_u4(request.stream_id)
        ]
    if isinstance(request, MemcpyChunkRequest):
        head = (
            pack_u4(FunctionId.MEMCPY_CHUNK)
            + pack_u4(request.stream_id)
            + pack_u4(request.seq)
            + pack_u4(request.size)
        )
        data = request.data if request.data is not None else b""
        if _payload_nbytes(data) != request.size:
            raise ProtocolError(
                f"memcpy chunk payload is {_payload_nbytes(data)} bytes but "
                f"the size field says {request.size}"
            )
        return [head, data]
    if isinstance(request, MemcpyStreamEndRequest):
        return [
            pack_u4(FunctionId.MEMCPY_STREAM_END)
            + pack_u4(request.stream_id)
            + pack_u4(request.chunks)
        ]
    raise ProtocolError(f"cannot encode request of type {type(request).__name__}")


# -- requests: decode (server side) ----------------------------------------------

def decode_init(reader: MessageReader) -> InitRequest:
    """Read the id-less initialization message (first on a connection)."""
    size = reader.read_u4()
    module = reader.recv_exact(size)
    reader.note_message()
    return InitRequest(module=module)


def decode_request(reader: MessageReader) -> Request:
    """Read one post-initialization request (function id first)."""
    request = _decode_request_body(reader)
    reader.note_message()
    return request


def _decode_request_body(reader: MessageReader) -> Request:
    raw_id = reader.read_u4()
    try:
        fid = FunctionId(raw_id)
    except ValueError:
        raise ProtocolError(f"unknown function id {raw_id}") from None
    if fid is FunctionId.MALLOC:
        return MallocRequest(size=reader.read_u4())
    if fid is FunctionId.MEMCPY:
        dst = reader.read_u4()
        src = reader.read_u4()
        size = reader.read_u4()
        kind = reader.read_u4()
        data: bytes | None = None
        if MemcpyKind(kind) is MemcpyKind.cudaMemcpyHostToDevice:
            data = reader.recv_exact(size)
        return MemcpyRequest(dst=dst, src=src, size=size, kind=kind, data=data)
    if fid is FunctionId.MEMCPY_ASYNC:
        dst = reader.read_u4()
        src = reader.read_u4()
        size = reader.read_u4()
        kind = reader.read_u4()
        stream = reader.read_u4()
        data = None
        if MemcpyKind(kind) is MemcpyKind.cudaMemcpyHostToDevice:
            data = reader.recv_exact(size)
        return MemcpyAsyncRequest(
            dst=dst, src=src, size=size, kind=kind, stream=stream, data=data
        )
    if fid is FunctionId.MEMSET:
        return MemsetRequest(
            ptr=reader.read_u4(), value=reader.read_u4(), size=reader.read_u4()
        )
    if fid is FunctionId.LAUNCH:
        texture_offset = reader.read_u4()
        name_region_len = reader.read_u4()
        num_textures = reader.read_u4()
        block = Dim3(reader.read_u4(), reader.read_u4(), reader.read_u4())
        grid = Dim3(reader.read_u4(), reader.read_u4(), 1)
        shared = reader.read_u4()
        stream = reader.read_u4()
        name = unpack_cstr(reader.recv_exact(name_region_len))
        return LaunchRequest(
            kernel_name=name,
            block=block,
            grid=grid,
            shared_bytes=shared,
            stream=stream,
            texture_offset=texture_offset,
            num_textures=num_textures,
        )
    if fid is FunctionId.FREE:
        return FreeRequest(ptr=reader.read_u4())
    if fid is FunctionId.SETUP_ARGS:
        blob = reader.recv_exact(reader.read_u4())
        return SetupArgsRequest(args=unpack_args(blob))
    if fid is FunctionId.SYNCHRONIZE:
        return SyncRequest()
    if fid is FunctionId.GET_PROPERTIES:
        return PropertiesRequest()
    if fid is FunctionId.STREAM_CREATE:
        return StreamCreateRequest()
    if fid is FunctionId.STREAM_SYNC:
        return StreamSyncRequest(stream=reader.read_u4())
    if fid is FunctionId.EVENT_CREATE:
        return EventCreateRequest()
    if fid is FunctionId.EVENT_RECORD:
        return EventRecordRequest(event=reader.read_u4())
    if fid is FunctionId.EVENT_ELAPSED:
        return EventElapsedRequest(start=reader.read_u4(), end=reader.read_u4())
    if fid is FunctionId.MEMCPY_STREAM_BEGIN:
        return MemcpyStreamBeginRequest(
            dst=reader.read_u4(),
            src=reader.read_u4(),
            size=reader.read_u4(),
            kind=reader.read_u4(),
            chunk_bytes=reader.read_u4(),
            stream_id=reader.read_u4(),
        )
    if fid is FunctionId.MEMCPY_CHUNK:
        stream_id = reader.read_u4()
        seq = reader.read_u4()
        size = reader.read_u4()
        return MemcpyChunkRequest(
            stream_id=stream_id, seq=seq, size=size,
            data=reader.recv_exact(size),
        )
    if fid is FunctionId.MEMCPY_STREAM_END:
        return MemcpyStreamEndRequest(
            stream_id=reader.read_u4(), chunks=reader.read_u4()
        )
    raise ProtocolError(f"unhandled function id {fid!r}")


# -- responses ------------------------------------------------------------------

def encode_response(response: Response) -> bytes:
    """Serialize a response to one bytes object (gathers the vectored
    form, so both paths produce identical wire bytes)."""
    parts = encode_response_vectored(response)
    return parts[0] if len(parts) == 1 and isinstance(parts[0], bytes) else b"".join(parts)


def encode_response_vectored(response: Response) -> list:
    """Serialize a response as a buffer list (error code first, then
    per-type fields).  A D2H memcpy's data rides as its own buffer --
    typically a NumPy view of device memory -- so the server can send
    header + payload with one vectored write and zero staging copies."""
    if type(response) is Response:
        # The bare ack every memset/free/sync sends: skip the per-type
        # chain below (it would test every subclass first).
        return [pack_u4(response.error)]
    if isinstance(response, InitResponse):
        major, minor = response.compute_capability
        return [pack_u4(major) + pack_u4(minor) + pack_u4(response.error)]
    if isinstance(response, MallocResponse):
        return [pack_u4(response.error) + pack_u4(response.ptr)]
    if isinstance(response, MemcpyStreamResponse):
        # Error code, then -- when healthy -- length-prefixed frames the
        # client can hand to the device hop as they land, ending with a
        # 0-length sentinel.  Payloads ride as their own buffers.
        if response.error != 0:
            return [pack_u4(response.error)]
        parts: list = [pack_u4(response.error)]
        for chunk in response.chunks:
            parts.append(pack_u4(_payload_nbytes(chunk)))
            parts.append(chunk)
        parts.append(pack_u4(0))
        return parts
    if isinstance(response, MemcpyResponse):
        if response.error == 0 and response.data is not None:
            return [pack_u4(response.error), response.data]
        return [pack_u4(response.error)]
    if isinstance(response, ValueResponse):
        return [pack_u4(response.error) + pack_u4(response.value)]
    if isinstance(response, PropertiesResponse):
        name = response.name.encode()
        major, minor = response.compute_capability
        return [
            pack_u4(response.error)
            + pack_u4(major)
            + pack_u4(minor)
            + struct.pack("<Q", response.total_global_mem)
            + pack_u4(len(name))
            + name
        ]
    if isinstance(response, ElapsedResponse):
        return [pack_u4(response.error) + _F8.pack(response.elapsed_ms)]
    if isinstance(response, Response):
        return [pack_u4(response.error)]
    raise ProtocolError(f"cannot encode response {type(response).__name__}")


def read_response(reader: MessageReader, request: Request) -> Response:
    """Read the reply matching ``request`` (the client knows the shape of
    the answer from the call it made, as in the real middleware)."""
    response = _read_response_body(reader, request)
    reader.note_message()
    return response


def read_stream_response(
    reader: MessageReader, request: MemcpyStreamBeginRequest
) -> MemcpyResponse:
    """Read the streamed reply to a D2H ``MemcpyStreamBeginRequest``:
    error code, then length-prefixed frames up to a 0-length sentinel,
    assembled into one contiguous buffer of ``request.size`` bytes."""
    error = reader.read_u4()
    if error != 0:
        reader.note_message()
        return MemcpyResponse(error=error)
    out = bytearray(request.size)
    filled = 0
    while True:
        frame_len = reader.read_u4()
        if frame_len == 0:
            break
        if filled + frame_len > request.size:
            raise ProtocolError(
                f"stream response overflows: {filled + frame_len} bytes "
                f"for a {request.size}-byte read"
            )
        out[filled : filled + frame_len] = reader.recv_exact(frame_len)
        filled += frame_len
    if filled != request.size:
        raise ProtocolError(
            f"stream response delivered {filled} of {request.size} bytes"
        )
    reader.note_message()
    return MemcpyResponse(error=0, data=out)


def _read_response_body(reader: MessageReader, request: Request) -> Response:
    if isinstance(request, InitRequest):
        major = reader.read_u4()
        minor = reader.read_u4()
        error = reader.read_u4()
        return InitResponse(error=error, compute_capability=(major, minor))
    if isinstance(request, MallocRequest):
        error = reader.read_u4()
        ptr = reader.read_u4()
        return MallocResponse(error=error, ptr=ptr)
    if isinstance(request, (MemcpyRequest, MemcpyAsyncRequest)):
        error = reader.read_u4()
        if MemcpyKind(request.kind) is not MemcpyKind.cudaMemcpyDeviceToHost:
            # To-device and device-to-device copies answer with the bare
            # error code (Table I: cudaMemcpy to device receives 4 bytes).
            return Response(error=error)
        data: bytes | None = None
        if error == 0:
            data = reader.recv_exact(request.size)
        return MemcpyResponse(error=error, data=data)
    if isinstance(request, (StreamCreateRequest, EventCreateRequest)):
        error = reader.read_u4()
        value = reader.read_u4()
        return ValueResponse(error=error, value=value)
    if isinstance(request, PropertiesRequest):
        error = reader.read_u4()
        major = reader.read_u4()
        minor = reader.read_u4()
        total = struct.unpack("<Q", reader.recv_exact(8))[0]
        name = reader.recv_exact(reader.read_u4()).decode()
        return PropertiesResponse(
            error=error,
            name=name,
            compute_capability=(major, minor),
            total_global_mem=total,
        )
    if isinstance(request, EventElapsedRequest):
        error = reader.read_u4()
        elapsed = _F8.unpack(reader.recv_exact(8))[0]
        return ElapsedResponse(error=error, elapsed_ms=elapsed)
    # Everything else answers with the bare error code.
    return Response(error=reader.read_u4())
