"""Incremental (push-driven) protocol decoding for non-blocking servers.

The blocking server pulls bytes with ``recv_exact``; an event-loop server
cannot block, so it *feeds* whatever the socket had ready into a
:class:`StreamDecoder` and asks for complete messages.  Decoding splits
two ways, both byte-for-byte identical to the blocking path:

* hot fixed-layout requests (memset, malloc, free, the stream/event
  one-liners) decode through a declarative struct table -- one
  ``Struct.unpack_from`` per message instead of a reader call per field.
  The table is property-tested byte-identical to the codec
  (``tests/protocol/test_streamdec.py`` drives arbitrary slicings of the
  same wire bytes through both decoders);
* everything else (initialization, memcpys with payloads, launches,
  chunk frames) reuses the codec's own decode functions verbatim over a
  rewindable buffer, so there is exactly one implementation of the
  variable-length wire format.

A decode attempt that runs out of buffered bytes rewinds to the message
start and reports "incomplete"; malformed traffic raises the codec's own
:class:`~repro.errors.ProtocolError` exactly as the blocking path would.
``pending_bytes`` exposes whether a partially delivered message is
sitting in the buffer -- how the async session distinguishes a clean
close on a message boundary from a peer that died mid-message.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.protocol.codec import decode_init, decode_request
from repro.protocol.constants import FunctionId
from repro.protocol.messages import (
    EventCreateRequest,
    EventElapsedRequest,
    EventRecordRequest,
    FreeRequest,
    MallocRequest,
    MemcpyStreamEndRequest,
    MemsetRequest,
    PropertiesRequest,
    Request,
    StreamCreateRequest,
    StreamSyncRequest,
    SyncRequest,
)

_U4 = struct.Struct("<I")


def _builder(cls):
    """A construct-from-unpacked-tuple function for a frozen request
    dataclass.  Generated rather than calling the class: the frozen
    ``__init__`` routes every field through ``object.__setattr__`` and
    costs ~0.7us -- measurable at event-loop message rates -- while a
    direct ``__dict__`` fill builds an equal instance in ~0.4us."""
    names = tuple(f.name for f in dataclasses.fields(cls))
    ns = {"cls": cls, "new": object.__new__}
    if names:
        targets = ", ".join(f"d[{n!r}]" for n in names)
        code = (
            "def make(vals):\n"
            "    r = new(cls)\n"
            "    d = r.__dict__\n"
            f"    {targets}, = vals\n"
            "    return r\n"
        )
    else:
        code = "def make(vals):\n    return new(cls)\n"
    exec(code, ns)
    return ns["make"]


#: Fixed-layout request bodies: function id -> (body struct, constructor
#: taking the unpacked fields positionally, in wire order).  Variable-
#: length messages (init, H2D memcpys, launches, chunk frames) are
#: absent and fall back to the codec's decode functions.
_FIXED_BODY: dict[int, tuple[struct.Struct, type]] = {
    int(FunctionId.MALLOC): (struct.Struct("<I"), MallocRequest),
    int(FunctionId.FREE): (struct.Struct("<I"), FreeRequest),
    int(FunctionId.MEMSET): (struct.Struct("<III"), MemsetRequest),
    int(FunctionId.SYNCHRONIZE): (struct.Struct("<"), SyncRequest),
    int(FunctionId.GET_PROPERTIES): (struct.Struct("<"), PropertiesRequest),
    int(FunctionId.STREAM_CREATE): (struct.Struct("<"), StreamCreateRequest),
    int(FunctionId.STREAM_SYNC): (struct.Struct("<I"), StreamSyncRequest),
    int(FunctionId.EVENT_CREATE): (struct.Struct("<"), EventCreateRequest),
    int(FunctionId.EVENT_RECORD): (struct.Struct("<I"), EventRecordRequest),
    int(FunctionId.EVENT_ELAPSED): (struct.Struct("<II"), EventElapsedRequest),
    int(FunctionId.MEMCPY_STREAM_END): (
        struct.Struct("<II"), MemcpyStreamEndRequest,
    ),
}

#: The hot-path table ``next_message`` actually probes: function id ->
#: (body struct, generated tuple-constructor).
_FIXED_MAKE: dict[int, tuple[struct.Struct, object]] = {
    fid: (body, _builder(cls)) for fid, (body, cls) in _FIXED_BODY.items()
}

#: Compact the consumed prefix away once it crosses this size (keeping
#: amortized O(1) feeds without shifting the buffer on every message).
_COMPACT_BYTES = 64 << 10


class _NeedMore(Exception):
    """Internal: the buffered bytes end inside the message being decoded."""


class StreamDecoder:
    """Reassembles codec messages from arbitrarily sliced byte arrivals.

    Usage: ``feed(data)`` whatever arrived, then call :meth:`next_message`
    until it returns ``None``.  Each complete message comes back as
    ``(request, consumed_bytes)`` so the caller can keep per-message wire
    accounting truthful.  The first message on a connection is the
    id-less initialization (``expect_init=True``), as in Section III.
    """

    def __init__(self, expect_init: bool = True) -> None:
        self._buf = bytearray()
        self._pos = 0
        self._expect_init = expect_init
        #: Complete messages decoded so far.
        self.messages_decoded = 0

    def feed(self, data) -> None:
        """Append bytes that arrived from the peer."""
        self._buf += data

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet consumed by a complete message.  Nonzero
        at EOF means the peer died mid-message."""
        return len(self._buf) - self._pos

    def next_message(self) -> tuple[Request, int] | None:
        """Decode one complete message, or return ``None`` if the buffer
        ends mid-message.  Raises :class:`~repro.errors.ProtocolError` on
        malformed traffic, exactly like the blocking decode path."""
        buf = self._buf
        pos = self._pos
        avail = len(buf) - pos
        if avail == 0:
            return None
        if not self._expect_init and avail >= 4:
            # Hot path: a complete fixed-layout request decodes with one
            # unpack_from, no reader indirection and no byte copies.
            fixed = _FIXED_MAKE.get(_U4.unpack_from(buf, pos)[0])
            if fixed is not None:
                body, make = fixed
                consumed = 4 + body.size
                if avail < consumed:
                    return None
                request = make(body.unpack_from(buf, pos + 4))
                self._pos = pos + consumed
                self.messages_decoded += 1
                self._maybe_compact()
                return request, consumed
        mark = pos
        try:
            request = (
                decode_init(self) if self._expect_init else decode_request(self)
            )
        except _NeedMore:
            self._pos = mark
            return None
        consumed = self._pos - mark
        self._expect_init = False
        self.messages_decoded += 1
        self._maybe_compact()
        return request, consumed

    def _maybe_compact(self) -> None:
        if self._pos >= _COMPACT_BYTES and self._pos * 2 >= len(self._buf):
            del self._buf[: self._pos]
            self._pos = 0

    # -- the MessageReader protocol the codec decode functions drive --------

    def recv_exact(self, nbytes: int) -> bytes:
        end = self._pos + nbytes
        if end > len(self._buf):
            raise _NeedMore()
        # An owned bytes copy: the buffer is compacted between messages,
        # so views into it must not escape.
        out = bytes(self._buf[self._pos : end])
        self._pos = end
        return out

    def read_u4(self) -> int:
        return _U4.unpack(self.recv_exact(4))[0]

    def note_message(self) -> None:
        """Message accounting is the caller's job (it knows the transport
        the bytes came from); the codec's boundary note is a no-op here."""
