"""Protocol constants: the 32-bit function identifiers.

The initialization exchange is *not* identified -- it is the first message
after connect, which is why Table I's Initialization row has no
"Function id." field.  Every later request starts with one of these.
"""

from __future__ import annotations

import enum

PROTOCOL_VERSION = 1


class FunctionId(enum.IntEnum):
    """Request discriminator (the "first 32 bits" of Section III)."""

    # The four remoted calls broken down in Table I.
    MALLOC = 1
    MEMCPY = 2
    LAUNCH = 3
    FREE = 4
    # Support calls a functional middleware additionally needs (the paper's
    # Table I lists only "the most commonly used operations").
    SETUP_ARGS = 5
    SYNCHRONIZE = 6
    GET_PROPERTIES = 7
    STREAM_CREATE = 8
    STREAM_SYNC = 9
    EVENT_CREATE = 10
    EVENT_RECORD = 11
    EVENT_ELAPSED = 12
    # Asynchronous transfers: the paper's declared future work.
    MEMCPY_ASYNC = 13
    MEMSET = 14
    # Chunked streaming transfers: split one large copy into frames so the
    # network hop of chunk i+1 overlaps the device hop of chunk i (the
    # Section IV overlap model made real on the wire).
    MEMCPY_STREAM_BEGIN = 15
    MEMCPY_CHUNK = 16
    MEMCPY_STREAM_END = 17
