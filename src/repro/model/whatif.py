"""What-if analysis: apply the estimation model to a network you describe.

The paper's contribution is "a tool to determine the behavior of our
proposal over different interconnects with no need of the physical
equipment".  The seven built-in networks cover its evaluation; this
module opens the same pipeline to *any* interconnect a user can sketch
with two or three numbers -- effective bandwidth, base latency, and
optionally a large-payload intercept -- and answers the procurement
question directly: how would my workload run over rCUDA on that fabric?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.model.calibration import Calibration, default_calibration
from repro.net.latency import (
    AnchoredSmallMessageModel,
    BandwidthLatencyModel,
    LinearLatencyModel,
)
from repro.net.spec import NetworkSpec
from repro.net.tcpmodel import WindowDistortionModel
from repro.testbed.simulated import SimulatedTestbed
from repro.units import MIB
from repro.workloads.base import CaseStudy


def custom_network(
    name: str,
    bandwidth_mibps: float,
    base_latency_us: float = 5.0,
    intercept_ms: float = 0.0,
) -> NetworkSpec:
    """Describe an interconnect from first principles.

    ``bandwidth_mibps`` is the effective one-way bandwidth (the paper's
    ping-pong figure); ``base_latency_us`` the small-message latency;
    ``intercept_ms`` an optional fixed cost on large transfers (40GI's
    g(n) carries +2.8 ms, for instance).
    """
    if bandwidth_mibps <= 0:
        raise ConfigurationError("bandwidth must be positive")
    if base_latency_us <= 0:
        raise ConfigurationError("base latency must be positive")
    if intercept_ms < 0:
        raise ConfigurationError("intercept must be non-negative")
    per_byte_us = 1e6 / (bandwidth_mibps * MIB)
    anchors = {
        4: base_latency_us,
        64: base_latency_us + 64 * per_byte_us,
        21490: base_latency_us + 21490 * per_byte_us,
    }
    return NetworkSpec(
        name=name,
        description=f"user-described network ({bandwidth_mibps:.0f} MiB/s)",
        effective_bw_mibps=bandwidth_mibps,
        estimate_model=BandwidthLatencyModel(bandwidth_mibps),
        regression_model=LinearLatencyModel(
            1000.0 / bandwidth_mibps, intercept_ms
        ),
        small_message_model=AnchoredSmallMessageModel(anchors),
        distortion=WindowDistortionModel.none(),
        measured=False,
    )


@dataclass(frozen=True)
class WhatIfReport:
    """The model's answer for one (case, size, network) question."""

    network: str
    size: int
    case_name: str
    predicted_seconds: float
    local_gpu_seconds: float
    local_cpu_seconds: float
    per_copy_transfer_seconds: float

    @property
    def slowdown_vs_local_gpu(self) -> float:
        return self.predicted_seconds / self.local_gpu_seconds - 1.0

    @property
    def speedup_vs_cpu(self) -> float:
        return self.local_cpu_seconds / self.predicted_seconds

    @property
    def worthwhile(self) -> bool:
        """The paper's bottom-line question: beat the CPU?"""
        return self.predicted_seconds < self.local_cpu_seconds


def what_if(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    calibration: Calibration | None = None,
) -> WhatIfReport:
    """Predict ``case`` at ``size`` remoted over ``spec``.

    Uses the same composition as the simulated testbed (host + device +
    full-session network replay on the described network), so the answer
    for a built-in network equals the Table VI machinery's.
    """
    cal = calibration if calibration is not None else default_calibration()
    testbed = SimulatedTestbed(cal)
    run = testbed.measure_remote(case, size, spec)
    payload = case.payload_bytes(size)
    return WhatIfReport(
        network=spec.name,
        size=size,
        case_name=case.name,
        predicted_seconds=run.total_seconds,
        local_gpu_seconds=cal.local_gpu_seconds(case, size),
        local_cpu_seconds=cal.local_cpu_seconds(case, size),
        per_copy_transfer_seconds=spec.estimated_transfer_seconds(payload),
    )


def minimum_viable_bandwidth(
    case: CaseStudy,
    size: int,
    max_slowdown_vs_gpu: float = 0.25,
    calibration: Calibration | None = None,
    base_latency_us: float = 5.0,
) -> float:
    """Smallest effective bandwidth (MiB/s) keeping the remote execution
    within ``max_slowdown_vs_gpu`` of a local GPU -- the procurement
    threshold, found by bisection on the what-if pipeline."""
    if max_slowdown_vs_gpu <= 0:
        raise ConfigurationError("slowdown budget must be positive")
    cal = calibration if calibration is not None else default_calibration()

    def slowdown(bw: float) -> float:
        spec = custom_network("probe", bw, base_latency_us)
        return what_if(case, size, spec, cal).slowdown_vs_local_gpu

    lo, hi = 1.0, 1e6
    if slowdown(hi) > max_slowdown_vs_gpu:
        raise ConfigurationError(
            "no bandwidth satisfies the budget: the remoting overhead "
            "itself (host + PCIe) already exceeds it"
        )
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if slowdown(mid) > max_slowdown_vs_gpu:
            lo = mid
        else:
            hi = mid
    return hi
