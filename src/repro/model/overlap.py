"""Asynchronous-transfer estimation: the paper's future work, modeled.

Section II: "only applications making use of synchronous data transfers
are covered by the developed estimation model, leaving asynchronous
transfers for future work."  This module is that extension: with
``cudaMemcpyAsync`` (implemented end-to-end in this package) a remoting
middleware can *pipeline* a memory copy -- stream the payload in chunks so
the network hop of chunk i+1 overlaps the PCIe hop of chunk i, and
ultimately the kernel processing of chunk i-1.

The classic pipeline bound: for ``c`` chunks through stages with per-chunk
times ``s_1..s_m``,

    T = sum(s_j) + (c - 1) * max(s_j)

so as c grows the copy costs ``max(network, PCIe)`` instead of
``network + PCIe``, and a fully chunked execution approaches
``max(net_in, pcie_in, kernel, pcie_out, net_out)`` plus startup.  The
functions below bound the benefit for the paper's case studies -- an
upper bound, since they ignore chunking overheads beyond the per-message
protocol headers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.calibration import Calibration, default_calibration
from repro.model.transfer import small_message_overhead_seconds
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


def pipelined_seconds(
    stage_totals: list[float], chunks: int
) -> float:
    """Pipeline completion time for work split into equal chunks.

    ``stage_totals`` are the *unchunked* per-stage totals; each chunk
    costs ``total / chunks`` in its stage.
    """
    if chunks < 1:
        raise ModelError(f"chunk count must be >= 1, got {chunks}")
    if not stage_totals or any(t < 0 for t in stage_totals):
        raise ModelError("stage totals must be non-negative and non-empty")
    per_chunk = [t / chunks for t in stage_totals]
    return sum(per_chunk) + (chunks - 1) * max(per_chunk)


@dataclass(frozen=True)
class AsyncEstimate:
    """Synchronous vs pipelined execution estimate for one problem size."""

    size: int
    sync_seconds: float
    async_seconds: float
    chunks: int

    @property
    def speedup(self) -> float:
        return self.sync_seconds / self.async_seconds

    @property
    def overhead_recovered_fraction(self) -> float:
        """Share of the synchronous remoting overhead that pipelining
        hides (relative to the compute-only floor)."""
        return 1.0 - (self.async_seconds / self.sync_seconds)


def estimate_async_execution(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    chunks: int = 16,
    calibration: Calibration | None = None,
) -> AsyncEstimate:
    """Bound the benefit of pipelined transfers for one execution.

    Synchronous baseline: host + small messages + per-copy
    (network then PCIe) serialized + kernel.  Pipelined: the input copies
    stream through {network, PCIe} in ``chunks`` pieces, the output copy
    streams back the same way; the kernel still runs unsplit between them
    (kernel-chunking would need algorithm knowledge the middleware does
    not have).
    """
    cal = calibration if calibration is not None else default_calibration()
    payload = case.payload_bytes(size)
    net_copy = spec.estimated_transfer_seconds(payload)
    pcie_copy = cal.pcie.transfer_seconds(payload)
    kernel = cal.kernel_seconds(case, size)
    host = cal.remote_host_seconds(case, size)
    small = small_message_overhead_seconds(case, size, spec)

    inputs = case.num_input_copies
    outputs = case.copies_per_run - inputs

    sync = (
        host + small
        + case.copies_per_run * (net_copy + pcie_copy)
        + kernel
    )
    async_total = (
        host + small
        + inputs * pipelined_seconds([net_copy, pcie_copy], chunks)
        + kernel
        + outputs * pipelined_seconds([pcie_copy, net_copy], chunks)
    )
    return AsyncEstimate(
        size=size,
        sync_seconds=sync,
        async_seconds=async_total,
        chunks=chunks,
    )


def async_speedup_table(
    case: CaseStudy,
    spec: NetworkSpec,
    chunks: int = 16,
    calibration: Calibration | None = None,
) -> list[AsyncEstimate]:
    """The pipelining bound over the case's paper sizes."""
    return [
        estimate_async_execution(case, size, spec, chunks, calibration)
        for size in case.paper_sizes
    ]
