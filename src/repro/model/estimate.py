"""Target-network estimation (Sections V-VI).

The inverse of the fixed-time extraction: once the network-independent
residue is known, the execution time on any interconnect is the residue
plus that network's per-copy transfer times.  This single line *is* the
paper's predictive tool -- "providing a tool to determine the behavior of
our proposal over different interconnects with no need of the physical
equipment".

The per-call and per-phase forms below refine the same model down to the
granularity the conformance monitor (:mod:`repro.obs.conformance`)
compares against live spans: one prediction per wire exchange, built
from the active :class:`~repro.net.spec.NetworkSpec` and
:class:`~repro.simcuda.timing.DeviceTimingModel`.  Like the paper's
model they assume *no overlap* -- every exchange pays its full network
and device cost sequentially -- which is exactly what makes pipelined
runs drift visibly below the prediction.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.net.spec import NetworkSpec
from repro.simcuda.timing import DeviceTimingModel
from repro.workloads.base import CaseStudy


def estimate_execution_seconds(
    fixed_seconds: float,
    copies_per_run: int,
    transfer_per_copy_seconds: float,
) -> float:
    """``estimate = fixed + copies * transfer_on_target``."""
    if copies_per_run <= 0:
        raise ModelError(
            f"copies_per_run must be positive, got {copies_per_run}"
        )
    if transfer_per_copy_seconds < 0:
        raise ModelError("transfer time must be non-negative")
    return fixed_seconds + copies_per_run * transfer_per_copy_seconds


def estimate_for_case(
    case: CaseStudy,
    size: int,
    fixed_seconds: float,
    target: NetworkSpec,
) -> float:
    """Predicted execution time of ``case`` at ``size`` on ``target``."""
    transfer = target.estimated_transfer_seconds(case.payload_bytes(size))
    return estimate_execution_seconds(
        fixed_seconds, case.copies_per_run, transfer
    )


# -- per-call / per-phase predictions (conformance granularity) ----------------


def kernel_seconds_for(
    case: CaseStudy, size: int, timing: DeviceTimingModel
) -> float:
    """Device execution time of ``case``'s kernel under ``timing``."""
    flops = case.flops(size)
    if case.name == "MM":
        return timing.gemm_seconds(flops)
    if case.name == "FFT":
        return timing.fft_seconds(flops)
    return timing.membound_seconds(case.payload_bytes(size))


def predict_call_seconds(
    *,
    network: NetworkSpec,
    timing: DeviceTimingModel,
    bytes_sent: int = 0,
    bytes_received: int = 0,
    pcie_payload_bytes: int = 0,
    kernel_seconds: float = 0.0,
    transfer: str = "behaviour",
) -> float:
    """Model time of one request/response exchange.

    Network cost covers both directions; ``transfer="behaviour"`` uses
    the link's behaviour model (small-message anchors + large-payload
    law, what a simulated link really charges), ``"estimate"`` the
    paper's bandwidth-only arithmetic.  Device cost is the PCIe staging
    of ``pcie_payload_bytes`` plus ``kernel_seconds`` for calls that
    drain the kernel (the synchronous D2H copy, explicit synchronizes).
    """
    if transfer == "behaviour":
        net = network.actual_one_way_seconds(bytes_sent)
        net += network.actual_one_way_seconds(bytes_received)
    elif transfer == "estimate":
        net = network.estimated_transfer_seconds(bytes_sent)
        net += network.estimated_transfer_seconds(bytes_received)
    else:
        raise ModelError(
            f"transfer must be 'behaviour' or 'estimate', got {transfer!r}"
        )
    device = kernel_seconds
    if pcie_payload_bytes > 0:
        device += timing.pcie.transfer_seconds(pcie_payload_bytes)
    return net + device


def predict_session_phases(
    case: CaseStudy,
    size: int,
    network: NetworkSpec,
    timing: DeviceTimingModel | None = None,
    host_seconds: float = 0.0,
    kernel_seconds: float | None = None,
    transfer: str = "behaviour",
) -> dict[str, float]:
    """Predicted seconds per Section III phase for one full execution.

    The no-overlap model at phase granularity: every wire exchange of
    :func:`repro.model.transfer.session_messages` is charged its
    :func:`predict_call_seconds`, the kernel drains inside the ``d2h``
    phase (as the synchronous output copy does), and ``host_seconds``
    (data generation + middleware management, from a calibration) lands
    in ``host``.  Summed, this reproduces the simulated testbed's
    ``trace.by_phase()``; compared against measured spans it is the
    conformance baseline.
    """
    from repro.model.transfer import session_messages

    timing = timing if timing is not None else DeviceTimingModel()
    if kernel_seconds is None:
        kernel_seconds = kernel_seconds_for(case, size, timing)
    phases: dict[str, float] = {}
    if host_seconds > 0.0:
        phases["host"] = host_seconds
    payload = case.payload_bytes(size)
    for msg in session_messages(case, size):
        pcie_payload = 0
        drain = 0.0
        if msg.operation == "cudaMemcpy (to device)":
            pcie_payload = payload
        elif msg.operation == "cudaMemcpy (to host)":
            pcie_payload = payload
            drain = kernel_seconds
        seconds = predict_call_seconds(
            network=network,
            timing=timing,
            bytes_sent=msg.send_bytes,
            bytes_received=msg.receive_bytes,
            pcie_payload_bytes=pcie_payload,
            kernel_seconds=drain,
            transfer=transfer,
        )
        phases[msg.phase] = phases.get(msg.phase, 0.0) + seconds
    return phases
