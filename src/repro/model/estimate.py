"""Target-network estimation (Sections V-VI).

The inverse of the fixed-time extraction: once the network-independent
residue is known, the execution time on any interconnect is the residue
plus that network's per-copy transfer times.  This single line *is* the
paper's predictive tool -- "providing a tool to determine the behavior of
our proposal over different interconnects with no need of the physical
equipment".
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


def estimate_execution_seconds(
    fixed_seconds: float,
    copies_per_run: int,
    transfer_per_copy_seconds: float,
) -> float:
    """``estimate = fixed + copies * transfer_on_target``."""
    if copies_per_run <= 0:
        raise ModelError(
            f"copies_per_run must be positive, got {copies_per_run}"
        )
    if transfer_per_copy_seconds < 0:
        raise ModelError("transfer time must be non-negative")
    return fixed_seconds + copies_per_run * transfer_per_copy_seconds


def estimate_for_case(
    case: CaseStudy,
    size: int,
    fixed_seconds: float,
    target: NetworkSpec,
) -> float:
    """Predicted execution time of ``case`` at ``size`` on ``target``."""
    transfer = target.estimated_transfer_seconds(case.payload_bytes(size))
    return estimate_execution_seconds(
        fixed_seconds, case.copies_per_run, transfer
    )
