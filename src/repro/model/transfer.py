"""Transfer-time arithmetic: Tables II, III and V.

Three views of "what does the network cost", all derived from the
protocol codec's real message sizes plus a network spec:

* :func:`memcpy_transfer_seconds` -- one memory copy's payload over the
  effective bandwidth.  This is the paper's per-copy estimate (Tables III
  and V) and the only term its model keeps ("we will neglect times
  involving small data payloads and will approximate the overhead
  focusing on memory transfer operations").
* :func:`table2_symbolic` -- the per-operation symbolic costs of
  Table II, reproducing the paper's raw-product coefficient convention
  (see :mod:`repro.paperdata.table2` for the algebra).
* :func:`session_messages` / :func:`replay_network_seconds` -- every
  message of a full seven-phase execution with its actual wire size, and
  the total one-way time a given network's *behaviour* model assigns to
  them.  This is what the simulated testbed charges, small messages,
  module shipping, distortion and all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.spec import NetworkSpec
from repro.protocol.accounting import (
    free_cost,
    init_cost,
    launch_cost,
    malloc_cost,
    memcpy_d2h_cost,
    memcpy_h2d_cost,
    setup_args_cost,
)
from repro.workloads.base import CaseStudy


def memcpy_transfer_seconds(spec: NetworkSpec, payload_bytes: float) -> float:
    """Per-copy transfer estimate: payload / effective bandwidth."""
    return spec.estimated_transfer_seconds(payload_bytes)


# -- Table II ---------------------------------------------------------------------

@dataclass(frozen=True)
class SymbolicEntry:
    """``coeff * u + const_us`` microseconds, u = m**2 (MM) or n (FFT).

    ``coeff`` follows the paper's raw-product convention: regression slope
    (ms/MiB) times bytes-per-unit, with no unit conversion (8.9 * 4 = 35.6
    for MM on GigaE).  ``const_us`` is a real microsecond figure from the
    measured small-message curve (or slope * header_bytes + intercept for
    the memcpy rows, again the paper's convention).
    """

    coeff: float
    const_us: float


@dataclass(frozen=True)
class SymbolicRow:
    """One operation of Table II."""

    operation: str
    multiplicity: int
    send_bytes_fixed: int
    send_bytes_per_unit: float
    receive_bytes_fixed: int
    receive_bytes_per_unit: float
    send: SymbolicEntry
    receive: SymbolicEntry


def _anchor_us(spec: NetworkSpec, nbytes: int) -> float:
    return spec.small_message_us(nbytes)


def table2_symbolic(case: CaseStudy, spec: NetworkSpec) -> list[SymbolicRow]:
    """Regenerate the Table II block for one case study on one network.

    All byte counts come from the protocol accounting (i.e. from encoding
    real messages); only the latency numbers come from the network spec.
    """
    slope = spec.regression_model.slope_ms_per_mib
    intercept = spec.regression_model.intercept_ms
    bytes_per_unit = (
        4.0 if case.name == "MM" else float(case.payload_bytes(1))
    )
    module_bytes = case.module().size

    init = init_cost()
    malloc = malloc_cost()
    h2d = memcpy_h2d_cost()
    d2h = memcpy_d2h_cost()
    launch = launch_cost()
    free = free_cost()
    name_region = len(case.kernel_name) + 1

    rows = [
        SymbolicRow(
            "Initialization", 1,
            init.send_bytes(module_bytes), 0.0, init.receive_fixed, 0.0,
            SymbolicEntry(0.0, _anchor_us(spec, init.send_bytes(module_bytes))),
            SymbolicEntry(0.0, _anchor_us(spec, init.receive_fixed)),
        ),
        SymbolicRow(
            "cudaMalloc", case.num_buffers,
            malloc.send_fixed, 0.0, malloc.receive_fixed, 0.0,
            SymbolicEntry(0.0, _anchor_us(spec, malloc.send_fixed)),
            SymbolicEntry(0.0, _anchor_us(spec, malloc.receive_fixed)),
        ),
        SymbolicRow(
            "cudaMemcpy (to device)", case.num_input_copies,
            h2d.send_fixed, bytes_per_unit, h2d.receive_fixed, 0.0,
            # Paper convention: f/g applied to the raw byte expression.
            SymbolicEntry(
                slope * bytes_per_unit, slope * h2d.send_fixed + intercept
            ),
            SymbolicEntry(0.0, _anchor_us(spec, h2d.receive_fixed)),
        ),
        SymbolicRow(
            "cudaLaunch", 1,
            launch.send_bytes(name_region), 0.0, launch.receive_fixed, 0.0,
            SymbolicEntry(0.0, _anchor_us(spec, launch.send_bytes(name_region))),
            SymbolicEntry(0.0, _anchor_us(spec, launch.receive_fixed)),
        ),
        SymbolicRow(
            "cudaMemcpy (to host)", 1,
            d2h.send_fixed, 0.0, d2h.receive_fixed, bytes_per_unit,
            SymbolicEntry(0.0, _anchor_us(spec, d2h.send_fixed)),
            SymbolicEntry(
                slope * bytes_per_unit, slope * d2h.receive_fixed + intercept
            ),
        ),
        SymbolicRow(
            "cudaFree", case.num_buffers,
            free.send_fixed, 0.0, free.receive_fixed, 0.0,
            SymbolicEntry(0.0, _anchor_us(spec, free.send_fixed)),
            SymbolicEntry(0.0, _anchor_us(spec, free.receive_fixed)),
        ),
    ]
    return rows


def table2_totals(rows: list[SymbolicRow]) -> dict[str, SymbolicEntry]:
    """The Total row: per-call entries scaled by their multiplicities."""
    send_coeff = sum(r.send.coeff * r.multiplicity for r in rows)
    send_const = sum(r.send.const_us * r.multiplicity for r in rows)
    recv_coeff = sum(r.receive.coeff * r.multiplicity for r in rows)
    recv_const = sum(r.receive.const_us * r.multiplicity for r in rows)
    return {
        "send": SymbolicEntry(send_coeff, send_const),
        "receive": SymbolicEntry(recv_coeff, recv_const),
    }


# -- full-session replay (what the simulated testbed charges) ----------------------

@dataclass(frozen=True)
class WireMessage:
    """One request/response exchange of a seven-phase execution."""

    phase: str
    operation: str
    send_bytes: int
    receive_bytes: int


def session_messages(case: CaseStudy, size: int) -> list[WireMessage]:
    """Every wire exchange of one full execution, with exact sizes.

    Includes what Table I omits: the batched argument message before the
    launch.  The argument tuple is built with representative pointers so
    its encoded size is exactly what a functional run sends.
    """
    case.validate_size(size)
    payload = case.payload_bytes(size)
    module_bytes = case.module().size
    init = init_cost()
    malloc = malloc_cost()
    h2d = memcpy_h2d_cost()
    d2h = memcpy_d2h_cost()
    launch = launch_cost()
    free = free_cost()
    args = case.kernel_args(size, list(range(0x1000, 0x1000 + case.num_buffers)))
    setup = setup_args_cost(args)
    name_region = len(case.kernel_name) + 1

    messages: list[WireMessage] = [
        WireMessage(
            "init", "Initialization",
            init.send_bytes(module_bytes), init.receive_fixed,
        )
    ]
    for _ in range(case.num_buffers):
        messages.append(
            WireMessage("malloc", "cudaMalloc", malloc.send_fixed, malloc.receive_fixed)
        )
    for _ in range(case.num_input_copies):
        messages.append(
            WireMessage(
                "h2d", "cudaMemcpy (to device)",
                h2d.send_bytes(payload), h2d.receive_fixed,
            )
        )
    messages.append(
        WireMessage("launch", "cudaSetupArgument", setup.send_fixed, setup.receive_fixed)
    )
    messages.append(
        WireMessage(
            "launch", "cudaLaunch", launch.send_bytes(name_region), launch.receive_fixed
        )
    )
    messages.append(
        WireMessage(
            "d2h", "cudaMemcpy (to host)",
            d2h.send_fixed, d2h.receive_bytes(payload),
        )
    )
    for _ in range(case.num_buffers):
        messages.append(
            WireMessage("free", "cudaFree", free.send_fixed, free.receive_fixed)
        )
    return messages


def replay_network_seconds(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    include_distortion: bool = True,
) -> float:
    """Total one-way network time of a full execution on ``spec``'s
    behaviour model (both directions of every message)."""
    total = 0.0
    for msg in session_messages(case, size):
        total += spec.actual_one_way_seconds(
            msg.send_bytes, include_distortion=include_distortion
        )
        total += spec.actual_one_way_seconds(
            msg.receive_bytes, include_distortion=include_distortion
        )
    return total


def small_message_overhead_seconds(case: CaseStudy, size: int, spec: NetworkSpec) -> float:
    """Network time of everything *except* the bulk data payloads: the
    term the paper's model deliberately neglects, quantified."""
    payload = case.payload_bytes(size)
    bulk = case.copies_per_run * spec.actual_one_way_seconds(payload)
    return replay_network_seconds(case, size, spec) - bulk


def symbolic_entry_us(entry: SymbolicEntry, units: float) -> float:
    """Evaluate a Table II entry at ``units`` (m**2 or n) -- in the
    paper's raw convention the coefficient term comes out in
    *milliseconds* despite the us column label; this helper returns
    honest microseconds."""
    return entry.coeff * units * 1e3 + entry.const_us


__all__ = [
    "SymbolicEntry",
    "SymbolicRow",
    "WireMessage",
    "memcpy_transfer_seconds",
    "replay_network_seconds",
    "session_messages",
    "small_message_overhead_seconds",
    "symbolic_entry_us",
    "table2_symbolic",
    "table2_totals",
]
