"""Transfer amortization over GPU-resident iterations.

Section VI's FFT discussion ends on a condition: the GPU loses "if the
data is not previously available on the GPU memory (i.e., if the FFT is
not part of a more complex algorithm)".  This module quantifies that
condition: an application that keeps its working set on the (remote) GPU
and runs ``r`` kernel iterations pays the transfers *once*, so

    T_remote(r) = overhead + copies * T_net(payload) + r * T_kernel
    T_cpu(r)    = r * T_cpu_once

and there is a break-even iteration count beyond which even the FFT --
the paper's anti-example -- becomes worth remoting on a given network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.calibration import Calibration, default_calibration
from repro.model.transfer import small_message_overhead_seconds
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


@dataclass(frozen=True)
class AmortizationProfile:
    """Cost structure of an r-iteration GPU-resident workload."""

    case_name: str
    size: int
    network: str
    #: One-time costs on the remote path (setup + transfers in and out).
    remote_fixed_seconds: float
    #: Per-iteration cost on the remote GPU (kernel only; data resides).
    remote_per_iteration_seconds: float
    #: Per-iteration cost on the local CPU.
    cpu_per_iteration_seconds: float

    def remote_seconds(self, iterations: int) -> float:
        if iterations < 1:
            raise ModelError(f"iterations must be >= 1, got {iterations}")
        return (
            self.remote_fixed_seconds
            + iterations * self.remote_per_iteration_seconds
        )

    def cpu_seconds(self, iterations: int) -> float:
        if iterations < 1:
            raise ModelError(f"iterations must be >= 1, got {iterations}")
        return iterations * self.cpu_per_iteration_seconds

    def break_even_iterations(self) -> int | None:
        """Smallest r with remote(r) < cpu(r); None if the GPU never
        catches up (kernel slower than the CPU per iteration)."""
        gain = (
            self.cpu_per_iteration_seconds - self.remote_per_iteration_seconds
        )
        if gain <= 0:
            return None
        import math

        r = self.remote_fixed_seconds / gain
        candidate = max(1, math.floor(r) + 1)
        # Guard against exact-boundary float artifacts.
        while self.remote_seconds(candidate) >= self.cpu_seconds(candidate):
            candidate += 1
        return candidate


def amortization_profile(
    case: CaseStudy,
    size: int,
    spec: NetworkSpec,
    calibration: Calibration | None = None,
) -> AmortizationProfile:
    """Build the r-iteration cost structure for one case/size/network.

    Per-iteration CPU cost uses the calibrated CPU curve (MKL/FFTW); the
    remote fixed part charges the session's full network replay (module,
    control messages, one payload in, one out) plus PCIe, mirroring the
    seven-phase recipe with phases 3/5 executed once.
    """
    cal = calibration if calibration is not None else default_calibration()
    payload = case.payload_bytes(size)
    net = case.copies_per_run * spec.estimated_transfer_seconds(payload)
    net += small_message_overhead_seconds(case, size, spec)
    pcie = cal.pcie_seconds(case, size)
    host = cal.remote_host_seconds(case, size)
    return AmortizationProfile(
        case_name=case.name,
        size=size,
        network=spec.name,
        remote_fixed_seconds=host + net + pcie,
        remote_per_iteration_seconds=cal.kernel_seconds(case, size),
        cpu_per_iteration_seconds=cal.local_cpu_seconds(case, size),
    )


def break_even_table(
    case: CaseStudy,
    specs: list[NetworkSpec],
    size: int,
    calibration: Calibration | None = None,
) -> dict[str, int | None]:
    """Break-even iteration count per network for one problem size."""
    cal = calibration if calibration is not None else default_calibration()
    return {
        spec.name: amortization_profile(
            case, size, spec, cal
        ).break_even_iterations()
        for spec in specs
    }
