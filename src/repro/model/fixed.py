"""Fixed-time extraction (Section V).

"We subtract the total estimated transfer times ... from the real
execution times ... Thus, we obtain a fixed time" -- the
network-independent residue: CPU and GPU computation, middleware
management, random data generation, rCUDA initialization and PCIe
transfers.  The core assumption of the whole model is that this residue
carries over between networks.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


def extract_fixed_seconds(
    measured_seconds: float,
    copies_per_run: int,
    transfer_per_copy_seconds: float,
) -> float:
    """``fixed = measured - copies * transfer``.

    ``copies_per_run`` is 3 for the matrix product (two inputs + one
    output) and 2 for the FFT (one each way), as Section V prescribes.
    """
    if copies_per_run <= 0:
        raise ModelError(
            f"copies_per_run must be positive, got {copies_per_run}"
        )
    if measured_seconds < 0 or transfer_per_copy_seconds < 0:
        raise ModelError("times must be non-negative")
    return measured_seconds - copies_per_run * transfer_per_copy_seconds


def fixed_for_case(
    case: CaseStudy,
    size: int,
    measured_seconds: float,
    spec: NetworkSpec,
) -> float:
    """Fixed time of one measured execution, using the paper's per-copy
    estimate (payload over the network's effective bandwidth)."""
    transfer = spec.estimated_transfer_seconds(case.payload_bytes(size))
    return extract_fixed_seconds(measured_seconds, case.copies_per_run, transfer)
