"""The paper's performance estimation model (Sections V-VI).

Pipeline, exactly as published:

1. characterize each network (ping-pong -> small-message anchors +
   large-payload regression + effective bandwidth) -- :mod:`repro.net`;
2. cost each remote API call symbolically (Table II) and each memory copy
   numerically (Tables III/V) -- :mod:`repro.model.transfer`;
3. subtract the per-copy transfer times from measured executions to get a
   network-independent *fixed time* -- :mod:`repro.model.fixed`;
4. add the target network's transfer times back to predict execution
   there -- :mod:`repro.model.estimate`;
5. cross-validate between the two measured networks (Table IV) --
   :mod:`repro.model.crossval`;
6. project onto the five HPC interconnects (Table VI) --
   :mod:`repro.model.hpc`.

:mod:`repro.model.calibration` fits the component cost models (CPU, local
GPU, remote host overhead, kernel rates) against the published measured
columns, so the simulated testbed regenerates rather than copies them.
"""

from repro.model.amortization import (
    AmortizationProfile,
    amortization_profile,
    break_even_table,
)
from repro.model.calibration import Calibration, PolyCurve, default_calibration
from repro.model.crossval import CrossValidationRow, cross_validate
from repro.model.estimate import estimate_execution_seconds
from repro.model.fixed import extract_fixed_seconds
from repro.model.hpc import Table6Result, build_table6
from repro.model.overlap import (
    AsyncEstimate,
    async_speedup_table,
    estimate_async_execution,
    pipelined_seconds,
)
from repro.model.whatif import (
    WhatIfReport,
    custom_network,
    minimum_viable_bandwidth,
    what_if,
)
from repro.model.transfer import (
    SymbolicEntry,
    memcpy_transfer_seconds,
    replay_network_seconds,
    session_messages,
    table2_symbolic,
)

__all__ = [
    "AmortizationProfile",
    "AsyncEstimate",
    "Calibration",
    "amortization_profile",
    "async_speedup_table",
    "break_even_table",
    "estimate_async_execution",
    "pipelined_seconds",
    "WhatIfReport",
    "custom_network",
    "minimum_viable_bandwidth",
    "what_if",
    "CrossValidationRow",
    "PolyCurve",
    "SymbolicEntry",
    "Table6Result",
    "build_table6",
    "cross_validate",
    "default_calibration",
    "estimate_execution_seconds",
    "extract_fixed_seconds",
    "memcpy_transfer_seconds",
    "replay_network_seconds",
    "session_messages",
    "table2_symbolic",
]
