"""Calibration of the component cost models against the published data.

The paper reports *totals* (CPU, local GPU, and rCUDA execution times per
problem size); our simulated testbed needs *components*.  This module
derives them, at runtime, by least squares on :mod:`repro.paperdata` --
no magic constants:

* **CPU curves** fit the Table VI CPU column (MKL / FFTW on 8 cores):
  ``a + b m**2 + c m**3`` for MM, ``a + b n`` for the FFT.
* **Local GPU curves** fit the Table VI GPU column the same way; the MM
  cubic coefficient also yields the sustained SGEMM rate
  (``2 / c`` flops per second, landing near Volkov's published ~370
  GFLOP/s for the GT200 -- a nice external consistency check).
* **Remote host curves** (datagen + middleware management + everything
  the paper folds into its "fixed time" except network, PCIe and kernel)
  are obtained by subtracting the full-session 40GI network replay, the
  PCIe transfers and the kernel time from the published 40GI measured
  executions, then fitting.  Building the testbed's 40GI runs back from
  these components reproduces the published measurements to within the
  fit residual (about 1%); every other network then follows from the
  replay on *its* behaviour model.

Positivity is asserted: a calibration that drove any component negative
would mean the decomposition is unphysical, and raises
:class:`~repro.errors.CalibrationError` instead of silently clamping.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.model.transfer import replay_network_seconds
from repro.net.spec import get_network
from repro.paperdata.table4 import TABLE4_FFT, TABLE4_MM
from repro.paperdata.table6 import TABLE6_FFT, TABLE6_MM
from repro.simcuda.timing import DeviceTimingModel, PcieModel
from repro.units import ms_to_seconds
from repro.workloads.base import CaseStudy
from repro.workloads.fftbatch import FftBatchCase
from repro.workloads.matmul import MatrixProductCase

#: Sustained rate assumed for the 512-point FFT kernel (GFLOP/s, with the
#: 5 N log2 N convention).  Volkov's FFT reaches this range on the GT200;
#: the kernel is such a small share of the FFT case's time (fractions of a
#: microsecond per batch element against ~25 us of host work) that the
#: host-curve fit absorbs any residual.
FFT_KERNEL_GFLOPS = 160.0


@dataclass(frozen=True)
class PolyCurve:
    """``sum(coeff_i * size**power_i)`` seconds, fitted by least squares."""

    powers: tuple[float, ...]
    coeffs: tuple[float, ...]

    @classmethod
    def fit(
        cls,
        sizes: Sequence[float],
        seconds: Sequence[float],
        powers: tuple[float, ...],
    ) -> "PolyCurve":
        if len(sizes) != len(seconds) or len(sizes) < len(powers):
            raise CalibrationError(
                f"need at least {len(powers)} samples to fit powers {powers}"
            )
        x = np.asarray(sizes, dtype=np.float64)
        design = np.column_stack([x**p for p in powers])
        coeffs, *_ = np.linalg.lstsq(design, np.asarray(seconds, float), rcond=None)
        return cls(powers=powers, coeffs=tuple(float(c) for c in coeffs))

    def __call__(self, size: float) -> float:
        value = sum(c * size**p for c, p in zip(self.coeffs, self.powers))
        return float(value)

    def max_relative_error(
        self, sizes: Sequence[float], seconds: Sequence[float]
    ) -> float:
        errs = [
            abs(self(s) - t) / abs(t) for s, t in zip(sizes, seconds) if t != 0
        ]
        return max(errs, default=0.0)


@dataclass(frozen=True)
class CaseCalibration:
    """Calibrated component models for one case study."""

    case_name: str
    cpu_curve: PolyCurve
    local_gpu_curve: PolyCurve
    remote_host_curve: PolyCurve
    kernel_gflops: float
    cpu_fit_error: float
    gpu_fit_error: float
    host_fit_error: float


@dataclass(frozen=True)
class Calibration:
    """The full calibrated parameter set."""

    mm: CaseCalibration
    fft: CaseCalibration
    pcie: PcieModel
    timing: DeviceTimingModel

    def for_case(self, case: CaseStudy | str) -> CaseCalibration:
        name = case if isinstance(case, str) else case.name
        if name == "MM":
            return self.mm
        if name == "FFT":
            return self.fft
        raise CalibrationError(f"no calibration for case {name!r}")

    # -- component queries -----------------------------------------------------

    def kernel_seconds(self, case: CaseStudy, size: int) -> float:
        rate = self.for_case(case).kernel_gflops * 1e9
        return case.flops(size) / rate

    def pcie_seconds(self, case: CaseStudy, size: int) -> float:
        per_copy = self.pcie.transfer_seconds(case.payload_bytes(size))
        return case.copies_per_run * per_copy

    def remote_host_seconds(self, case: CaseStudy, size: int) -> float:
        return max(0.0, self.for_case(case).remote_host_curve(size))

    def local_gpu_seconds(self, case: CaseStudy, size: int) -> float:
        return max(0.0, self.for_case(case).local_gpu_curve(size))

    def local_cpu_seconds(self, case: CaseStudy, size: int) -> float:
        return max(0.0, self.for_case(case).cpu_curve(size))


def _calibrate_case(
    case: CaseStudy,
    sizes: Sequence[int],
    cpu_s: Sequence[float],
    gpu_s: Sequence[float],
    measured_40gi_s: Sequence[float],
    cpu_powers: tuple[float, ...],
    gpu_powers: tuple[float, ...],
    host_powers: tuple[float, ...],
    kernel_gflops: float | None,
    pcie: PcieModel,
) -> CaseCalibration:
    cpu_curve = PolyCurve.fit(sizes, cpu_s, cpu_powers)
    gpu_curve = PolyCurve.fit(sizes, gpu_s, gpu_powers)

    if kernel_gflops is None:
        # MM: the GPU column's cubic coefficient is the kernel; everything
        # else in that column is quadratic or constant.
        cubic = dict(zip(gpu_curve.powers, gpu_curve.coeffs)).get(3.0)
        if cubic is None or cubic <= 0:
            raise CalibrationError(
                f"{case.name}: could not extract a kernel rate from the GPU fit"
            )
        kernel_gflops = 2.0 / cubic / 1e9

    spec_40gi = get_network("40GI")
    host_samples: list[float] = []
    for size, measured in zip(sizes, measured_40gi_s):
        net = replay_network_seconds(case, size, spec_40gi)
        pcie_t = case.copies_per_run * pcie.transfer_seconds(
            case.payload_bytes(size)
        )
        kernel_t = case.flops(size) / (kernel_gflops * 1e9)
        host = measured - net - pcie_t - kernel_t
        if host <= 0:
            raise CalibrationError(
                f"{case.name} size {size}: decomposition drove the host "
                f"component negative ({host:.4f} s)"
            )
        host_samples.append(host)
    host_curve = PolyCurve.fit(sizes, host_samples, host_powers)

    return CaseCalibration(
        case_name=case.name,
        cpu_curve=cpu_curve,
        local_gpu_curve=gpu_curve,
        remote_host_curve=host_curve,
        kernel_gflops=kernel_gflops,
        cpu_fit_error=cpu_curve.max_relative_error(sizes, cpu_s),
        gpu_fit_error=gpu_curve.max_relative_error(sizes, gpu_s),
        host_fit_error=host_curve.max_relative_error(sizes, host_samples),
    )


@lru_cache(maxsize=1)
def default_calibration() -> Calibration:
    """Calibrate every component model from the published tables."""
    pcie = PcieModel()
    mm_case = MatrixProductCase()
    fft_case = FftBatchCase()

    mm = _calibrate_case(
        mm_case,
        sizes=[r.size for r in TABLE6_MM],
        cpu_s=[r.cpu for r in TABLE6_MM],
        gpu_s=[r.gpu for r in TABLE6_MM],
        measured_40gi_s=[r.measured_ib40 for r in TABLE4_MM],
        cpu_powers=(0.0, 2.0, 3.0),
        gpu_powers=(0.0, 2.0, 3.0),
        host_powers=(0.0, 2.0, 3.0),
        kernel_gflops=None,  # derived from the GPU column's cubic term
        pcie=pcie,
    )
    fft = _calibrate_case(
        fft_case,
        sizes=[r.size for r in TABLE6_FFT],
        cpu_s=[ms_to_seconds(r.cpu) for r in TABLE6_FFT],
        gpu_s=[ms_to_seconds(r.gpu) for r in TABLE6_FFT],
        measured_40gi_s=[ms_to_seconds(r.measured_ib40) for r in TABLE4_FFT],
        cpu_powers=(0.0, 1.0),
        gpu_powers=(0.0, 1.0),
        host_powers=(0.0, 0.5, 1.0),
        kernel_gflops=FFT_KERNEL_GFLOPS,
        pcie=pcie,
    )
    timing = DeviceTimingModel(
        gemm_gflops=mm.kernel_gflops,
        fft_gflops=fft.kernel_gflops,
        pcie=pcie,
    )
    return Calibration(mm=mm, fft=fft, pcie=pcie, timing=timing)
