"""Projection onto the HPC interconnects (Section VI, Table VI).

Takes the four measured columns (CPU, local GPU, rCUDA over GigaE and
40GI), builds both estimation models, and predicts the execution time on
each of the five target networks under each model.  Figures 5 and 6 are
these same series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ModelError
from repro.model.estimate import estimate_for_case
from repro.model.fixed import fixed_for_case
from repro.net.spec import get_network, hpc_networks
from repro.workloads.base import CaseStudy


@dataclass(frozen=True)
class Table6Result:
    """One problem size of the regenerated Table VI (seconds throughout)."""

    size: int
    cpu: float
    gpu: float
    gigae: float
    ib40: float
    #: network name -> estimate, per source model.
    gigae_model: dict[str, float]
    ib40_model: dict[str, float]


def build_table6(
    case: CaseStudy,
    measured_cpu: Mapping[int, float],
    measured_gpu: Mapping[int, float],
    measured_gigae: Mapping[int, float],
    measured_ib40: Mapping[int, float],
) -> list[Table6Result]:
    """Regenerate Table VI for one case study.

    All four mappings are problem size -> seconds and must cover the same
    sizes.
    """
    sizes = set(measured_cpu)
    for name, column in (
        ("GPU", measured_gpu),
        ("GigaE", measured_gigae),
        ("40GI", measured_ib40),
    ):
        if set(column) != sizes:
            raise ModelError(f"{name} column covers different sizes")

    spec_gigae = get_network("GigaE")
    spec_ib40 = get_network("40GI")
    targets = hpc_networks()

    rows: list[Table6Result] = []
    for size in sorted(sizes):
        fixed_gigae = fixed_for_case(case, size, measured_gigae[size], spec_gigae)
        fixed_ib40 = fixed_for_case(case, size, measured_ib40[size], spec_ib40)
        rows.append(
            Table6Result(
                size=size,
                cpu=measured_cpu[size],
                gpu=measured_gpu[size],
                gigae=measured_gigae[size],
                ib40=measured_ib40[size],
                gigae_model={
                    t.name: estimate_for_case(case, size, fixed_gigae, t)
                    for t in targets
                },
                ib40_model={
                    t.name: estimate_for_case(case, size, fixed_ib40, t)
                    for t in targets
                },
            )
        )
    return rows
