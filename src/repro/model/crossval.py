"""Cross-validation of the two estimation models (Table IV).

Each measured network yields a model (its extracted fixed times); each
model predicts the *other* measured network; the relative error between
prediction and real measurement validates the whole approach.  The paper
finds |error| < 2.2% for the MM (large transfers) and up to ~34% for the
FFT, where the TCP window distortions dominate the smaller transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ModelError
from repro.model.estimate import estimate_for_case
from repro.model.fixed import fixed_for_case
from repro.net.spec import NetworkSpec
from repro.workloads.base import CaseStudy


@dataclass(frozen=True)
class CrossValidationRow:
    """One problem size, both directions (exactly one Table IV line)."""

    size: int
    measured_a: float
    fixed_a: float
    estimated_b_from_a: float
    error_a_model_pct: float
    measured_b: float
    fixed_b: float
    estimated_a_from_b: float
    error_b_model_pct: float


def cross_validate(
    case: CaseStudy,
    measured_a: Mapping[int, float],
    measured_b: Mapping[int, float],
    spec_a: NetworkSpec,
    spec_b: NetworkSpec,
) -> list[CrossValidationRow]:
    """Build Table IV rows from measured times on two networks.

    ``measured_a``/``measured_b`` map problem size -> execution seconds on
    ``spec_a``/``spec_b``.  Sizes must coincide.
    """
    if set(measured_a) != set(measured_b):
        raise ModelError(
            "both networks must be measured at the same problem sizes"
        )
    rows: list[CrossValidationRow] = []
    for size in sorted(measured_a):
        t_a = measured_a[size]
        t_b = measured_b[size]
        fixed_a = fixed_for_case(case, size, t_a, spec_a)
        fixed_b = fixed_for_case(case, size, t_b, spec_b)
        est_b = estimate_for_case(case, size, fixed_a, spec_b)
        est_a = estimate_for_case(case, size, fixed_b, spec_a)
        rows.append(
            CrossValidationRow(
                size=size,
                measured_a=t_a,
                fixed_a=fixed_a,
                estimated_b_from_a=est_b,
                error_a_model_pct=100.0 * (est_b - t_b) / t_b,
                measured_b=t_b,
                fixed_b=fixed_b,
                estimated_a_from_b=est_a,
                error_b_model_pct=100.0 * (est_a - t_a) / t_a,
            )
        )
    return rows
