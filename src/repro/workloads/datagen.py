"""Seeded input generation for the case studies.

The paper's fixed time includes "random data generation"; these helpers
are its functional counterpart.  Everything is seeded so functional runs
(and their verification against numpy baselines) are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def random_matrix(m: int, n: int | None = None, seed: int = 0) -> np.ndarray:
    """A dense single-precision matrix with entries in [-1, 1)."""
    if n is None:
        n = m
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive: {m}x{n}")
    rng = np.random.default_rng(seed)
    return (rng.random((m, n), dtype=np.float32) * 2.0 - 1.0).astype(np.float32)


def fft_batch_signal(batch: int, points: int = 512, seed: int = 0) -> np.ndarray:
    """A (batch, points) single-precision complex signal."""
    if batch <= 0 or points <= 0:
        raise ConfigurationError(
            f"batch and points must be positive: {batch}, {points}"
        )
    rng = np.random.default_rng(seed)
    real = rng.standard_normal((batch, points), dtype=np.float32)
    imag = rng.standard_normal((batch, points), dtype=np.float32)
    return (real + 1j * imag).astype(np.complex64)
