"""Case-study abstraction: the seven-phase execution recipe of Section III.

A case study describes one GPU-accelerated application the way the paper
models it: the GPU module it ships at initialization, how many device
buffers it allocates, how many bytes each memory copy moves for a given
problem size, which kernel it launches, and how to verify the result.
``run`` executes all seven phases against any runtime object exposing the
CUDA call surface -- local or remote, functionally identical, which is
the transparency the middleware is for.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.simcuda.errors import check
from repro.simcuda.module import GpuModule
from repro.simcuda.types import Dim3, MemcpyKind


@dataclass
class CaseRunResult:
    """Outcome of one functional execution."""

    case: str
    size: int
    output: np.ndarray = field(repr=False)
    wall_seconds: float
    phase_seconds: dict[str, float]
    verified: bool | None = None
    max_abs_error: float | None = None


class CaseStudy(ABC):
    """One of the paper's applications (MM, FFT)."""

    #: Case-study identifier used in tables ("MM" / "FFT").
    name: str
    #: Kernel launched by phase 4.
    kernel_name: str
    #: Device buffers allocated in phase 2 (3 for MM, 1 for FFT).
    num_buffers: int
    #: Host-to-device copies in phase 3 (2 for MM, 1 for FFT).
    num_input_copies: int
    #: Memory copies per run entering the paper's fixed-time arithmetic
    #: (inputs + outputs: 3 for MM, 2 for FFT).
    copies_per_run: int
    #: Problem sizes of the paper's sweep.
    paper_sizes: tuple[int, ...]

    @abstractmethod
    def module(self) -> GpuModule:
        """The GPU module shipped at initialization (exact paper size)."""

    @abstractmethod
    def payload_bytes(self, size: int) -> int:
        """Data bytes of one memory-copy operation at this problem size."""

    @abstractmethod
    def flops(self, size: int) -> float:
        """Arithmetic work of one kernel execution."""

    @abstractmethod
    def launch_geometry(self, size: int) -> tuple[Dim3, Dim3]:
        """(grid, block) for the kernel launch."""

    # -- functional execution ---------------------------------------------------

    @abstractmethod
    def generate_inputs(self, size: int, seed: int) -> list[np.ndarray]:
        """Host input buffers, one per input copy."""

    @abstractmethod
    def kernel_args(self, size: int, ptrs: list[int]) -> tuple:
        """Argument tuple given the allocated device pointers."""

    @abstractmethod
    def buffer_bytes(self, size: int) -> list[int]:
        """Size of each device buffer (phase 2), ``num_buffers`` entries."""

    @abstractmethod
    def output_buffer_index(self) -> int:
        """Which device buffer holds the result (phase 5 reads it)."""

    @abstractmethod
    def interpret_output(self, size: int, raw: np.ndarray) -> np.ndarray:
        """Turn the copied-back bytes into the result array."""

    @abstractmethod
    def reference(self, size: int, inputs: list[np.ndarray]) -> np.ndarray:
        """CPU reference result for verification."""

    def verify_tolerance(self, size: int) -> float:
        """Acceptable max-abs deviation from the reference."""
        return 1e-3 * max(1.0, float(size))

    def validate_size(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(
                f"{self.name}: problem size must be positive, got {size}"
            )

    def run(
        self,
        runtime,
        size: int,
        seed: int = 0,
        verify: bool = True,
    ) -> CaseRunResult:
        """Execute phases 2-6 of Section III against ``runtime``.

        Phase 1 (initialization: connection + module) belongs to the
        session setup and phase 7 (finalization) to its teardown; both are
        owned by the caller so one session can run several executions, as
        the middleware allows.
        """
        self.validate_size(size)
        phases: dict[str, float] = {}
        t_all = time.perf_counter()

        t0 = time.perf_counter()
        inputs = self.generate_inputs(size, seed)
        phases["datagen"] = time.perf_counter() - t0

        # Phase 2: memory allocation.
        t0 = time.perf_counter()
        ptrs: list[int] = []
        for nbytes in self.buffer_bytes(size):
            err, ptr = runtime.cudaMalloc(nbytes)
            check(err, f"{self.name} cudaMalloc({nbytes})")
            ptrs.append(ptr)
        phases["malloc"] = time.perf_counter() - t0

        try:
            # Phase 3: input data transfer.
            t0 = time.perf_counter()
            for i, host in enumerate(inputs):
                err, _ = runtime.cudaMemcpy(
                    ptrs[i],
                    0,
                    host.nbytes,
                    MemcpyKind.cudaMemcpyHostToDevice,
                    host_data=host,
                )
                check(err, f"{self.name} input copy {i}")
            phases["h2d"] = time.perf_counter() - t0

            # Phase 4: kernel execution.
            t0 = time.perf_counter()
            grid, block = self.launch_geometry(size)
            err = runtime.launch_kernel(
                self.kernel_name, grid, block, self.kernel_args(size, ptrs)
            )
            check(err, f"{self.name} launch {self.kernel_name}")
            phases["kernel"] = time.perf_counter() - t0

            # Phase 5: output data transfer (synchronizes the device).
            t0 = time.perf_counter()
            out_idx = self.output_buffer_index()
            out_bytes = self.buffer_bytes(size)[out_idx]
            err, raw = runtime.cudaMemcpy(
                0, ptrs[out_idx], out_bytes, MemcpyKind.cudaMemcpyDeviceToHost
            )
            check(err, f"{self.name} output copy")
            phases["d2h"] = time.perf_counter() - t0
        finally:
            # Phase 6: memory release.
            t0 = time.perf_counter()
            for ptr in ptrs:
                runtime.cudaFree(ptr)
            phases["free"] = time.perf_counter() - t0

        output = self.interpret_output(size, raw)
        verified: bool | None = None
        max_err: float | None = None
        if verify:
            expected = self.reference(size, inputs)
            max_err = float(np.abs(output - expected).max())
            verified = max_err <= self.verify_tolerance(size)

        return CaseRunResult(
            case=self.name,
            size=size,
            output=output,
            wall_seconds=time.perf_counter() - t_all,
            phase_seconds=phases,
            verified=verified,
            max_abs_error=max_err,
        )

    def ensure_module(self, runtime) -> None:
        """Load this case's module on a *local* runtime (remote sessions
        ship it during connection initialization instead)."""
        if hasattr(runtime, "load_module"):
            check(runtime.load_module(self.module()), f"{self.name} module load")
