"""CPU baselines: the paper's MKL and FFTW executions.

The paper runs the matrix product through Intel MKL 10.1 and the FFT
through FFTW 3.2.2 on all 8 Xeon cores.  Functionally we stand in numpy's
BLAS (``@``) and pocketfft (``np.fft``); the paper-scale *timings* of the
CPU column come from the calibrated cost curves in
:mod:`repro.model.calibration`, not from timing these (this host is not a
2009 dual-socket E5520).
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigurationError


def cpu_matrix_product(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, float]:
    """Single-precision GEMM on the CPU; returns (C, wall seconds)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(
            f"incompatible GEMM shapes {a.shape} x {b.shape}"
        )
    t0 = time.perf_counter()
    c = (a.astype(np.float32, copy=False) @ b.astype(np.float32, copy=False))
    return c, time.perf_counter() - t0


def cpu_fft_batch(signal: np.ndarray) -> tuple[np.ndarray, float]:
    """Batched FFT over axis 1 on the CPU; returns (spectra, seconds)."""
    if signal.ndim != 2:
        raise ConfigurationError(
            f"expected a (batch, points) signal, got shape {signal.shape}"
        )
    t0 = time.perf_counter()
    spectra = np.fft.fft(signal, axis=1).astype(np.complex64)
    return spectra, time.perf_counter() - t0
