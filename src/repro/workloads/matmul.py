"""The matrix-matrix product case study (Section IV.B).

``C = A * B`` on square single-precision matrices.  One element is 4
bytes, so each of the three memory copies (A in, B in, C out) moves
``4 * m**2`` bytes; the GPU module is 21,486 bytes; the kernel is
Volkov's SGEMM (named ``sgemmNN``, giving the 52-byte launch of Table I);
the asymptotic cost is O(m**3), which is why the paper finds remote
acceleration worthwhile here.
"""

from __future__ import annotations

import numpy as np

from repro.paperdata.constants import (
    MM_BYTES_PER_ELEMENT,
    MM_MODULE_BYTES,
    MM_SIZES,
)
from repro.simcuda.kernels.sgemm import KERNEL_NAME as SGEMM_NAME
from repro.simcuda.module import GpuModule, fabricate_module
from repro.simcuda.types import Dim3
from repro.workloads.base import CaseStudy
from repro.workloads.datagen import random_matrix


class MatrixProductCase(CaseStudy):
    """The paper's MM case study."""

    name = "MM"
    kernel_name = SGEMM_NAME
    num_buffers = 3
    num_input_copies = 2
    copies_per_run = 3
    paper_sizes = MM_SIZES

    _module: GpuModule | None = None

    def module(self) -> GpuModule:
        if type(self)._module is None:
            type(self)._module = fabricate_module(
                "rcuda_mm", [self.kernel_name], MM_MODULE_BYTES
            )
        return type(self)._module

    def payload_bytes(self, size: int) -> int:
        return MM_BYTES_PER_ELEMENT * size * size

    def flops(self, size: int) -> float:
        return 2.0 * float(size) ** 3

    def launch_geometry(self, size: int) -> tuple[Dim3, Dim3]:
        # Volkov's SGEMM tiles 64x16 per block on the GT200.
        block = Dim3(16, 4, 1)
        grid = Dim3(max(1, (size + 63) // 64), max(1, (size + 15) // 16), 1)
        return grid, block

    def generate_inputs(self, size: int, seed: int) -> list[np.ndarray]:
        return [
            random_matrix(size, size, seed=seed),
            random_matrix(size, size, seed=seed + 1),
        ]

    def buffer_bytes(self, size: int) -> list[int]:
        return [self.payload_bytes(size)] * 3

    def kernel_args(self, size: int, ptrs: list[int]) -> tuple:
        pa, pb, pc = ptrs
        return (pa, pb, pc, size, size, size, 1.0, 0.0)

    def output_buffer_index(self) -> int:
        return 2

    def interpret_output(self, size: int, raw: np.ndarray) -> np.ndarray:
        return raw.view(np.float32).reshape(size, size)

    def reference(self, size: int, inputs: list[np.ndarray]) -> np.ndarray:
        a, b = inputs
        return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)

    def verify_tolerance(self, size: int) -> float:
        # Accumulated float32 rounding grows ~sqrt(m); generous headroom.
        return 1e-4 * float(size)
