"""The paper's case studies: the matrix product (MM) and the batched
512-point FFT, plus their CPU baselines.

A :class:`~repro.workloads.base.CaseStudy` knows its GPU module, kernel,
payload arithmetic and the seven-phase execution recipe of Section III,
and can *functionally run* against any runtime exposing the CUDA call
surface -- the local :class:`~repro.simcuda.runtime.CudaRuntime` and the
remote :class:`~repro.rcuda.client.runtime.RemoteCudaRuntime` both
qualify, which is exactly the transparency property the middleware
promises.
"""

from repro.workloads.base import CaseStudy, CaseRunResult
from repro.workloads.cpu_baselines import cpu_fft_batch, cpu_matrix_product
from repro.workloads.datagen import fft_batch_signal, random_matrix
from repro.workloads.fftbatch import FftBatchCase
from repro.workloads.matmul import MatrixProductCase

__all__ = [
    "CaseRunResult",
    "CaseStudy",
    "FftBatchCase",
    "MatrixProductCase",
    "cpu_fft_batch",
    "cpu_matrix_product",
    "fft_batch_signal",
    "random_matrix",
]
