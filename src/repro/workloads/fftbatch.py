"""The batched 1-D FFT case study (Section IV.B).

``n`` parallel 512-point single-precision complex transforms: 8 bytes per
point, 4,096 bytes per batch element, one copy in and one copy out of a
single device buffer (in-place transform, hence Table I's single
cudaMalloc/cudaFree).  The GPU module is 7,852 bytes; the kernel name
``FFT512_device`` gives the 58-byte launch.  The O(n log n) cost is the
paper's example of a problem *not* worth remoting -- nor even worth a
local GPU once PCIe transfers are counted.
"""

from __future__ import annotations

import numpy as np

from repro.paperdata.constants import (
    FFT_BYTES_PER_POINT,
    FFT_MODULE_BYTES,
    FFT_BATCHES,
    FFT_POINTS,
)
from repro.simcuda.kernels.fft import KERNEL_NAME as FFT_NAME
from repro.simcuda.module import GpuModule, fabricate_module
from repro.simcuda.types import Dim3
from repro.workloads.base import CaseStudy
from repro.workloads.datagen import fft_batch_signal


class FftBatchCase(CaseStudy):
    """The paper's FFT case study."""

    name = "FFT"
    kernel_name = FFT_NAME
    num_buffers = 1
    num_input_copies = 1
    copies_per_run = 2
    paper_sizes = FFT_BATCHES

    _module: GpuModule | None = None

    def module(self) -> GpuModule:
        if type(self)._module is None:
            type(self)._module = fabricate_module(
                "rcuda_fft", [self.kernel_name], FFT_MODULE_BYTES
            )
        return type(self)._module

    def payload_bytes(self, size: int) -> int:
        return FFT_BYTES_PER_POINT * FFT_POINTS * size

    def flops(self, size: int) -> float:
        # 5 N log2 N per transform, the convention FFT benchmarks use.
        return size * 5.0 * FFT_POINTS * np.log2(FFT_POINTS)

    def launch_geometry(self, size: int) -> tuple[Dim3, Dim3]:
        # One 64-thread block per transform, Volkov-FFT style.
        return Dim3(min(size, 65535), max(1, -(-size // 65535)), 1), Dim3(64, 1, 1)

    def generate_inputs(self, size: int, seed: int) -> list[np.ndarray]:
        return [fft_batch_signal(size, FFT_POINTS, seed=seed)]

    def buffer_bytes(self, size: int) -> list[int]:
        return [self.payload_bytes(size)]

    def kernel_args(self, size: int, ptrs: list[int]) -> tuple:
        (ptr,) = ptrs
        return (ptr, ptr, size, 1)  # in-place forward transform

    def output_buffer_index(self) -> int:
        return 0

    def interpret_output(self, size: int, raw: np.ndarray) -> np.ndarray:
        return raw.view(np.complex64).reshape(size, FFT_POINTS)

    def reference(self, size: int, inputs: list[np.ndarray]) -> np.ndarray:
        (signal,) = inputs
        return np.fft.fft(signal.astype(np.complex128), axis=1).astype(np.complex64)

    def verify_tolerance(self, size: int) -> float:
        return 5e-3  # per-transform error is size-independent
