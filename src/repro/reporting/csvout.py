"""CSV export of regenerated tables and figure series."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigurationError


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> Path:
    """Write one table; creates parent directories; returns the path."""
    path = Path(path)
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
