"""Ours-vs-paper comparison: the numbers behind EXPERIMENTS.md.

The reproduction's success criterion is not digit equality -- the paper's
numbers come from 2009 hardware -- but agreement in value where the
pipeline is deterministic arithmetic (transfer tables) and agreement in
*shape* where measurement enters (who wins, error signs, crossovers).
:func:`compare_series` quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComparisonSummary:
    """Relative-difference statistics between two aligned series."""

    label: str
    count: int
    max_rel_diff: float
    mean_rel_diff: float
    #: Fraction of points where the two series have the same sign.
    sign_agreement: float

    def within(self, tolerance: float) -> bool:
        return self.max_rel_diff <= tolerance


def compare_series(
    label: str,
    ours: Sequence[float],
    paper: Sequence[float],
    absolute: bool = False,
) -> ComparisonSummary:
    """Summarize |ours - paper| / |paper| over aligned points.

    With ``absolute=True`` the raw |ours - paper| differences are reported
    instead -- the right metric when the series are themselves small
    percentages (e.g. Table IV's error columns, where a 0.2% vs 0.5%
    disagreement is excellent agreement but a huge *relative* gap).
    Points where the paper value is 0 are excluded from the relative
    stats.
    """
    if len(ours) != len(paper):
        raise ConfigurationError(
            f"{label}: series lengths differ ({len(ours)} vs {len(paper)})"
        )
    if not ours:
        raise ConfigurationError(f"{label}: empty comparison")
    diffs: list[float] = []
    signs = 0
    for a, b in zip(ours, paper):
        if absolute:
            diffs.append(abs(a - b))
        elif b != 0:
            diffs.append(abs(a - b) / abs(b))
        if (a >= 0) == (b >= 0):
            signs += 1
    if not diffs:
        diffs = [0.0]
    return ComparisonSummary(
        label=label,
        count=len(ours),
        max_rel_diff=max(diffs),
        mean_rel_diff=sum(diffs) / len(diffs),
        sign_agreement=signs / len(ours),
    )
