"""Rendering: paper-layout tables, ASCII figures, CSV export, and
ours-vs-paper comparisons for EXPERIMENTS.md."""

from repro.reporting.ascii_plot import ascii_chart
from repro.reporting.compare import ComparisonSummary, compare_series
from repro.reporting.csvout import write_csv
from repro.reporting.tables import format_value, render_table

__all__ = [
    "ComparisonSummary",
    "ascii_chart",
    "compare_series",
    "format_value",
    "render_table",
    "write_csv",
]
