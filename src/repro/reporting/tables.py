"""Plain-text table rendering in the paper's layout."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def format_value(value, digits: int = 2) -> str:
    """Format a cell: floats with fixed digits, everything else via str."""
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    digits: int = 2,
    align_left_cols: Sequence[int] = (0,),
) -> str:
    """Render a monospace table.

    Numeric columns are right-aligned; columns listed in
    ``align_left_cols`` (default: the first) are left-aligned.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    text_rows = [[format_value(c, digits) for c in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def _fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in align_left_cols:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(_fmt_row(row))
    return "\n".join(lines)
