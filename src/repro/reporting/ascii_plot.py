"""ASCII line charts for the figure reproductions.

Good enough to show the *shape* the paper's figures show -- who wins,
where curves cross -- directly in a terminal or a text log, with optional
log scaling on either axis.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

_MARKERS = "ox+*#@%&sd"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        if value <= 0 or lo <= 0:
            raise ConfigurationError("log scale requires positive values")
        return (math.log10(value) - math.log10(lo)) / (
            math.log10(hi) - math.log10(lo)
        )
    return (value - lo) / (hi - lo)


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logy: bool = False,
) -> str:
    """Plot several named series over a shared x grid."""
    if not series:
        raise ConfigurationError("at least one series is required")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points, x has {len(x)}"
            )
    if len(x) < 2:
        raise ConfigurationError("need at least two x points")

    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x), max(x)

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for xi, yi in zip(x, ys):
            col = round(_scale(xi, x_lo, x_hi, False) * (width - 1))
            row = round(_scale(yi, y_lo, y_hi, logy) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    if ylabel:
        lines.append(f"[y: {ylabel}{', log' if logy else ''}]")
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    label_w = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + "+" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * (label_w + 1) + x_axis)
    if xlabel:
        lines.append(" " * (label_w + 1) + f"[x: {xlabel}]")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
