"""Unit conventions shared by the whole reproduction.

The ICPP 2011 rCUDA paper reports data sizes in "MB" that are actually
mebibytes: the matrix-matrix product at dimension 4096 is listed as 64 MB,
and 4 bytes/element * 4096**2 elements = 67,108,864 bytes = 64 MiB exactly.
All "MB" figures in the paper (payload sizes, effective bandwidths in
"MB/s") therefore use the 2**20 convention, and so does this package:
whenever a public API says ``mib`` it means multiples of :data:`MIB`.

Times follow the paper's mixed conventions: latency plots and Table II are
in microseconds, Tables III and V in milliseconds, Table VI in seconds for
the matrix product and milliseconds for the FFT.  Internally everything is
carried in seconds (floats) and converted at the reporting boundary with
the helpers below.
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

#: One microsecond / millisecond expressed in seconds.
US: float = 1e-6
MS: float = 1e-3


def bytes_to_mib(nbytes: float) -> float:
    """Convert a byte count to mebibytes (the paper's "MB")."""
    return nbytes / MIB


def mib_to_bytes(mib: float) -> float:
    """Convert mebibytes to bytes."""
    return mib * MIB


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


def us_to_seconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us * US


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * MS


def mibps_to_bytes_per_second(mibps: float) -> float:
    """Convert a bandwidth in MiB/s (the paper's "MB/s") to bytes/s."""
    return mibps * MIB


def transfer_seconds(nbytes: float, bandwidth_mibps: float) -> float:
    """Time to move ``nbytes`` at ``bandwidth_mibps`` (MiB/s), in seconds.

    This is the paper's Tables III and V arithmetic: payload divided by the
    effective one-way bandwidth measured with the ping-pong test.
    """
    if bandwidth_mibps <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_mibps}")
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    return nbytes / mibps_to_bytes_per_second(bandwidth_mibps)
