"""The simulated two-node testbed (virtual clock).

Re-creates the paper's measurements: one node runs the application, the
other owns the GPU; every wire message of the seven-phase execution is
charged to the network's *behaviour* model (small-message anchors, linear
large-payload law, GigaE's TCP window distortion), while host, PCIe and
kernel time come from the calibrated component models.

The same machinery produces the local-GPU and local-CPU columns, so one
object regenerates every measured number of Tables IV and VI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.model.calibration import Calibration, default_calibration
from repro.model.transfer import session_messages
from repro.net.simlink import SimulatedLink
from repro.net.spec import NetworkSpec, get_network
from repro.testbed.trace import ExecutionTrace
from repro.workloads.base import CaseStudy
from repro.workloads.fftbatch import FftBatchCase
from repro.workloads.matmul import MatrixProductCase


@dataclass(frozen=True)
class SimulatedRun:
    """One simulated measurement."""

    case: str
    size: int
    network: str
    total_seconds: float
    trace: ExecutionTrace


@dataclass(frozen=True)
class SampledMeasurement:
    """Replicated stochastic measurements, the paper's averaging protocol.

    Section V: "the empirically measured times are averaged from 30
    executions (a maximum standard deviation of 1.0 s was observed in the
    case of the matrix-matrix product and 14.4 ms for the FFT)".
    """

    case: str
    size: int
    network: str
    runs: int
    mean_seconds: float
    std_seconds: float
    min_seconds: float
    max_seconds: float


class SimulatedTestbed:
    """The paper's experimental setup, on a virtual clock."""

    def __init__(self, calibration: Calibration | None = None) -> None:
        self.calibration = (
            calibration if calibration is not None else default_calibration()
        )
        # The testbed is deterministic, so identical runs are memoized:
        # Table IV, Table VI and both figures all re-measure the same
        # (case, size, network) points.
        self._memo: dict[tuple[str, int, str], SimulatedRun] = {}

    # -- remote executions (rCUDA over a network) --------------------------------

    def measure_remote(
        self,
        case: CaseStudy,
        size: int,
        network: str | NetworkSpec,
        tracer=None,
    ) -> SimulatedRun:
        """One rCUDA execution of ``case`` at ``size`` over ``network``.

        With a ``tracer``, the run also emits one virtual-clock span per
        wire exchange (plus the host-side span), so simulated runs get
        the same timeline/JSONL/Perfetto treatment as functional ones;
        aggregating those spans per phase reproduces ``trace.by_phase()``
        exactly.
        """
        spec = network if isinstance(network, NetworkSpec) else get_network(network)
        key = (case.name, size, spec.name)
        cached = self._memo.get(key)
        if cached is not None and tracer is None:
            return cached
        cal = self.calibration
        trace = ExecutionTrace(case=case.name, size=size, network=spec.name)
        session = f"sim-{case.name}-{size}-{spec.name}"
        clock_now = 0.0
        seq = 0

        def emit(name: str, phase: str, seconds: float, **attrs) -> None:
            nonlocal clock_now, seq
            if tracer is not None:
                tracer.record(
                    name, "client", session, seq,
                    start=clock_now, end=clock_now + seconds,
                    phase=phase, **attrs,
                )
            clock_now += seconds
            seq += 1

        # Host-side fixed work: data generation + middleware management.
        host_seconds = cal.remote_host_seconds(case, size)
        trace.add("host", host_seconds=host_seconds)
        emit("host work", "host", host_seconds)

        # Every wire exchange, charged to the behaviour model.  The rCUDA
        # daemon pre-initialized the GPU context, so no CUDA init appears.
        kernel_seconds = cal.kernel_seconds(case, size)
        pcie_per_copy = cal.pcie.transfer_seconds(case.payload_bytes(size))
        for msg in session_messages(case, size):
            net = spec.actual_one_way_seconds(msg.send_bytes)
            net += spec.actual_one_way_seconds(msg.receive_bytes)
            device = 0.0
            if msg.operation == "cudaMemcpy (to device)":
                device = pcie_per_copy
            elif msg.operation == "cudaMemcpy (to host)":
                # The synchronous output copy drains the kernel first.
                device = kernel_seconds + pcie_per_copy
            trace.add(msg.phase, network_seconds=net, device_seconds=device)
            emit(
                msg.operation, msg.phase, net + device,
                bytes_sent=msg.send_bytes, bytes_received=msg.receive_bytes,
                network_seconds=net, device_seconds=device,
            )

        run = SimulatedRun(
            case=case.name,
            size=size,
            network=spec.name,
            total_seconds=trace.total_seconds,
            trace=trace,
        )
        self._memo[key] = run
        return run

    def measure_remote_sampled(
        self,
        case: CaseStudy,
        size: int,
        network: str | NetworkSpec,
        runs: int = 30,
        jitter_fraction: float = 0.01,
        seed: int = 0,
    ) -> SampledMeasurement:
        """Replicate one measurement the way the paper did.

        Each replicate samples the link stochastically (bursty TCP window
        stalls + Gaussian jitter) and perturbs the host time by the same
        jitter fraction; the mean converges on :meth:`measure_remote` and
        the standard deviation reproduces the dispersion the paper
        reports.
        """
        if runs < 2:
            raise ConfigurationError(f"need at least 2 runs, got {runs}")
        spec = network if isinstance(network, NetworkSpec) else get_network(network)
        cal = self.calibration
        rng = np.random.default_rng(seed)
        link = SimulatedLink(
            spec,
            jitter_fraction=jitter_fraction,
            seed=seed + 1,
            distortion_mode="stochastic",
        )
        host_nominal = cal.remote_host_seconds(case, size)
        kernel = cal.kernel_seconds(case, size)
        pcie = cal.pcie_seconds(case, size)
        messages = session_messages(case, size)

        samples = np.empty(runs, dtype=np.float64)
        for i in range(runs):
            host = host_nominal
            if jitter_fraction > 0:
                host = max(
                    0.0,
                    host_nominal
                    + float(rng.normal(0.0, jitter_fraction * host_nominal)),
                )
            net = 0.0
            for msg in messages:
                net += link.transfer(msg.send_bytes)
                net += link.transfer(msg.receive_bytes)
            samples[i] = host + net + kernel + pcie
        return SampledMeasurement(
            case=case.name,
            size=size,
            network=spec.name,
            runs=runs,
            mean_seconds=float(samples.mean()),
            std_seconds=float(samples.std(ddof=1)),
            min_seconds=float(samples.min()),
            max_seconds=float(samples.max()),
        )

    # -- local executions ----------------------------------------------------------

    def measure_local_gpu(self, case: CaseStudy, size: int) -> SimulatedRun:
        """CUDA on the node that owns the GPU (includes context init)."""
        cal = self.calibration
        total = cal.local_gpu_seconds(case, size)
        kernel = cal.kernel_seconds(case, size)
        pcie = cal.pcie_seconds(case, size)
        host = max(0.0, total - kernel - pcie)
        trace = ExecutionTrace(case=case.name, size=size, network="local-GPU")
        trace.add("host", host_seconds=host)
        trace.add("h2d", device_seconds=pcie * case.num_input_copies / case.copies_per_run)
        trace.add("kernel", device_seconds=kernel)
        trace.add("d2h", device_seconds=pcie / case.copies_per_run)
        return SimulatedRun(case.name, size, "local-GPU", trace.total_seconds, trace)

    def measure_local_cpu(self, case: CaseStudy, size: int) -> SimulatedRun:
        """The 8-core MKL/FFTW baseline."""
        total = self.calibration.local_cpu_seconds(case, size)
        trace = ExecutionTrace(case=case.name, size=size, network="local-CPU")
        trace.add("host", host_seconds=total)
        return SimulatedRun(case.name, size, "local-CPU", total, trace)

    # -- columns -------------------------------------------------------------------

    def measured_column(
        self, case: CaseStudy, target: str, sizes=None
    ) -> dict[int, float]:
        """A full measured column: ``target`` is a network name, ``CPU``
        or ``GPU``.  Defaults to the paper's problem sizes."""
        sizes = tuple(sizes) if sizes is not None else case.paper_sizes
        if target == "CPU":
            return {s: self.measure_local_cpu(case, s).total_seconds for s in sizes}
        if target == "GPU":
            return {s: self.measure_local_gpu(case, s).total_seconds for s in sizes}
        return {
            s: self.measure_remote(case, s, target).total_seconds for s in sizes
        }

    def table6_inputs(
        self, case: CaseStudy, sizes=None
    ) -> tuple[dict[int, float], dict[int, float], dict[int, float], dict[int, float]]:
        """The four measured columns Table VI starts from."""
        return (
            self.measured_column(case, "CPU", sizes),
            self.measured_column(case, "GPU", sizes),
            self.measured_column(case, "GigaE", sizes),
            self.measured_column(case, "40GI", sizes),
        )


def case_by_name(name: str) -> CaseStudy:
    """Look up a case study by its table label."""
    if name == "MM":
        return MatrixProductCase()
    if name == "FFT":
        return FftBatchCase()
    raise ConfigurationError(f"unknown case study {name!r} (MM or FFT)")
