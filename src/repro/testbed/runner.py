"""Functional runner: really execute a case study through the middleware.

Spins up a daemon over a simulated GPU, connects a client (in-process or
TCP), runs the seven phases with real bytes and real kernels, verifies
the numerics, and reports wall time, wire traffic, and -- via
:class:`~repro.transport.timed.TimedTransport` -- the *virtual* time the
same traffic would have cost on any modeled network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.simlink import SimulatedLink
from repro.net.spec import get_network
from repro.rcuda.client.connection import RCudaClient
from repro.rcuda.server.daemon import RCudaDaemon
from repro.simcuda.device import SimulatedGpu
from repro.transport.inproc import inproc_pair
from repro.transport.tcp import connect_tcp
from repro.transport.timed import TimedTransport
from repro.workloads.base import CaseRunResult, CaseStudy


@dataclass(frozen=True)
class FunctionalRunReport:
    """Outcome of one real middleware execution."""

    result: CaseRunResult
    bytes_sent: int
    bytes_received: int
    messages_sent: int
    #: Complete responses consumed by the client (mirrors the server's
    #: ``messages_sent``; one per request on this strict RPC protocol).
    messages_received: int
    #: Virtual network seconds the traffic would cost per modeled network.
    virtual_network_seconds: dict[str, float]
    #: Blocking request/response waits the client paid (sync mode: one
    #: per call; pipelined mode: one per synchronization point).
    round_trips: int = 0
    #: Client-side payload bytes that crossed an avoidable staging copy
    #: (plus the transport's own ``copy_bytes``); zero-copy runs report 0.
    bytes_copied: int = 0


class FunctionalRunner:
    """Owns a device + daemon; runs cases against them for real.

    Pass a :class:`repro.obs.Tracer` to record one client span per remote
    call and one server span per dispatched request; the tracer's span
    list spans every run this runner performs.
    """

    def __init__(
        self,
        device: SimulatedGpu | None = None,
        use_tcp: bool = False,
        accounted_networks: tuple[str, ...] = ("GigaE", "40GI"),
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        self.device = device if device is not None else SimulatedGpu()
        self.tracer = tracer
        self.metrics = metrics
        self.daemon = RCudaDaemon(self.device, tracer=tracer, metrics=metrics)
        self.use_tcp = use_tcp
        self.accounted_networks = accounted_networks
        self._port: int | None = None
        #: Optional :class:`~repro.obs.profiler.RuntimeProfiler`: counter
        #: tracks (queue depth, in-flight window, memory occupancy) next
        #: to the spans.  The runner attaches sources and takes explicit
        #: samples at the session boundaries; starting/stopping the
        #: background sampling thread stays the caller's choice.
        self.profiler = profiler
        if profiler is not None:
            profiler.attach_daemon(self.daemon)

    def start(self) -> None:
        if self.use_tcp and self._port is None:
            self._port = self.daemon.start()

    def stop(self) -> None:
        # Always stop the daemon: for in-process runs this joins session
        # threads that are still winding down after the client closed, so
        # callers observe active_sessions == 0 deterministically.
        self.daemon.stop()
        self._port = None

    def __enter__(self) -> "FunctionalRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def run(
        self,
        case: CaseStudy,
        size: int,
        seed: int = 0,
        verify: bool = True,
        pipeline: bool = False,
        chunk_bytes: int | None = None,
        chunking: bool = True,
        profile: str | None = None,
    ) -> FunctionalRunReport:
        """One full session: connect, initialize, run, finalize.

        ``pipeline=True`` runs the session over the deferred-ack hot path
        (byte-identical wire traffic, fewer blocking round trips).
        ``chunk_bytes`` pins the streaming frame size for large copies;
        ``chunking=False`` keeps every copy monolithic (the pre-streaming
        wire shape).  ``profile`` loads a shipped tuned config by network
        name (explicit knobs still win)."""
        links = {
            name: SimulatedLink(get_network(name))
            for name in self.accounted_networks
        }

        if self.use_tcp:
            self.start()
            assert self._port is not None
            base = connect_tcp("127.0.0.1", self._port)
        else:
            client_end, server_end = inproc_pair()
            self.daemon.serve_transport(server_end)
            base = client_end

        transport = base
        # Chain one timing wrapper per accounted network; bytes flow
        # through unchanged, each link's clock accumulates independently.
        for link in links.values():
            transport = TimedTransport(transport, link)

        client = RCudaClient.connect(
            transport,
            case.module(),
            tracer=self.tracer,
            pipeline=pipeline,
            chunk_bytes=chunk_bytes,
            chunking=chunking,
            profile=profile,
        )
        profiler = self.profiler
        if profiler is not None:
            profiler.attach_client(client.runtime)
            profiler.sample()
        try:
            result = case.run(client.runtime, size, seed=seed, verify=verify)
            if profiler is not None:
                profiler.sample()
        finally:
            client.close()
            if profiler is not None:
                profiler.sample()

        return FunctionalRunReport(
            result=result,
            bytes_sent=transport.bytes_sent,
            bytes_received=transport.bytes_received,
            messages_sent=transport.messages_sent,
            messages_received=transport.messages_received,
            virtual_network_seconds={
                name: link.clock.now() for name, link in links.items()
            },
            round_trips=client.runtime.round_trips,
            bytes_copied=client.runtime.bytes_copied + base.copy_bytes,
        )
