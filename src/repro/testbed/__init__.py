"""Testbeds: where "measured" numbers come from.

* :class:`~repro.testbed.simulated.SimulatedTestbed` -- the virtual-clock
  counterpart of the paper's two-node cluster: calibrated component cost
  models plus a full-session network replay produce the measured columns
  (CPU, local GPU, rCUDA over GigaE/40GI) at paper scale in microseconds
  of host time.
* :class:`~repro.testbed.runner.FunctionalRunner` -- really runs the
  middleware (client, wire protocol, server, device, kernels) and
  measures wall-clock time and wire traffic; used at small problem sizes
  for end-to-end correctness and for virtual network accounting of real
  traffic.
"""

from repro.testbed.runner import FunctionalRunner, FunctionalRunReport
from repro.testbed.simulated import SimulatedRun, SimulatedTestbed
from repro.testbed.trace import ExecutionTrace, PhaseTiming

__all__ = [
    "ExecutionTrace",
    "FunctionalRunReport",
    "FunctionalRunner",
    "PhaseTiming",
    "SimulatedRun",
    "SimulatedTestbed",
]
