"""Execution traces: per-phase timing of one run.

The paper's model is built by analyzing "the traces of two different case
studies over two different networks"; this is our trace structure.  The
phase names follow Section III's seven stages, with the component costs
(host/PCIe/kernel/network) attributed to the phase that incurs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Canonical phase order (Section III, with the host-side work explicit).
PHASE_ORDER = (
    "host",      # data generation + middleware management (fixed-time parts)
    "init",      # phase 1: connection + module shipping
    "malloc",    # phase 2
    "h2d",       # phase 3: input transfers (network + PCIe)
    "launch",    # phase 4: argument + launch messages
    "kernel",    # phase 4: device execution
    "d2h",       # phase 5: output transfer
    "free",      # phase 6
    "finalize",  # phase 7
)


@dataclass(frozen=True)
class PhaseTiming:
    """Seconds spent in one phase, split by where the time went."""

    phase: str
    network_seconds: float = 0.0
    device_seconds: float = 0.0
    host_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.network_seconds + self.device_seconds + self.host_seconds


@dataclass
class ExecutionTrace:
    """One run's full phase breakdown."""

    case: str
    size: int
    network: str
    phases: list[PhaseTiming] = field(default_factory=list)

    def add(
        self,
        phase: str,
        network_seconds: float = 0.0,
        device_seconds: float = 0.0,
        host_seconds: float = 0.0,
    ) -> None:
        if phase not in PHASE_ORDER:
            raise ConfigurationError(
                f"unknown phase {phase!r}; expected one of {PHASE_ORDER}"
            )
        self.phases.append(
            PhaseTiming(
                phase=phase,
                network_seconds=network_seconds,
                device_seconds=device_seconds,
                host_seconds=host_seconds,
            )
        )

    @property
    def total_seconds(self) -> float:
        return sum(p.total_seconds for p in self.phases)

    @property
    def network_seconds(self) -> float:
        return sum(p.network_seconds for p in self.phases)

    @property
    def device_seconds(self) -> float:
        return sum(p.device_seconds for p in self.phases)

    @property
    def host_seconds(self) -> float:
        return sum(p.host_seconds for p in self.phases)

    def by_phase(self) -> dict[str, float]:
        """Total seconds per phase, aggregated and ordered canonically."""
        totals: dict[str, float] = {}
        for p in self.phases:
            totals[p.phase] = totals.get(p.phase, 0.0) + p.total_seconds
        return {
            name: totals[name] for name in PHASE_ORDER if name in totals
        }
