"""Middleware micro-benchmarks: per-call round-trip cost and bulk
throughput through the real stack (codec + transport + handler + device)."""

import numpy as np
import pytest

from repro.rcuda import RCudaClient, RCudaDaemon
from repro.simcuda import SimulatedGpu, MemcpyKind, fabricate_module
from repro.simcuda.errors import CudaError


@pytest.fixture(scope="module")
def client():
    daemon = RCudaDaemon(SimulatedGpu())
    module = fabricate_module("bench", ["sgemmNN", "saxpy"], 4096)
    c = RCudaClient.connect_inproc(daemon, module)
    yield c
    c.close()


def test_malloc_free_roundtrip(benchmark, client):
    rt = client.runtime

    def malloc_free():
        err, ptr = rt.cudaMalloc(4096)
        assert err == CudaError.cudaSuccess
        rt.cudaFree(ptr)

    benchmark(malloc_free)


def test_memcpy_throughput_1mib(benchmark, client):
    rt = client.runtime
    payload = np.zeros(1 << 20, dtype=np.uint8)
    err, ptr = rt.cudaMalloc(payload.nbytes)
    assert err == CudaError.cudaSuccess

    def h2d():
        status, _ = rt.cudaMemcpy(
            ptr, 0, payload.nbytes, MemcpyKind.cudaMemcpyHostToDevice, payload
        )
        assert status == CudaError.cudaSuccess

    benchmark(h2d)
    rt.cudaFree(ptr)


def test_kernel_launch_roundtrip(benchmark, client):
    from repro.simcuda.types import Dim3

    rt = client.runtime
    err, px = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess
    err, py = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess

    def launch():
        status = rt.launch_kernel(
            "saxpy", Dim3(4), Dim3(256), (px, py, 1024, 1.5)
        )
        assert status == CudaError.cudaSuccess

    benchmark(launch)
    rt.cudaFree(px)
    rt.cudaFree(py)
