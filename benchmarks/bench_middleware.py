"""Middleware micro-benchmarks: per-call round-trip cost and bulk
throughput through the real stack (codec + transport + handler + device),
plus the pipelined-vs-sync comparison on the small-message hot path.

Run under pytest-benchmark for the statistical fixtures, or directly as
a script for the CI perf smoke::

    PYTHONPATH=src python benchmarks/bench_middleware.py --quick

Quick mode drives the small-message-dominated burst workload (memset +
small H2D + kernel launch per iteration) over real TCP in both modes,
writes ``BENCH_middleware.json`` (round trips, bytes copied, wall time
per workload, plus a model-conformance drift summary), and asserts the
pipelined hot path cuts wall time by at least 20% on the burst
workload.  It also leaves three inspection artifacts next to the JSON:
a Perfetto-loadable ``BENCH_trace.json`` (span + counter tracks of an
instrumented pipelined MM run, with flow arrows linking each client
span to its server-side execution), a ``BENCH_causal.json`` assembled
request tree (per-request phase segments, phase totals and critical
path from the cross-process trace assembler), and a
``BENCH_metrics.prom`` Prometheus snapshot of the same run.

Quick mode additionally runs the chunked-vs-monolithic large-copy
comparison (1-64 MiB H2D on the virtual clock over GigaE and 40GI):
streamed copies must never regress the monolithic path and must land
within 15% of the two-stage pipeline bound from ``repro.model.overlap``.
"""

import gc
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.rcuda import RCudaClient, RCudaDaemon
from repro.simcuda import SimulatedGpu, MemcpyKind, fabricate_module
from repro.simcuda.errors import CudaError
from repro.simcuda.types import Dim3
from repro.testbed import FunctionalRunner
from repro.workloads import FftBatchCase, MatrixProductCase

MODULE = fabricate_module("bench", ["sgemmNN", "saxpy"], 4096)


@pytest.fixture(scope="module")
def client():
    daemon = RCudaDaemon(SimulatedGpu())
    c = RCudaClient.connect_inproc(daemon, MODULE)
    yield c
    c.close()


def test_malloc_free_roundtrip(benchmark, client):
    rt = client.runtime

    def malloc_free():
        err, ptr = rt.cudaMalloc(4096)
        assert err == CudaError.cudaSuccess
        rt.cudaFree(ptr)

    benchmark(malloc_free)


def test_memcpy_throughput_1mib(benchmark, client):
    rt = client.runtime
    payload = np.zeros(1 << 20, dtype=np.uint8)
    err, ptr = rt.cudaMalloc(payload.nbytes)
    assert err == CudaError.cudaSuccess

    def h2d():
        status, _ = rt.cudaMemcpy(
            ptr, 0, payload.nbytes, MemcpyKind.cudaMemcpyHostToDevice, payload
        )
        assert status == CudaError.cudaSuccess

    benchmark(h2d)
    rt.cudaFree(ptr)


def test_kernel_launch_roundtrip(benchmark, client):
    rt = client.runtime
    err, px = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess
    err, py = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess

    def launch():
        status = rt.launch_kernel(
            "saxpy", Dim3(4), Dim3(256), (px, py, 1024, 1.5)
        )
        assert status == CudaError.cudaSuccess

    benchmark(launch)
    rt.cudaFree(px)
    rt.cudaFree(py)


# -- pipelined vs sync over real TCP ------------------------------------------

BURST_ITERS = 300


def _burst(rt, ptr: int, payload: bytes, iters: int = BURST_ITERS) -> None:
    """The small-message-dominated hot path: every iteration is two tiny
    calls (a memset and a 256-byte H2D copy) whose sync-mode cost is
    dominated by the blocking wait for each 4-byte acknowledgement."""
    for i in range(iters):
        rt.cudaMemset(ptr, i & 0xFF, 256)
        rt.cudaMemcpy(
            ptr, 0, 256, MemcpyKind.cudaMemcpyHostToDevice, host_data=payload
        )
    assert rt.cudaThreadSynchronize() == CudaError.cudaSuccess


def _run_burst_tcp(
    pipeline: bool, iters: int = BURST_ITERS, observability: bool = True,
    traced: bool = False,
) -> dict:
    """One burst over TCP.  ``observability=True`` is the daemon default
    (flight recorder + per-session accounting on); ``False`` strips both
    for the obs-overhead comparison.  ``traced=True`` additionally wires
    span tracers into both sides, so every assembly-feeding attribute
    (client ``sent``, server ``queued_for``) is recorded -- the full
    cost of making the run explainable by ``repro explain``."""
    from repro.obs import Tracer

    tracer = Tracer() if traced else None
    if observability:
        daemon = RCudaDaemon(SimulatedGpu(), tracer=tracer)
    else:
        daemon = RCudaDaemon(SimulatedGpu(), flight=None, accounting=False)
    port = daemon.start()
    client = RCudaClient.connect_tcp(
        "127.0.0.1", port, MODULE, pipeline=pipeline, tracer=tracer
    )
    rt = client.runtime
    payload = b"\x5a" * 256
    try:
        err, ptr = rt.cudaMalloc(4096)
        assert err == CudaError.cudaSuccess
        t0 = time.perf_counter()
        _burst(rt, ptr, payload, iters)
        wall = time.perf_counter() - t0
        return {
            "mode": "pipelined" if pipeline else "sync",
            "wall_seconds": wall,
            "round_trips": rt.round_trips,
            "messages_sent": rt.transport.messages_sent,
            "bytes_sent": rt.transport.bytes_sent,
            "bytes_copied": rt.bytes_copied + rt.transport.copy_bytes,
        }
    finally:
        client.close()
        daemon.stop()


@pytest.mark.parametrize("pipeline", [False, True], ids=["sync", "pipelined"])
def test_small_message_burst_tcp(benchmark, pipeline):
    """Fire BURST_ITERS (memset + 256B H2D) pairs over TCP.

    Sync mode pays one loopback round trip per call; pipelined mode
    defers every one of them to the single trailing synchronize."""
    report = benchmark.pedantic(
        lambda: _run_burst_tcp(pipeline), rounds=3, iterations=1
    )
    # init + malloc + trailing sync, plus (sync mode only) the memset
    # and memcpy exchanges of every iteration.
    expected = 3 if pipeline else 3 + 2 * BURST_ITERS
    assert report["round_trips"] == expected


# -- chunked vs monolithic large copies (virtual clock) ------------------------

LARGE_COPY_SIZES = (1 << 20, 4 << 20, 16 << 20, 64 << 20)
LARGE_COPY_NETWORKS = ("GigaE", "40GI")
#: The acceptance size: 16 MiB H2D, per network, against the pipeline bound.
ACCEPTANCE_SIZE = 16 << 20


def _timed_copy_seconds(network: str, size: int, chunking: bool):
    """Virtual seconds of one H2D copy of ``size`` bytes: link clock
    delta plus device clock delta (the two stages of the transfer
    pipeline).  Returns the elapsed virtual time and the runtime (for
    reading the adaptive chunk size afterwards)."""
    from repro.net.simlink import SimulatedLink
    from repro.net.spec import get_network
    from repro.transport.inproc import inproc_pair
    from repro.transport.timed import TimedTransport

    device = SimulatedGpu()
    daemon = RCudaDaemon(device)
    link = SimulatedLink(get_network(network))
    client_end, server_end = inproc_pair()
    daemon.serve_transport(server_end)
    client = RCudaClient.connect(
        TimedTransport(client_end, link), MODULE, chunking=chunking
    )
    rt = client.runtime
    try:
        err, ptr = rt.cudaMalloc(size)
        assert err == CudaError.cudaSuccess
        t0 = link.clock.now() + device.clock.now()
        status, _ = rt.cudaMemcpy(
            ptr, 0, size, MemcpyKind.cudaMemcpyHostToDevice,
            host_data=np.zeros(size, dtype=np.uint8),
        )
        assert status == CudaError.cudaSuccess
        return link.clock.now() + device.clock.now() - t0, rt
    finally:
        client.close()
        daemon.stop()


def _large_copy_comparison() -> dict:
    """Chunked-vs-monolithic large H2D copies on the virtual clock.

    For every (network, size) pair the copy runs once monolithically and
    once streamed, each measured as link-clock delta + device-clock
    delta, and the streamed time is compared against the classic
    two-stage pipeline bound from :mod:`repro.model.overlap`.  Chunking
    regressing the monolithic path is a hard failure.

    The 16 MiB acceptance block also records ``meets_70pct``: whether
    chunked time reached 70% of monolithic.  With only two pipeline
    stages the achievable ratio is floored at max(stage)/sum(stages)
    (GigaE ~0.79, 40GI ~0.83), so these booleans are expected honest
    ``False`` -- the floor itself is recorded alongside.
    """
    from repro.model.overlap import pipelined_seconds
    from repro.net.spec import get_network
    from repro.protocol.accounting import memcpy_chunk_cost
    from repro.simcuda.timing import PcieModel

    chunk_header = memcpy_chunk_cost().send_fixed
    pcie_model = PcieModel()
    networks: dict = {}
    acceptance: dict = {}
    for network in LARGE_COPY_NETWORKS:
        spec = get_network(network)
        rows = []
        for size in LARGE_COPY_SIZES:
            mono, _ = _timed_copy_seconds(network, size, chunking=False)
            chunked, rt = _timed_copy_seconds(network, size, chunking=True)
            assert chunked <= mono, (
                f"chunking regressed the monolithic copy on {network} at "
                f"{size >> 20} MiB: {chunked:.6f}s > {mono:.6f}s"
            )
            chunk_bytes = rt._stream_chunk_bytes(size)
            chunks = -(-size // chunk_bytes)
            wire = size + chunks * chunk_header
            net = spec.actual_one_way_seconds(wire, include_distortion=False)
            pcie = chunks * pcie_model.transfer_seconds(size / chunks)
            bound = pipelined_seconds([net, pcie], chunks)
            row = {
                "size_mib": size >> 20,
                "chunk_bytes": chunk_bytes,
                "chunks": chunks,
                "monolithic_seconds": mono,
                "chunked_seconds": chunked,
                "ratio": chunked / mono,
                "pipeline_bound_seconds": bound,
                "within_15pct_of_bound": chunked <= 1.15 * bound,
            }
            rows.append(row)
            if size == ACCEPTANCE_SIZE:
                # The slower stage is irreducible, so no streamed copy
                # can land below the pipeline bound: bound/mono is the
                # lowest honestly reachable ratio on this network.
                floor = bound / mono
                acceptance[network] = {
                    "size_mib": size >> 20,
                    "ratio": row["ratio"],
                    "meets_70pct": row["ratio"] <= 0.70,
                    "within_15pct_of_bound": row["within_15pct_of_bound"],
                    "pipeline_floor_ratio": floor,
                    "note": (
                        "70% is below the two-stage pipeline floor of "
                        f"{floor:.3f} for this network; the chunked copy "
                        "sits on the bound instead"
                    ),
                }
        networks[network] = rows
    return {
        "measure": "link clock delta + device clock delta per H2D copy",
        "networks": networks,
        "acceptance_16mib": acceptance,
    }


# -- connection scaling: event loop vs thread-per-connection -------------------

#: Concurrent loopback sessions in the CI quick smoke / the full run.
SCALING_QUICK_CLIENTS = 128
SCALING_FULL_CLIENTS = 1000
#: Small requests per session per timed round after the handshake
#: (memset acks).
SCALING_ITERS = 64
#: CI regression bound at quick scale.  128 sessions measure ~2.1x on a
#: quiet machine; the looser bound keeps noisy CI boxes from flaking
#: while still catching the event loop collapsing.  The >= 2x
#: acceptance claim is asserted at full scale, where
#: thread-per-connection actually pays for 1000 live threads.
SCALING_QUICK_MIN_RATIO = 1.2
#: The acceptance bound at 1000 sessions: async >= 2x thread throughput.
SCALING_FULL_MIN_RATIO = 2.0
#: Requests each session keeps in flight: the client sends a window of
#: frames, waits for the window's acks, then sends the next (the
#: middleware's bounded-pipeline shape; the pipelined client mode keeps
#: far more than this outstanding).  Deep windows are where the two
#: server designs separate: the event loop drains a whole window per
#: recv and batches its acks into one vectored send, while the blocking
#: server still pays its several-reads-per-message loop and a wakeup
#: per scheduling quantum.
SCALING_WINDOW = 64
#: Timed rounds per worker run; the reported throughput is the best
#: round (min wall), pytest-benchmark style -- on a single-core box the
#: scheduler can dock either mode a double-digit percentage in any one
#: round, and min-wall is the standard estimator of undisturbed cost.
SCALING_ROUNDS = 3
#: Whole-swarm completion deadline inside the worker.
SCALING_DEADLINE_SECONDS = 300.0


def _scaling_worker(mode: str, clients: int, iters: int) -> dict:
    """Steady-state throughput with ``clients`` live loopback sessions.

    Three phases, so the measured window is the paper's consolidation
    scenario (every session attached at once), not an accept race:

    1. *setup* (untimed): every session connects, initializes and
       mallocs; the swarm then waits at a barrier, fully attached --
       the thread daemon is now holding one blocked thread per session,
       the event loop one small state machine;
    2. *steady state* (timed): ``SCALING_ROUNDS`` rounds, each with
       every session running ``iters`` memset requests in windows of
       ``SCALING_WINDOW`` -- send the window, await its acks, send the
       next (the middleware's bounded-pipeline shape) -- all sessions
       concurrently.  Sessions stay attached between rounds; the
       reported throughput/latency come from the fastest round
       (min-wall, pytest-benchmark style), which on a shared single
       core is the standard estimator of undisturbed cost;
    3. teardown: sockets close cleanly, the daemon stops.

    The client side is one selector-driven thread multiplexing every
    socket, identical for both server modes, so the measured difference
    is the server's.  Runs in a subprocess (see
    :func:`_connection_scaling`) so peak-RSS and thread-count numbers
    are per-mode, not cumulative.
    """
    import resource
    import selectors
    import socket
    import struct
    import threading

    from repro.protocol.codec import encode_request
    from repro.protocol.messages import InitRequest, MallocRequest, MemsetRequest
    from repro.rcuda import AsyncRCudaDaemon

    try:  # one fd per client socket + one per daemon-side socket
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        need = clients * 2 + 128
        if soft < need:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(need, hard), hard))
    except (ValueError, OSError):
        pass

    if mode == "async":
        daemon = AsyncRCudaDaemon(SimulatedGpu())
    else:
        daemon = RCudaDaemon(SimulatedGpu())
    port = daemon.start()

    init_blob = encode_request(InitRequest(module=MODULE.payload))
    malloc_blob = encode_request(MallocRequest(size=4096))
    INIT_RESP = 12   # cc_major u4 + cc_minor u4 + error u4
    MALLOC_RESP = 8  # error u4 + ptr u4
    ACK = 4          # error u4

    ST_INIT, ST_MALLOC, ST_READY, ST_BODY, ST_DONE = 0, 1, 2, 3, 4

    class Conn:
        __slots__ = ("sock", "state", "out", "off", "want", "buf", "frame",
                     "remaining", "seconds")

        def __init__(self, sock):
            self.sock = sock
            self.state = ST_INIT
            self.out = init_blob
            self.off = 0
            self.want = INIT_RESP
            self.buf = bytearray()
            self.frame = b""
            self.remaining = iters
            self.seconds = 0.0

    sel = selectors.DefaultSelector()
    failures: list[str] = []
    done = ready = 0
    threads_peak = threading.active_count()
    t_burst = 0.0
    in_flight = 0
    round_walls: list[float] = []
    round_participants: list[int] = []
    round_lats: list[list[float]] = []

    t_start = time.perf_counter()
    conns: list[Conn] = []
    for _ in range(clients):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.connect_ex(("127.0.0.1", port))
        conn = Conn(sock)
        conns.append(conn)
        sel.register(sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn)

    def finish(conn, error=None):
        nonlocal done, in_flight
        if conn.state == ST_BODY:
            in_flight -= 1
        sel.unregister(conn.sock)
        conn.sock.close()
        conn.state = ST_DONE
        conn.seconds = time.perf_counter() - t_burst
        done += 1
        if error is not None:
            failures.append(error)

    def advance(conn):
        """A full response for the current state arrived."""
        nonlocal ready, in_flight
        buf = conn.buf
        if conn.state == ST_INIT:
            error = struct.unpack_from("<I", buf, 8)[0]
            if error:
                finish(conn, f"init refused: error {error}")
                return
            del buf[:INIT_RESP]
            conn.state = ST_MALLOC
            conn.out, conn.off, conn.want = malloc_blob, 0, MALLOC_RESP
            sel.modify(
                conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
            )
        elif conn.state == ST_MALLOC:
            error, ptr = struct.unpack_from("<II", buf, 0)
            if error:
                finish(conn, f"malloc failed: error {error}")
                return
            del buf[:MALLOC_RESP]
            conn.frame = encode_request(
                MemsetRequest(ptr=ptr, value=90, size=256)
            )
            conn.state = ST_READY
            ready += 1
            # Parked at the barrier: a live, idle, attached session.
            sel.modify(conn.sock, selectors.EVENT_READ, conn)
        elif conn.state == ST_BODY:
            # A full window of acks came back: fire the next window.
            del buf[: conn.want]
            conn.remaining -= conn.want // ACK
            if conn.remaining <= 0:
                # Round complete for this session: park it (still
                # attached) until the next round releases.
                conn.state = ST_READY
                conn.seconds = time.perf_counter() - t_burst
                round_lats[-1].append(conn.seconds)
                in_flight -= 1
            else:
                send_next(conn)
        else:
            finish(conn)

    def send_next(conn):
        """Send this session's next request window (a small write on an
        empty socket buffer virtually never blocks; fall back to write
        interest if it does)."""
        window = min(SCALING_WINDOW, conn.remaining)
        payload = conn.frame * window
        conn.want = ACK * window
        try:
            sent = conn.sock.send(payload)
        except BlockingIOError:
            sent = 0
        except OSError as exc:
            finish(conn, f"send failed mid-body: {exc}")
            return
        if sent < len(payload):
            conn.out, conn.off = payload, sent
            sel.modify(
                conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
            )

    def release_burst():
        """Every session is attached: start every session's windowed
        request loop at once.  The cyclic collector is parked for the
        timed section -- with a thousand live sessions a mid-burst GC
        pass shows up as a mode-independent multi-percent stall that
        only adds ratio noise."""
        nonlocal t_burst, in_flight
        gc.collect()
        gc.disable()
        participants = 0
        for conn in conns:
            if conn.state == ST_READY:
                participants += 1
        in_flight = participants
        round_participants.append(participants)
        round_lats.append([])
        t_burst = time.perf_counter()
        for conn in conns:
            if conn.state != ST_READY:
                continue
            conn.state = ST_BODY
            conn.remaining = iters
            conn.out, conn.off = b"", 0
            send_next(conn)

    deadline = t_start + SCALING_DEADLINE_SECONDS
    burst_released = False
    while time.perf_counter() < deadline:
        if not burst_released and ready + done == clients:
            burst_released = True
            release_burst()
        if burst_released and in_flight == 0:
            round_walls.append(time.perf_counter() - t_burst)
            if len(round_walls) >= SCALING_ROUNDS or done >= clients:
                break
            release_burst()
        events = sel.select(timeout=1.0)
        active = threading.active_count()
        if active > threads_peak:
            threads_peak = active
        for key, mask in events:
            conn: Conn = key.data
            if conn.state == ST_DONE:
                continue
            try:
                if mask & selectors.EVENT_WRITE and conn.off < len(conn.out):
                    conn.off += conn.sock.send(
                        memoryview(conn.out)[conn.off:]
                    )
                    if conn.off >= len(conn.out):
                        sel.modify(conn.sock, selectors.EVENT_READ, conn)
                if mask & selectors.EVENT_READ:
                    data = conn.sock.recv(64 << 10)
                    if not data:
                        finish(conn, f"peer closed in state {conn.state}")
                        continue
                    conn.buf += data
                    if len(conn.buf) >= conn.want:
                        advance(conn)
            except BlockingIOError:
                continue
            except OSError as exc:
                finish(conn, f"socket error in state {conn.state}: {exc}")
    total_wall = time.perf_counter() - t_start
    gc.enable()
    if len(round_walls) < SCALING_ROUNDS:
        failures.append(
            f"deadline after {len(round_walls)}/{SCALING_ROUNDS} rounds"
        )
    for conn in conns:
        if conn.state != ST_DONE:
            finish(conn)
    sel.close()
    daemon.stop()

    best = min(range(len(round_walls)), key=round_walls.__getitem__) if round_walls else -1
    burst_wall = round_walls[best] if best >= 0 else float("inf")
    requests = (round_participants[best] if best >= 0 else clients) * iters
    lat = sorted(round_lats[best]) if best >= 0 and round_lats[best] else [0.0]

    def pct(p: float) -> float:
        return lat[min(len(lat) - 1, int(p * len(lat)))]

    # /proc VmHWM, not ru_maxrss: Linux carries ru_maxrss accounting
    # across fork+exec, so a subprocess spawned by a large parent
    # inherits the parent's peak and both modes report the same number.
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    rss_kib = int(line.split()[1])
                    break
    except OSError:
        pass
    return {
        "mode": mode,
        "clients": clients,
        "iters": iters,
        "requests": requests,
        "setup_seconds": total_wall - sum(round_walls),
        "wall_seconds": burst_wall,
        "round_walls": round_walls,
        "throughput_rps": requests / burst_wall if burst_wall > 0 else 0.0,
        "session_seconds_p50": pct(0.50),
        "session_seconds_p95": pct(0.95),
        "session_seconds_p99": pct(0.99),
        "rss_peak_mib": rss_kib / 1024.0,
        "threads_peak": threads_peak,
        "failures": len(failures),
        "failure_samples": failures[:5],
        "unclean_sessions": daemon.unclean_sessions,
        "completed_sessions": daemon.completed_sessions,
    }


def _connection_scaling(clients: int, iters: int = SCALING_ITERS) -> dict:
    """Run the many-client swarm against both daemons, each in its own
    subprocess (clean peak-RSS and thread-count per mode)."""
    import os
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    modes = {}
    for mode in ("thread", "async"):
        proc = subprocess.run(
            [sys.executable, __file__, "--scaling-worker", mode,
             str(clients), str(iters)],
            capture_output=True, text=True, env=env,
            timeout=2 * SCALING_DEADLINE_SECONDS,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"scaling worker ({mode}) failed:\n{proc.stderr[-2000:]}"
            )
        modes[mode] = json.loads(proc.stdout.strip().splitlines()[-1])
    ratio = (
        modes["async"]["throughput_rps"] / modes["thread"]["throughput_rps"]
        if modes["thread"]["throughput_rps"] > 0 else float("inf")
    )
    return {
        "what": (
            f"{clients} concurrent loopback TCP sessions, each init + "
            f"malloc + {iters} memsets, driven by one selector client; "
            "event-loop daemon vs thread-per-connection"
        ),
        "clients": clients,
        "modes": modes,
        "async_vs_thread_throughput": ratio,
    }


# -- multi-tenant device sharing ----------------------------------------------

#: The acceptance gates: fair-share batching must reach at least this
#: multiple of naive serialized (fifo) dispatch's aggregate launch
#: throughput at 8 contending tenants, at a Jain fairness index at
#: least this high across per-tenant completion rates.
MULTI_TENANT_MIN_SPEEDUP = 1.3
MULTI_TENANT_MIN_JAIN = 0.9

#: Saxpy length whose memory-bound compute time is ~16 us -- twice the
#: 8 us fixed launch overhead, so coalescing has real overhead to
#: amortize without drowning it in compute.
MULTI_TENANT_SAXPY_N = 106_667


def _multi_tenant_run(policy: str, tenants: int, launches: int = 64) -> dict:
    """Drive ``tenants`` contending handlers through one pooled device
    and measure aggregate launch throughput on the device's virtual
    clock (deterministic: no wall time in the metric)."""
    from repro.protocol.messages import (
        LaunchRequest,
        SetupArgsRequest,
        SyncRequest,
    )
    from repro.rcuda import DevicePool, TenantSessionHandler

    pool = DevicePool(
        devices=1, policy=policy,
        device_factory=lambda: SimulatedGpu(functional=False),
    )
    handlers = [TenantSessionHandler(pool.attach()) for _ in range(tenants)]
    t0 = time.perf_counter()
    for handler in handlers:
        for _ in range(launches):
            handler.handle(
                SetupArgsRequest(args=(0, 0, MULTI_TENANT_SAXPY_N, 1.0))
            )
            response = handler.handle(LaunchRequest(kernel_name="saxpy"))
            assert response.error == 0
    for handler in handlers:
        assert handler.handle(SyncRequest()).error == 0
    wall = time.perf_counter() - t0
    rates = [
        launches / h.tenant.last_completion for h in handlers
    ]
    horizon = max(h.tenant.last_completion for h in handlers)
    jain = sum(rates) ** 2 / (tenants * sum(r * r for r in rates))
    coalesced = sum(h.tenant.launches_coalesced for h in handlers)
    return {
        "policy": policy,
        "tenants": tenants,
        "launches_per_tenant": launches,
        "device_seconds": horizon,
        "aggregate_launches_per_second": tenants * launches / horizon,
        "jain_fairness": jain,
        "launches_coalesced": coalesced,
        "wall_seconds": wall,
    }


def _multi_tenant_comparison() -> dict:
    """Fair-share batched dispatch vs naive serialized (fifo) dispatch
    at 2/8/32 contending tenants on one pooled device."""
    points = []
    for tenants in (2, 8, 32):
        fifo = _multi_tenant_run("fifo", tenants)
        fair = _multi_tenant_run("fair", tenants)
        points.append({
            "tenants": tenants,
            "fifo": fifo,
            "fair": fair,
            "fair_vs_fifo_throughput": (
                fair["aggregate_launches_per_second"]
                / fifo["aggregate_launches_per_second"]
            ),
        })
    at8 = next(p for p in points if p["tenants"] == 8)
    return {
        "what": (
            "aggregate kernel-launch throughput on one pooled device, "
            "deficit-round-robin batched dispatch (fair) vs serialized "
            "arrival-order dispatch (fifo), measured on the device's "
            "virtual clock"
        ),
        "saxpy_n": MULTI_TENANT_SAXPY_N,
        "points": points,
        "speedup_at_8": at8["fair_vs_fifo_throughput"],
        "jain_at_8": at8["fair"]["jain_fairness"],
        "min_speedup": MULTI_TENANT_MIN_SPEEDUP,
        "min_jain": MULTI_TENANT_MIN_JAIN,
    }


# -- CI perf smoke ------------------------------------------------------------


def _best_of(fn, rounds: int = 3) -> dict:
    runs = [fn() for _ in range(rounds)]
    return min(runs, key=lambda r: r["wall_seconds"])


#: The acceptance ceiling: default-on observability (flight recorder +
#: per-session accounting) may cost at most this much wall time on the
#: pipelined burst.  ``BENCH_middleware.json`` records whether a run met
#: it; on a quiet machine the measured ratio sits near 1.03.
OBS_OVERHEAD_MAX = 1.05

#: The CI gate: shared runners shift wall time by tens of percent
#: between segments, so the smoke test only fails when the estimate
#: regresses past this -- far above measurement noise (sigma ~0.07)
#: but below the 1.29 the unoptimized dispatch path measured.
OBS_OVERHEAD_REGRESSION_MAX = 1.25


#: Regression bound for the opt-in causal-tracing configuration (span
#: tracers on both sides recording the assembly-feeding attrs).  Per-call
#: span construction costs real time against a ~10 us loopback call --
#: measured ~1.26-1.30x on the all-tiny-calls burst, the worst case by
#: construction -- so it carries its own honest bound rather than the
#: default stack's <5% budget.  Real workloads amortize far better: the
#: instrumented MM drift run behind BENCH_trace.json is fully traced.
OBS_TRACED_REGRESSION_MAX = 1.6


def _observability_overhead(blocks: int = 12) -> dict:
    """Pipelined burst: default observability stack and the full
    causal-tracing configuration, each against the stripped daemon.

    Three arms.  ``on``: flight recorder + per-session accounting, the
    daemon defaults -- this is the <5% budget claim, re-gated here with
    the assembly-feeding flight attrs (tenant, queued-launch depth,
    scheduler batch events) compiled in.  ``traced``: the defaults plus
    span tracers on both sides recording the assembly attrs (client
    ``sent``, server ``queued_for``) that ``repro explain`` joins on --
    the full cost of making a run explainable, gated by its own
    regression bound.  ``off``: everything stripped.

    Loopback wall time on a shared host swings by tens of percent as
    scheduler/throttle windows come and go, so neither best-of-N per arm
    nor per-pair ratios are stable: a slow window landing on one arm
    poisons the estimate.  Instead the arms run as short interleaved
    segments in palindrome order (on,off,traced,traced,off,on per block)
    so every noise window is sampled by each arm almost equally, and
    ratios of the arms' *total* wall times are compared.
    """
    totals = {"on": 0.0, "off": 0.0, "traced": 0.0}
    walls: dict[str, list[float]] = {"on": [], "off": [], "traced": []}
    for _ in range(blocks):
        for arm in ("on", "off", "traced", "traced", "off", "on"):
            wall = _run_burst_tcp(
                True, observability=arm != "off", traced=arm == "traced"
            )["wall_seconds"]
            totals[arm] += wall
            walls[arm].append(wall)

    def ratios(arm: str) -> tuple[float, float, float]:
        total = (
            totals[arm] / totals["off"] if totals["off"] > 0 else float("inf")
        )
        best = (
            min(walls[arm]) / min(walls["off"])
            if min(walls["off"]) > 0 else float("inf")
        )
        # Both are consistent estimators of the true overhead and noise
        # can only inflate them (a slow window adds time, never removes
        # it), so the lesser of the two is the better point estimate.
        return total, best, min(total, best)

    total_ratio, best_ratio, ratio = ratios("on")
    traced_total, traced_best, traced_ratio = ratios("traced")
    return {
        "what": (
            "pipelined burst wall time vs the stripped daemon: flight "
            "recorder + accounting on (the daemon default), and the "
            "same plus two-sided span tracing with assembly attrs "
            "(the repro-explain configuration); lesser of the "
            "total-wall ratio over interleaved segments and the "
            "best-segment ratio, per arm"
        ),
        "segments_per_arm": 2 * blocks,
        "on_wall_seconds": min(walls["on"]),
        "off_wall_seconds": min(walls["off"]),
        "on_total_seconds": totals["on"],
        "off_total_seconds": totals["off"],
        "total_ratio": total_ratio,
        "best_ratio": best_ratio,
        "overhead_ratio": ratio,
        "threshold": OBS_OVERHEAD_MAX,
        "within_threshold": ratio <= OBS_OVERHEAD_MAX,
        "regression_threshold": OBS_OVERHEAD_REGRESSION_MAX,
        "traced": {
            "wall_seconds": min(walls["traced"]),
            "total_seconds": totals["traced"],
            "total_ratio": traced_total,
            "best_ratio": traced_best,
            "overhead_ratio": traced_ratio,
            "regression_threshold": OBS_TRACED_REGRESSION_MAX,
        },
    }


def _instrumented_drift_run(
    case, size: int, trace_out: str, metrics_out: str,
    causal_out: str = "BENCH_causal.json",
) -> dict:
    """One fully observed pipelined run: spans + counter tracks go to a
    Perfetto trace, the metrics registry to a Prometheus snapshot, and
    every client span through the conformance monitor.  The returned
    drift summary lands in ``BENCH_middleware.json`` so CI history shows
    how far the wall-clock middleware sits from the paper model.

    The same spans then go through the cross-process trace assembler:
    the Perfetto artifact gains flow arrows linking each client span to
    its server-side execution, and ``causal_out`` records the assembled
    request tree (per-request phase segments, phase totals, critical
    path) -- the end-to-end trace CI uploads next to the raw spans.
    Every matched request must attribute >= 99% of its wall time to
    named phases, the ``repro explain`` acceptance bar."""
    from repro.model.calibration import default_calibration
    from repro.net.spec import get_network
    from repro.obs import (
        ConformanceMonitor,
        MetricsRegistry,
        RuntimeProfiler,
        TraceAssembler,
        Tracer,
        render_prometheus,
        write_chrome_trace,
    )

    registry = MetricsRegistry()
    tracer = Tracer()
    profiler = RuntimeProfiler()
    monitor = ConformanceMonitor(get_network("40GI"), metrics=registry)
    monitor.set_workload(case, size, calibration=default_calibration())
    runner = FunctionalRunner(
        use_tcp=True, tracer=tracer, metrics=registry, profiler=profiler
    )
    with runner:
        with profiler:
            report = runner.run(case, size, pipeline=True)
    assert report.result.verified
    monitor.observe_spans(tracer.spans)
    assembled = TraceAssembler().assemble(tracer.spans)
    for node in assembled.nodes:
        assert node.attributed_fraction >= 0.99, (
            f"request {node.session}:{node.seq} ({node.name}) attributed "
            f"only {node.attributed_fraction:.1%} of its wall time"
        )
    critical = assembled.critical_path()
    write_chrome_trace(
        tracer.spans, trace_out, counters=profiler.samples,
        flows=assembled.flows(),
    )
    Path(causal_out).write_text(json.dumps({
        "what": (
            "assembled end-to-end request tree of the instrumented "
            f"pipelined {case.name} size-{size} run behind "
            f"{trace_out}: per-request phase segments from the "
            "cross-process trace assembler"
        ),
        "requests": len(assembled.nodes),
        "pairing": assembled.pairing,
        "orphan_client_spans": len(assembled.orphan_client),
        "orphan_server_spans": len(assembled.orphan_server),
        "phase_totals_seconds": assembled.phase_totals(),
        "critical_path": {
            "total_seconds": critical.total_seconds,
            "dominant_phase": critical.dominant_phase(),
            "phase_seconds": critical.phase_seconds,
        },
        "nodes": [
            {
                "session": node.session,
                "seq": node.seq,
                "name": node.name,
                "wall_seconds": node.wall_seconds,
                "attributed_fraction": node.attributed_fraction,
                "dominant_phase": node.dominant_phase(),
                "segments_seconds": node.segments,
            }
            for node in assembled.nodes
        ],
    }, indent=2) + "\n")
    Path(metrics_out).write_text(render_prometheus(registry))
    return {
        "case": case.name,
        "size": size,
        "network": "40GI",
        "status": monitor.status,
        "findings": [f.describe() for f in monitor.findings()],
        "unmodeled_spans": monitor.unmodeled_spans,
        "causal": {
            "requests_assembled": len(assembled.nodes),
            "min_attributed_fraction": min(
                (n.attributed_fraction for n in assembled.nodes),
                default=1.0,
            ),
            "critical_path_dominant_phase": critical.dominant_phase(),
        },
        "phases": {
            phase: {
                "measured_seconds": measured,
                "predicted_seconds": predicted,
                "relative_error": (
                    (measured - predicted) / predicted if predicted else None
                ),
            }
            for phase, (measured, predicted) in monitor.phase_table().items()
        },
    }


def run_quick(
    output: str = "BENCH_middleware.json",
    scaling_clients: int = SCALING_QUICK_CLIENTS,
) -> dict:
    """The CI perf-smoke entry point: burst + MM + FFT over TCP in both
    modes, plus the many-client connection-scaling comparison, persisted
    to ``BENCH_middleware.json``.  ``--scale`` raises the swarm to
    ``SCALING_FULL_CLIENTS`` (the committed acceptance numbers)."""
    # Interleave the two arms (ABBA per block, as in the observability
    # comparison) so a slow scheduler window cannot land on one arm's
    # entire best-of sample and fake a near-zero reduction; the best
    # wall per arm across all blocks is the point estimate.
    burst_runs: dict[str, list[dict]] = {"sync": [], "pipelined": []}
    for _ in range(3):
        for pipeline in (False, True, True, False):
            run = _run_burst_tcp(pipeline)
            burst_runs[run["mode"]].append(run)
    burst = {
        mode: min(runs, key=lambda r: r["wall_seconds"])
        for mode, runs in burst_runs.items()
    }
    workloads = {}
    for name, case, size in (
        ("mm", MatrixProductCase(), 128),
        ("fft", FftBatchCase(), 1024),
    ):
        with FunctionalRunner(use_tcp=True) as runner:
            per_mode = {}
            for mode, pipeline in (("sync", False), ("pipelined", True)):
                report = runner.run(case, size, pipeline=pipeline)
                assert report.result.verified
                per_mode[mode] = {
                    "wall_seconds": report.result.wall_seconds,
                    "round_trips": report.round_trips,
                    "messages_sent": report.messages_sent,
                    "bytes_sent": report.bytes_sent,
                    "bytes_copied": report.bytes_copied,
                }
            workloads[name] = per_mode

    drift = _instrumented_drift_run(
        MatrixProductCase(), 128, "BENCH_trace.json", "BENCH_metrics.prom"
    )
    large_copies = _large_copy_comparison()
    obs_overhead = _observability_overhead()
    scaling = _connection_scaling(scaling_clients)
    multi_tenant = _multi_tenant_comparison()

    reduction = 1.0 - (
        burst["pipelined"]["wall_seconds"] / burst["sync"]["wall_seconds"]
    )
    payload = {
        "benchmark": "middleware pipelined-vs-sync over TCP loopback",
        "burst_iters": BURST_ITERS,
        "burst": burst,
        "workloads": workloads,
        "burst_wall_reduction": reduction,
        "drift": drift,
        "large_copies": large_copies,
        "observability_overhead": obs_overhead,
        "connection_scaling": scaling,
        "multi_tenant": multi_tenant,
    }
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"burst sync:      {burst['sync']['wall_seconds'] * 1e3:8.2f} ms, "
          f"{burst['sync']['round_trips']} round trips")
    print(f"burst pipelined: {burst['pipelined']['wall_seconds'] * 1e3:8.2f} ms, "
          f"{burst['pipelined']['round_trips']} round trips")
    print(f"wall-time reduction on the small-message burst: {reduction:.1%}")
    for name, per_mode in workloads.items():
        print(
            f"{name}: round trips {per_mode['sync']['round_trips']} -> "
            f"{per_mode['pipelined']['round_trips']}, bytes copied "
            f"{per_mode['sync']['bytes_copied']} -> "
            f"{per_mode['pipelined']['bytes_copied']}"
        )
    print(
        f"model conformance ({drift['case']} size {drift['size']} vs "
        f"{drift['network']}): {drift['status']}, "
        f"{len(drift['findings'])} finding(s); trace -> BENCH_trace.json, "
        f"causal tree -> BENCH_causal.json, metrics -> BENCH_metrics.prom"
    )
    causal = drift["causal"]
    print(
        f"causal assembly: {causal['requests_assembled']} requests, min "
        f"attributed fraction {causal['min_attributed_fraction']:.3f}, "
        f"critical path dominated by "
        f"{causal['critical_path_dominant_phase']}"
    )
    for network, rows in large_copies["networks"].items():
        for row in rows:
            print(
                f"large copy {network} {row['size_mib']:>2} MiB: "
                f"mono {row['monolithic_seconds'] * 1e3:9.3f} ms, "
                f"chunked {row['chunked_seconds'] * 1e3:9.3f} ms "
                f"(ratio {row['ratio']:.3f}, bound "
                f"{row['pipeline_bound_seconds'] * 1e3:9.3f} ms, "
                f"within 15%: {row['within_15pct_of_bound']})"
            )
    for network, accept in large_copies["acceptance_16mib"].items():
        print(
            f"16 MiB acceptance on {network}: ratio {accept['ratio']:.3f}, "
            f"meets_70pct={accept['meets_70pct']} "
            f"(pipeline floor {accept['pipeline_floor_ratio']:.3f}), "
            f"within_15pct_of_bound={accept['within_15pct_of_bound']}"
        )
    print(
        f"observability overhead on the pipelined burst: "
        f"{obs_overhead['overhead_ratio']:.3f}x "
        f"(on {obs_overhead['on_wall_seconds'] * 1e3:.2f} ms, "
        f"off {obs_overhead['off_wall_seconds'] * 1e3:.2f} ms, "
        f"threshold {OBS_OVERHEAD_MAX:.2f}x); with causal span tracing: "
        f"{obs_overhead['traced']['overhead_ratio']:.3f}x "
        f"(bound {OBS_TRACED_REGRESSION_MAX:.2f}x)"
    )
    for mode in ("thread", "async"):
        row = scaling["modes"][mode]
        print(
            f"scaling {mode:>6}: {row['clients']} sessions in "
            f"{row['wall_seconds']:.2f} s "
            f"({row['throughput_rps']:,.0f} req/s), session p50/p99 "
            f"{row['session_seconds_p50'] * 1e3:.0f}/"
            f"{row['session_seconds_p99'] * 1e3:.0f} ms, "
            f"peak RSS {row['rss_peak_mib']:.0f} MiB, "
            f"{row['threads_peak']} threads, "
            f"{row['failures']} failures, "
            f"{row['unclean_sessions']} unclean"
        )
    print(
        f"async vs thread throughput at {scaling['clients']} sessions: "
        f"{scaling['async_vs_thread_throughput']:.2f}x"
    )
    for point in multi_tenant["points"]:
        print(
            f"multi-tenant {point['tenants']:>2} tenants: "
            f"fifo {point['fifo']['aggregate_launches_per_second']:,.0f} "
            f"(J={point['fifo']['jain_fairness']:.3f}) vs "
            f"fair {point['fair']['aggregate_launches_per_second']:,.0f} "
            f"launches/s (J={point['fair']['jain_fairness']:.3f}), "
            f"speedup {point['fair_vs_fifo_throughput']:.3f}x"
        )
    # The dispatch-path work (exact-type handler table, generated
    # decoder constructors, single-lookup memset) cut the sync mode's
    # per-round-trip cost roughly in half, so pipelining's *relative*
    # win shrank from ~26-32% to ~18-30% and is scheduler-noisy on a
    # single shared core; the gate bounds regressions, not the quiet-
    # machine figure recorded in BENCH_middleware.json.
    assert reduction >= 0.12, (
        f"pipelined hot path must cut burst wall time by >=12%, got "
        f"{reduction:.1%}"
    )
    # The CI gate is a regression bound: the committed
    # BENCH_middleware.json proves the <= OBS_OVERHEAD_MAX claim from a
    # quiet run; shared runners only fail the smoke when the estimate
    # blows past what measurement noise can explain.
    assert obs_overhead["overhead_ratio"] <= OBS_OVERHEAD_REGRESSION_MAX, (
        f"default-on observability overhead regressed: expected within "
        f"{OBS_OVERHEAD_REGRESSION_MAX:.2f}x of the stripped pipelined "
        f"burst, got {obs_overhead['overhead_ratio']:.3f}x"
    )
    if not obs_overhead["within_threshold"]:
        print(
            f"note: overhead estimate {obs_overhead['overhead_ratio']:.3f}x "
            f"exceeds the {OBS_OVERHEAD_MAX:.2f}x target on this run "
            "(noisy host); the regression gate "
            f"({OBS_OVERHEAD_REGRESSION_MAX:.2f}x) still holds"
        )
    assert (
        obs_overhead["traced"]["overhead_ratio"] <= OBS_TRACED_REGRESSION_MAX
    ), (
        f"causal span tracing overhead regressed: expected within "
        f"{OBS_TRACED_REGRESSION_MAX:.2f}x of the stripped pipelined "
        f"burst, got {obs_overhead['traced']['overhead_ratio']:.3f}x"
    )
    for mode in ("thread", "async"):
        row = scaling["modes"][mode]
        assert row["failures"] == 0, (
            f"{mode} scaling run had client failures: "
            f"{row['failure_samples']}"
        )
        assert row["unclean_sessions"] == 0, (
            f"{mode} scaling run ended {row['unclean_sessions']} "
            "session(s) uncleanly"
        )
    scaling_min = (
        SCALING_FULL_MIN_RATIO
        if scaling_clients >= SCALING_FULL_CLIENTS
        else SCALING_QUICK_MIN_RATIO
    )
    assert scaling["async_vs_thread_throughput"] >= scaling_min, (
        f"event-loop daemon must reach >= {scaling_min:.1f}x the "
        f"thread daemon's throughput at {scaling_clients} sessions, got "
        f"{scaling['async_vs_thread_throughput']:.2f}x"
    )
    # Virtual-clock metrics, so these gates are deterministic: noise on
    # the runner cannot move them.
    assert multi_tenant["speedup_at_8"] >= MULTI_TENANT_MIN_SPEEDUP, (
        f"fair-share batching must reach >= "
        f"{MULTI_TENANT_MIN_SPEEDUP:.1f}x serialized dispatch's aggregate "
        f"launch throughput at 8 tenants, got "
        f"{multi_tenant['speedup_at_8']:.3f}x"
    )
    assert multi_tenant["jain_at_8"] >= MULTI_TENANT_MIN_JAIN, (
        f"fair-share completion rates must stay >= "
        f"{MULTI_TENANT_MIN_JAIN:.2f} Jain-fair at 8 tenants, got "
        f"{multi_tenant['jain_at_8']:.3f}"
    )
    return payload


if __name__ == "__main__":
    if "--scaling-worker" in sys.argv:
        i = sys.argv.index("--scaling-worker")
        _mode, _clients, _iters = sys.argv[i + 1 : i + 4]
        print(json.dumps(_scaling_worker(_mode, int(_clients), int(_iters))))
    elif "--quick" in sys.argv:
        run_quick(
            scaling_clients=(
                SCALING_FULL_CLIENTS if "--scale" in sys.argv
                else SCALING_QUICK_CLIENTS
            )
        )
    else:
        print(__doc__)
        raise SystemExit(2)
