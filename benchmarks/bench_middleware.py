"""Middleware micro-benchmarks: per-call round-trip cost and bulk
throughput through the real stack (codec + transport + handler + device),
plus the pipelined-vs-sync comparison on the small-message hot path.

Run under pytest-benchmark for the statistical fixtures, or directly as
a script for the CI perf smoke::

    PYTHONPATH=src python benchmarks/bench_middleware.py --quick

Quick mode drives the small-message-dominated burst workload (memset +
small H2D + kernel launch per iteration) over real TCP in both modes,
writes ``BENCH_middleware.json`` (round trips, bytes copied, wall time
per workload, plus a model-conformance drift summary), and asserts the
pipelined hot path cuts wall time by at least 20% on the burst
workload.  It also leaves two inspection artifacts next to the JSON: a
Perfetto-loadable ``BENCH_trace.json`` (span + counter tracks of an
instrumented pipelined MM run) and a ``BENCH_metrics.prom`` Prometheus
snapshot of the same run.

Quick mode additionally runs the chunked-vs-monolithic large-copy
comparison (1-64 MiB H2D on the virtual clock over GigaE and 40GI):
streamed copies must never regress the monolithic path and must land
within 15% of the two-stage pipeline bound from ``repro.model.overlap``.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.rcuda import RCudaClient, RCudaDaemon
from repro.simcuda import SimulatedGpu, MemcpyKind, fabricate_module
from repro.simcuda.errors import CudaError
from repro.simcuda.types import Dim3
from repro.testbed import FunctionalRunner
from repro.workloads import FftBatchCase, MatrixProductCase

MODULE = fabricate_module("bench", ["sgemmNN", "saxpy"], 4096)


@pytest.fixture(scope="module")
def client():
    daemon = RCudaDaemon(SimulatedGpu())
    c = RCudaClient.connect_inproc(daemon, MODULE)
    yield c
    c.close()


def test_malloc_free_roundtrip(benchmark, client):
    rt = client.runtime

    def malloc_free():
        err, ptr = rt.cudaMalloc(4096)
        assert err == CudaError.cudaSuccess
        rt.cudaFree(ptr)

    benchmark(malloc_free)


def test_memcpy_throughput_1mib(benchmark, client):
    rt = client.runtime
    payload = np.zeros(1 << 20, dtype=np.uint8)
    err, ptr = rt.cudaMalloc(payload.nbytes)
    assert err == CudaError.cudaSuccess

    def h2d():
        status, _ = rt.cudaMemcpy(
            ptr, 0, payload.nbytes, MemcpyKind.cudaMemcpyHostToDevice, payload
        )
        assert status == CudaError.cudaSuccess

    benchmark(h2d)
    rt.cudaFree(ptr)


def test_kernel_launch_roundtrip(benchmark, client):
    rt = client.runtime
    err, px = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess
    err, py = rt.cudaMalloc(4096)
    assert err == CudaError.cudaSuccess

    def launch():
        status = rt.launch_kernel(
            "saxpy", Dim3(4), Dim3(256), (px, py, 1024, 1.5)
        )
        assert status == CudaError.cudaSuccess

    benchmark(launch)
    rt.cudaFree(px)
    rt.cudaFree(py)


# -- pipelined vs sync over real TCP ------------------------------------------

BURST_ITERS = 300


def _burst(rt, ptr: int, payload: bytes, iters: int = BURST_ITERS) -> None:
    """The small-message-dominated hot path: every iteration is two tiny
    calls (a memset and a 256-byte H2D copy) whose sync-mode cost is
    dominated by the blocking wait for each 4-byte acknowledgement."""
    for i in range(iters):
        rt.cudaMemset(ptr, i & 0xFF, 256)
        rt.cudaMemcpy(
            ptr, 0, 256, MemcpyKind.cudaMemcpyHostToDevice, host_data=payload
        )
    assert rt.cudaThreadSynchronize() == CudaError.cudaSuccess


def _run_burst_tcp(
    pipeline: bool, iters: int = BURST_ITERS, observability: bool = True
) -> dict:
    """One burst over TCP.  ``observability=True`` is the daemon default
    (flight recorder + per-session accounting on); ``False`` strips both
    for the obs-overhead comparison."""
    if observability:
        daemon = RCudaDaemon(SimulatedGpu())
    else:
        daemon = RCudaDaemon(SimulatedGpu(), flight=None, accounting=False)
    port = daemon.start()
    client = RCudaClient.connect_tcp("127.0.0.1", port, MODULE, pipeline=pipeline)
    rt = client.runtime
    payload = b"\x5a" * 256
    try:
        err, ptr = rt.cudaMalloc(4096)
        assert err == CudaError.cudaSuccess
        t0 = time.perf_counter()
        _burst(rt, ptr, payload, iters)
        wall = time.perf_counter() - t0
        return {
            "mode": "pipelined" if pipeline else "sync",
            "wall_seconds": wall,
            "round_trips": rt.round_trips,
            "messages_sent": rt.transport.messages_sent,
            "bytes_sent": rt.transport.bytes_sent,
            "bytes_copied": rt.bytes_copied + rt.transport.copy_bytes,
        }
    finally:
        client.close()
        daemon.stop()


@pytest.mark.parametrize("pipeline", [False, True], ids=["sync", "pipelined"])
def test_small_message_burst_tcp(benchmark, pipeline):
    """Fire BURST_ITERS (memset + 256B H2D) pairs over TCP.

    Sync mode pays one loopback round trip per call; pipelined mode
    defers every one of them to the single trailing synchronize."""
    report = benchmark.pedantic(
        lambda: _run_burst_tcp(pipeline), rounds=3, iterations=1
    )
    # init + malloc + trailing sync, plus (sync mode only) the memset
    # and memcpy exchanges of every iteration.
    expected = 3 if pipeline else 3 + 2 * BURST_ITERS
    assert report["round_trips"] == expected


# -- chunked vs monolithic large copies (virtual clock) ------------------------

LARGE_COPY_SIZES = (1 << 20, 4 << 20, 16 << 20, 64 << 20)
LARGE_COPY_NETWORKS = ("GigaE", "40GI")
#: The acceptance size: 16 MiB H2D, per network, against the pipeline bound.
ACCEPTANCE_SIZE = 16 << 20


def _timed_copy_seconds(network: str, size: int, chunking: bool):
    """Virtual seconds of one H2D copy of ``size`` bytes: link clock
    delta plus device clock delta (the two stages of the transfer
    pipeline).  Returns the elapsed virtual time and the runtime (for
    reading the adaptive chunk size afterwards)."""
    from repro.net.simlink import SimulatedLink
    from repro.net.spec import get_network
    from repro.transport.inproc import inproc_pair
    from repro.transport.timed import TimedTransport

    device = SimulatedGpu()
    daemon = RCudaDaemon(device)
    link = SimulatedLink(get_network(network))
    client_end, server_end = inproc_pair()
    daemon.serve_transport(server_end)
    client = RCudaClient.connect(
        TimedTransport(client_end, link), MODULE, chunking=chunking
    )
    rt = client.runtime
    try:
        err, ptr = rt.cudaMalloc(size)
        assert err == CudaError.cudaSuccess
        t0 = link.clock.now() + device.clock.now()
        status, _ = rt.cudaMemcpy(
            ptr, 0, size, MemcpyKind.cudaMemcpyHostToDevice,
            host_data=np.zeros(size, dtype=np.uint8),
        )
        assert status == CudaError.cudaSuccess
        return link.clock.now() + device.clock.now() - t0, rt
    finally:
        client.close()
        daemon.stop()


def _large_copy_comparison() -> dict:
    """Chunked-vs-monolithic large H2D copies on the virtual clock.

    For every (network, size) pair the copy runs once monolithically and
    once streamed, each measured as link-clock delta + device-clock
    delta, and the streamed time is compared against the classic
    two-stage pipeline bound from :mod:`repro.model.overlap`.  Chunking
    regressing the monolithic path is a hard failure.

    The 16 MiB acceptance block also records ``meets_70pct``: whether
    chunked time reached 70% of monolithic.  With only two pipeline
    stages the achievable ratio is floored at max(stage)/sum(stages)
    (GigaE ~0.79, 40GI ~0.83), so these booleans are expected honest
    ``False`` -- the floor itself is recorded alongside.
    """
    from repro.model.overlap import pipelined_seconds
    from repro.net.spec import get_network
    from repro.protocol.accounting import memcpy_chunk_cost
    from repro.simcuda.timing import PcieModel

    chunk_header = memcpy_chunk_cost().send_fixed
    pcie_model = PcieModel()
    networks: dict = {}
    acceptance: dict = {}
    for network in LARGE_COPY_NETWORKS:
        spec = get_network(network)
        rows = []
        for size in LARGE_COPY_SIZES:
            mono, _ = _timed_copy_seconds(network, size, chunking=False)
            chunked, rt = _timed_copy_seconds(network, size, chunking=True)
            assert chunked <= mono, (
                f"chunking regressed the monolithic copy on {network} at "
                f"{size >> 20} MiB: {chunked:.6f}s > {mono:.6f}s"
            )
            chunk_bytes = rt._stream_chunk_bytes(size)
            chunks = -(-size // chunk_bytes)
            wire = size + chunks * chunk_header
            net = spec.actual_one_way_seconds(wire, include_distortion=False)
            pcie = chunks * pcie_model.transfer_seconds(size / chunks)
            bound = pipelined_seconds([net, pcie], chunks)
            row = {
                "size_mib": size >> 20,
                "chunk_bytes": chunk_bytes,
                "chunks": chunks,
                "monolithic_seconds": mono,
                "chunked_seconds": chunked,
                "ratio": chunked / mono,
                "pipeline_bound_seconds": bound,
                "within_15pct_of_bound": chunked <= 1.15 * bound,
            }
            rows.append(row)
            if size == ACCEPTANCE_SIZE:
                # The slower stage is irreducible, so no streamed copy
                # can land below the pipeline bound: bound/mono is the
                # lowest honestly reachable ratio on this network.
                floor = bound / mono
                acceptance[network] = {
                    "size_mib": size >> 20,
                    "ratio": row["ratio"],
                    "meets_70pct": row["ratio"] <= 0.70,
                    "within_15pct_of_bound": row["within_15pct_of_bound"],
                    "pipeline_floor_ratio": floor,
                    "note": (
                        "70% is below the two-stage pipeline floor of "
                        f"{floor:.3f} for this network; the chunked copy "
                        "sits on the bound instead"
                    ),
                }
        networks[network] = rows
    return {
        "measure": "link clock delta + device clock delta per H2D copy",
        "networks": networks,
        "acceptance_16mib": acceptance,
    }


# -- CI perf smoke ------------------------------------------------------------


def _best_of(fn, rounds: int = 3) -> dict:
    runs = [fn() for _ in range(rounds)]
    return min(runs, key=lambda r: r["wall_seconds"])


#: The acceptance ceiling: default-on observability (flight recorder +
#: per-session accounting) may cost at most this much wall time on the
#: pipelined burst.  ``BENCH_middleware.json`` records whether a run met
#: it; on a quiet machine the measured ratio sits near 1.03.
OBS_OVERHEAD_MAX = 1.05

#: The CI gate: shared runners shift wall time by tens of percent
#: between segments, so the smoke test only fails when the estimate
#: regresses past this -- far above measurement noise (sigma ~0.07)
#: but below the 1.29 the unoptimized dispatch path measured.
OBS_OVERHEAD_REGRESSION_MAX = 1.25


def _observability_overhead(blocks: int = 12) -> dict:
    """Pipelined burst with the default observability stack vs stripped.

    Loopback wall time on a shared host swings by tens of percent as
    scheduler/throttle windows come and go, so neither best-of-N per arm
    nor per-pair ratios are stable: a slow window landing on one arm
    poisons the estimate.  Instead each arm runs as many short
    interleaved segments in ABBA order (on,off,off,on per block) so
    every noise window is sampled by both arms almost equally, and the
    ratio of the two arms' *total* wall time is compared.
    """
    on_total = off_total = 0.0
    on_walls, off_walls = [], []
    for _ in range(blocks):
        for obs in (True, False, False, True):
            wall = _run_burst_tcp(True, observability=obs)["wall_seconds"]
            if obs:
                on_total += wall
                on_walls.append(wall)
            else:
                off_total += wall
                off_walls.append(wall)
    total_ratio = on_total / off_total if off_total > 0 else float("inf")
    best_ratio = (
        min(on_walls) / min(off_walls) if min(off_walls) > 0 else float("inf")
    )
    # Both are consistent estimators of the true overhead and noise can
    # only inflate them (a slow window adds time, never removes it), so
    # the lesser of the two is the better point estimate.
    ratio = min(total_ratio, best_ratio)
    return {
        "what": (
            "pipelined burst wall time, flight recorder + accounting on "
            "(the daemon default) vs both stripped; lesser of the "
            "total-wall ratio over ABBA-interleaved segments and the "
            "best-segment ratio"
        ),
        "segments_per_arm": 2 * blocks,
        "on_wall_seconds": min(on_walls),
        "off_wall_seconds": min(off_walls),
        "on_total_seconds": on_total,
        "off_total_seconds": off_total,
        "total_ratio": total_ratio,
        "best_ratio": best_ratio,
        "overhead_ratio": ratio,
        "threshold": OBS_OVERHEAD_MAX,
        "within_threshold": ratio <= OBS_OVERHEAD_MAX,
        "regression_threshold": OBS_OVERHEAD_REGRESSION_MAX,
    }


def _instrumented_drift_run(
    case, size: int, trace_out: str, metrics_out: str
) -> dict:
    """One fully observed pipelined run: spans + counter tracks go to a
    Perfetto trace, the metrics registry to a Prometheus snapshot, and
    every client span through the conformance monitor.  The returned
    drift summary lands in ``BENCH_middleware.json`` so CI history shows
    how far the wall-clock middleware sits from the paper model."""
    from repro.model.calibration import default_calibration
    from repro.net.spec import get_network
    from repro.obs import (
        ConformanceMonitor,
        MetricsRegistry,
        RuntimeProfiler,
        Tracer,
        render_prometheus,
        write_chrome_trace,
    )

    registry = MetricsRegistry()
    tracer = Tracer()
    profiler = RuntimeProfiler()
    monitor = ConformanceMonitor(get_network("40GI"), metrics=registry)
    monitor.set_workload(case, size, calibration=default_calibration())
    runner = FunctionalRunner(
        use_tcp=True, tracer=tracer, metrics=registry, profiler=profiler
    )
    with runner:
        with profiler:
            report = runner.run(case, size, pipeline=True)
    assert report.result.verified
    monitor.observe_spans(tracer.spans)
    write_chrome_trace(tracer.spans, trace_out, counters=profiler.samples)
    Path(metrics_out).write_text(render_prometheus(registry))
    return {
        "case": case.name,
        "size": size,
        "network": "40GI",
        "status": monitor.status,
        "findings": [f.describe() for f in monitor.findings()],
        "unmodeled_spans": monitor.unmodeled_spans,
        "phases": {
            phase: {
                "measured_seconds": measured,
                "predicted_seconds": predicted,
                "relative_error": (
                    (measured - predicted) / predicted if predicted else None
                ),
            }
            for phase, (measured, predicted) in monitor.phase_table().items()
        },
    }


def run_quick(output: str = "BENCH_middleware.json") -> dict:
    """The CI perf-smoke entry point: burst + MM + FFT over TCP in both
    modes, persisted to ``BENCH_middleware.json``."""
    burst = {
        mode: _best_of(lambda p=pipeline: _run_burst_tcp(p))
        for mode, pipeline in (("sync", False), ("pipelined", True))
    }
    workloads = {}
    for name, case, size in (
        ("mm", MatrixProductCase(), 128),
        ("fft", FftBatchCase(), 1024),
    ):
        with FunctionalRunner(use_tcp=True) as runner:
            per_mode = {}
            for mode, pipeline in (("sync", False), ("pipelined", True)):
                report = runner.run(case, size, pipeline=pipeline)
                assert report.result.verified
                per_mode[mode] = {
                    "wall_seconds": report.result.wall_seconds,
                    "round_trips": report.round_trips,
                    "messages_sent": report.messages_sent,
                    "bytes_sent": report.bytes_sent,
                    "bytes_copied": report.bytes_copied,
                }
            workloads[name] = per_mode

    drift = _instrumented_drift_run(
        MatrixProductCase(), 128, "BENCH_trace.json", "BENCH_metrics.prom"
    )
    large_copies = _large_copy_comparison()
    obs_overhead = _observability_overhead()

    reduction = 1.0 - (
        burst["pipelined"]["wall_seconds"] / burst["sync"]["wall_seconds"]
    )
    payload = {
        "benchmark": "middleware pipelined-vs-sync over TCP loopback",
        "burst_iters": BURST_ITERS,
        "burst": burst,
        "workloads": workloads,
        "burst_wall_reduction": reduction,
        "drift": drift,
        "large_copies": large_copies,
        "observability_overhead": obs_overhead,
    }
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"burst sync:      {burst['sync']['wall_seconds'] * 1e3:8.2f} ms, "
          f"{burst['sync']['round_trips']} round trips")
    print(f"burst pipelined: {burst['pipelined']['wall_seconds'] * 1e3:8.2f} ms, "
          f"{burst['pipelined']['round_trips']} round trips")
    print(f"wall-time reduction on the small-message burst: {reduction:.1%}")
    for name, per_mode in workloads.items():
        print(
            f"{name}: round trips {per_mode['sync']['round_trips']} -> "
            f"{per_mode['pipelined']['round_trips']}, bytes copied "
            f"{per_mode['sync']['bytes_copied']} -> "
            f"{per_mode['pipelined']['bytes_copied']}"
        )
    print(
        f"model conformance ({drift['case']} size {drift['size']} vs "
        f"{drift['network']}): {drift['status']}, "
        f"{len(drift['findings'])} finding(s); trace -> BENCH_trace.json, "
        f"metrics -> BENCH_metrics.prom"
    )
    for network, rows in large_copies["networks"].items():
        for row in rows:
            print(
                f"large copy {network} {row['size_mib']:>2} MiB: "
                f"mono {row['monolithic_seconds'] * 1e3:9.3f} ms, "
                f"chunked {row['chunked_seconds'] * 1e3:9.3f} ms "
                f"(ratio {row['ratio']:.3f}, bound "
                f"{row['pipeline_bound_seconds'] * 1e3:9.3f} ms, "
                f"within 15%: {row['within_15pct_of_bound']})"
            )
    for network, accept in large_copies["acceptance_16mib"].items():
        print(
            f"16 MiB acceptance on {network}: ratio {accept['ratio']:.3f}, "
            f"meets_70pct={accept['meets_70pct']} "
            f"(pipeline floor {accept['pipeline_floor_ratio']:.3f}), "
            f"within_15pct_of_bound={accept['within_15pct_of_bound']}"
        )
    print(
        f"observability overhead on the pipelined burst: "
        f"{obs_overhead['overhead_ratio']:.3f}x "
        f"(on {obs_overhead['on_wall_seconds'] * 1e3:.2f} ms, "
        f"off {obs_overhead['off_wall_seconds'] * 1e3:.2f} ms, "
        f"threshold {OBS_OVERHEAD_MAX:.2f}x)"
    )
    assert reduction >= 0.20, (
        f"pipelined hot path must cut burst wall time by >=20%, got "
        f"{reduction:.1%}"
    )
    # The CI gate is a regression bound: the committed
    # BENCH_middleware.json proves the <= OBS_OVERHEAD_MAX claim from a
    # quiet run; shared runners only fail the smoke when the estimate
    # blows past what measurement noise can explain.
    assert obs_overhead["overhead_ratio"] <= OBS_OVERHEAD_REGRESSION_MAX, (
        f"default-on observability overhead regressed: expected within "
        f"{OBS_OVERHEAD_REGRESSION_MAX:.2f}x of the stripped pipelined "
        f"burst, got {obs_overhead['overhead_ratio']:.3f}x"
    )
    if not obs_overhead["within_threshold"]:
        print(
            f"note: overhead estimate {obs_overhead['overhead_ratio']:.3f}x "
            f"exceeds the {OBS_OVERHEAD_MAX:.2f}x target on this run "
            "(noisy host); the regression gate "
            f"({OBS_OVERHEAD_REGRESSION_MAX:.2f}x) still holds"
        )
    return payload


if __name__ == "__main__":
    if "--quick" in sys.argv:
        run_quick()
    else:
        print(__doc__)
        raise SystemExit(2)
