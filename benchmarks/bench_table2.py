"""Table II benchmark: symbolic per-call transfer costs for both cases."""

from conftest import emit

from repro.experiments.table2 import run as run_table2
from repro.model.transfer import table2_symbolic, table2_totals
from repro.net.spec import get_network
from repro.workloads import FftBatchCase, MatrixProductCase


def _build():
    out = {}
    for case in (MatrixProductCase(), FftBatchCase()):
        for net in ("GigaE", "40GI"):
            rows = table2_symbolic(case, get_network(net))
            out[(case.name, net)] = (rows, table2_totals(rows))
    return out


def test_table2_regeneration(benchmark):
    tables = benchmark(_build)
    mm_rows, mm_totals = tables[("MM", "GigaE")]
    # Shape: the memcpy rows carry the only payload-dependent terms, and
    # the raw-convention coefficient is slope * bytes-per-unit.
    payload_rows = [r for r in mm_rows if r.send.coeff or r.receive.coeff]
    assert {r.operation for r in payload_rows} == {
        "cudaMemcpy (to device)", "cudaMemcpy (to host)",
    }
    assert mm_totals["send"].coeff == 2 * 4 * 8.9  # 71.2
    fft_rows, fft_totals = tables[("FFT", "40GI")]
    assert fft_totals["send"].coeff == 4096 * 0.7  # 2867.2
    emit(run_table2())
