"""Ablation: Nagle's algorithm on vs off over the TCP segment model.

The paper disables Nagle explicitly.  This benchmark quantifies why: the
rCUDA request pattern (many small control messages, each needing a reply
before the next) hits the delayed-ACK pathology, multiplying per-call
latency by orders of magnitude.
"""

from repro.net.spec import GIGAE_TCP_MODEL
from repro.protocol.accounting import table1_from_codec


def _control_plane_seconds(nagle: bool) -> float:
    """One-way time for one of each Table I control message."""
    model = GIGAE_TCP_MODEL.with_nagle(nagle)
    sizes = []
    for cost in table1_from_codec():
        if not cost.send_has_payload:
            sizes.append(cost.send_fixed)
        sizes.append(cost.receive_fixed)
    return sum(model.one_way_seconds(s) for s in sizes)


def test_nagle_ablation(benchmark):
    t_off = benchmark(_control_plane_seconds, False)
    t_on = _control_plane_seconds(True)
    slowdown = t_on / t_off
    print(
        f"\ncontrol-plane one-way time: Nagle off {t_off * 1e6:.1f} us, "
        f"on {t_on * 1e3:.1f} ms -> {slowdown:.0f}x slower with Nagle"
    )
    # Shape: sub-MSS messages hit the delayed-ACK timeout; the slowdown
    # is enormous -- the paper's tuning is not optional.
    assert slowdown > 100
